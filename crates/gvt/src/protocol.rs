//! The distributed GVT estimation protocol.
//!
//! A coordinator (daemon 0 in practice) periodically runs *rounds*. The
//! design follows Mattern's two-cut / message-counting family:
//!
//! 1. **Epochs.** Every daemon is in an epoch `e` (Mattern's "color");
//!    every messenger migration is stamped with its sender's epoch.
//! 2. **Cut.** The coordinator broadcasts [`CtrlMsg::Cut`] with round
//!    `r`, moving each daemon into epoch `r`. The daemon freezes its
//!    previous-epoch send count and replies with a [`CtrlMsg::CutAck`]
//!    carrying its local minimum (ready + suspended messengers) and the
//!    frozen counters.
//! 3. **Drain.** Messages stamped with the *previous* epoch may still be
//!    in flight. The coordinator compares Σsent against Σreceived and
//!    re-polls ([`CtrlMsg::Poll`]) until the previous epoch has fully
//!    drained. A previous-epoch message that arrives after its receiver's
//!    cut reports its timestamp into a `late_min` accumulator.
//! 4. **Advance.** `GVT = max(old, min(cut minima, late minima,
//!    current-epoch send minima))`. The last term makes the estimate
//!    safe even under optimistic execution, where a daemon may send
//!    low-timestamped messengers after its cut. The `max` keeps the
//!    published GVT monotone. The coordinator broadcasts
//!    [`CtrlMsg::Advance`].
//!
//! The estimate never exceeds the true GVT (safety: every in-flight
//! messenger is accounted by its sender's counters until its receiver
//! has integrated it) and advances once the system quiesces at the next
//! wake time (liveness), which is what the conservative scheduler needs.

use msgr_vm::Vt;

/// Control messages exchanged between the coordinator and participants.
/// The embedding (core) routes them over the same channels as ordinary
/// migrations, so their cost is visible in the benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlMsg {
    /// Coordinator → all: start round `round`.
    Cut {
        /// Round number (equals the new epoch).
        round: u64,
    },
    /// Participant → coordinator: cut acknowledgement.
    CutAck {
        /// Round being acknowledged.
        round: u64,
        /// Sender daemon.
        daemon: u16,
        /// Local minimum over ready and suspended messengers at the cut.
        lmin: Vt,
        /// Frozen count of messages sent in the previous epoch.
        prev_sent: u64,
        /// Count of previous-epoch messages received so far.
        prev_recv: u64,
        /// Minimum timestamp among late previous-epoch arrivals.
        late_min: Vt,
        /// Minimum timestamp sent in the *current* epoch so far.
        cur_sent_min: Vt,
    },
    /// Coordinator → all: the previous epoch has not drained; report
    /// updated counters.
    Poll {
        /// Round being polled.
        round: u64,
    },
    /// Participant → coordinator: poll reply (same payload as `CutAck`
    /// minus the frozen send count, which cannot change).
    PollAck {
        /// Round being acknowledged.
        round: u64,
        /// Sender daemon.
        daemon: u16,
        /// Updated local minimum.
        lmin: Vt,
        /// Updated count of previous-epoch messages received.
        prev_recv: u64,
        /// Updated late minimum.
        late_min: Vt,
        /// Updated current-epoch send minimum.
        cur_sent_min: Vt,
    },
    /// Coordinator → all: a new GVT estimate.
    Advance {
        /// The new global virtual time (monotone).
        gvt: Vt,
    },
}

impl CtrlMsg {
    /// Approximate wire size in bytes, for network-cost accounting.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            CtrlMsg::Cut { .. } | CtrlMsg::Poll { .. } | CtrlMsg::Advance { .. } => 16,
            CtrlMsg::CutAck { .. } => 56,
            CtrlMsg::PollAck { .. } => 48,
        }
    }
}

/// Per-daemon protocol state.
#[derive(Debug, Clone)]
pub struct Participant {
    daemon: u16,
    epoch: u64,
    /// Messages sent in the current epoch.
    cur_sent: u64,
    /// Minimum timestamp sent in the current epoch.
    cur_sent_min: Vt,
    /// Messages sent in the previous epoch (frozen at the cut).
    prev_sent: u64,
    /// Previous-epoch messages received.
    prev_recv: u64,
    /// Current-epoch messages received.
    cur_recv: u64,
    /// Messages received that were stamped with the *next* epoch — the
    /// sender processed the cut before we did. They must be counted
    /// toward the next epoch or the coordinator's Σsent/Σrecv can never
    /// reconcile.
    next_recv: u64,
    /// Min timestamp among previous-epoch messages that arrived after
    /// this daemon's cut.
    late_min: Vt,
    /// The last GVT value this daemon learned.
    gvt: Vt,
}

impl Participant {
    /// A fresh participant for `daemon`, in epoch 0 with GVT 0.
    pub fn new(daemon: u16) -> Self {
        Participant {
            daemon,
            epoch: 0,
            cur_sent: 0,
            cur_sent_min: Vt::INFINITY,
            prev_sent: 0,
            prev_recv: 0,
            cur_recv: 0,
            next_recv: 0,
            late_min: Vt::INFINITY,
            gvt: Vt::ZERO,
        }
    }

    /// The epoch stamp for an outgoing migration.
    pub fn stamp(&self) -> u64 {
        self.epoch
    }

    /// The last GVT this daemon learned.
    pub fn gvt(&self) -> Vt {
        self.gvt
    }

    /// Record an outgoing timestamped migration.
    pub fn on_send(&mut self, ts: Vt) {
        self.cur_sent += 1;
        self.cur_sent_min = self.cur_sent_min.min(ts);
    }

    /// Record an incoming migration carrying the sender's epoch `stamp`.
    /// Receive counts are bucketed by the *stamp's* epoch so that the
    /// coordinator's Σsent/Σrecv per epoch reconcile exactly.
    pub fn on_receive(&mut self, stamp: u64, ts: Vt) {
        use std::cmp::Ordering;
        match stamp.cmp(&self.epoch) {
            Ordering::Equal => self.cur_recv += 1,
            Ordering::Greater => self.next_recv += 1, // sender cut first
            Ordering::Less => {
                // A message from the previous epoch crossing the cut.
                self.prev_recv += 1;
                self.late_min = self.late_min.min(ts);
            }
        }
    }

    /// Handle a [`CtrlMsg::Cut`]; returns the acknowledgement to send
    /// back. `local_min` is the daemon's minimum over ready and
    /// suspended messengers at this instant.
    pub fn on_cut(&mut self, round: u64, local_min: Vt) -> CtrlMsg {
        if round > self.epoch {
            // Move epochs: current becomes previous; early arrivals for
            // the new epoch become current.
            self.epoch = round;
            self.prev_sent = self.cur_sent;
            self.prev_recv = self.cur_recv;
            self.cur_sent = 0;
            self.cur_recv = self.next_recv;
            self.next_recv = 0;
            self.late_min = Vt::INFINITY;
            self.cur_sent_min = Vt::INFINITY;
        }
        CtrlMsg::CutAck {
            round,
            daemon: self.daemon,
            lmin: local_min,
            prev_sent: self.prev_sent,
            prev_recv: self.prev_recv,
            late_min: self.late_min,
            cur_sent_min: self.cur_sent_min,
        }
    }

    /// Handle a [`CtrlMsg::Poll`].
    pub fn on_poll(&mut self, round: u64, local_min: Vt) -> CtrlMsg {
        CtrlMsg::PollAck {
            round,
            daemon: self.daemon,
            lmin: local_min,
            prev_recv: self.prev_recv,
            late_min: self.late_min,
            cur_sent_min: self.cur_sent_min,
        }
    }

    /// Handle a [`CtrlMsg::Advance`]. The estimate is a watermark, so it
    /// folds in monotonically: after a daemon failover, the successor
    /// replays the victim's adopted channel, which can legally redeliver
    /// an old `Advance` the victim had consumed after its last
    /// checkpoint — a stale (lower) value must never roll GVT back.
    pub fn on_advance(&mut self, gvt: Vt) {
        self.gvt = self.gvt.max(gvt);
    }
}

/// What the coordinator wants done after processing an acknowledgement.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordinatorAction {
    /// Wait for more acknowledgements.
    Wait,
    /// Broadcast [`CtrlMsg::Poll`] (previous epoch not drained yet).
    PollAll {
        /// The round to poll.
        round: u64,
    },
    /// Round complete: broadcast [`CtrlMsg::Advance`] with this value.
    Advance {
        /// The new GVT.
        gvt: Vt,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Idle,
    Collecting,
}

/// Coordinator state (usually embedded in daemon 0 or the shell).
#[derive(Debug, Clone)]
pub struct Coordinator {
    n: usize,
    round: u64,
    phase: Phase,
    gvt: Vt,
    // Per-daemon latest report for the active round.
    reported: Vec<bool>,
    lmin: Vec<Vt>,
    prev_sent: Vec<u64>,
    prev_recv: Vec<u64>,
    late_min: Vec<Vt>,
    cur_sent_min: Vec<Vt>,
    // Membership: evicted (permanently dead) participants and the epoch
    // number that counts eviction events. Monotone — a dead daemon never
    // rejoins.
    dead: Vec<bool>,
    mem_epoch: u64,
    rounds_run: u64,
    polls_sent: u64,
}

impl Coordinator {
    /// A coordinator for `n` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "coordinator needs at least one participant");
        Coordinator {
            n,
            round: 0,
            phase: Phase::Idle,
            gvt: Vt::ZERO,
            reported: vec![false; n],
            lmin: vec![Vt::INFINITY; n],
            prev_sent: vec![0; n],
            prev_recv: vec![0; n],
            late_min: vec![Vt::INFINITY; n],
            cur_sent_min: vec![Vt::INFINITY; n],
            dead: vec![false; n],
            mem_epoch: 0,
            rounds_run: 0,
            polls_sent: 0,
        }
    }

    /// The coordinator's current GVT estimate.
    pub fn gvt(&self) -> Vt {
        self.gvt
    }

    /// Number of completed rounds.
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    /// Number of poll broadcasts issued (drain retries).
    pub fn polls_sent(&self) -> u64 {
        self.polls_sent
    }

    /// Whether a round is in progress.
    pub fn busy(&self) -> bool {
        self.phase == Phase::Collecting
    }

    /// Membership epoch: the number of evictions applied so far.
    pub fn mem_epoch(&self) -> u64 {
        self.mem_epoch
    }

    /// Whether `daemon` has been evicted.
    pub fn is_dead(&self, daemon: u16) -> bool {
        self.dead.get(daemon as usize).copied().unwrap_or(false)
    }

    /// Number of surviving participants.
    pub fn alive(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// Evict a permanently dead participant from the membership
    /// (monotone: re-evicting is a no-op returning `Wait`). Its pending
    /// report for the active round — which will never arrive — is
    /// replaced by `floor`, the minimum virtual time of the checkpoint
    /// its successor restored, so a round stalled on the victim resumes
    /// with the surviving set *and* GVT cannot advance past the
    /// resurrected messengers. `floor` matters only for the round in
    /// flight: any round begun after the eviction reaches the successor
    /// when it already hosts the restored state and reports it itself.
    /// The returned action must be acted on exactly as for
    /// [`Coordinator::on_ack`].
    ///
    /// After the first eviction the per-epoch Σsent/Σrecv drain check is
    /// disabled: frames addressed to a dead daemon are counted by their
    /// sender but can never be counted by a receiver, so the counts no
    /// longer reconcile. Safety then rests on the survivors' reported
    /// minima, which (under the recovery-mode transport) cover every
    /// unacknowledged in-flight frame and every checkpointed virtual
    /// time that a restore can resurrect.
    pub fn evict(&mut self, daemon: u16, floor: Vt) -> CoordinatorAction {
        let i = daemon as usize;
        if i >= self.n || self.dead[i] {
            return CoordinatorAction::Wait;
        }
        self.dead[i] = true;
        self.mem_epoch += 1;
        self.late_min[i] = Vt::INFINITY;
        self.cur_sent_min[i] = Vt::INFINITY;
        self.prev_sent[i] = 0;
        self.prev_recv[i] = 0;
        if self.phase == Phase::Collecting {
            // Even if the victim reported before dying, `floor` bounds
            // everything a restore can bring back, and its old report
            // bounds what it still hosted at the cut — keep the lower.
            self.lmin[i] = self.lmin[i].min(floor);
            self.reported[i] = true;
            self.evaluate()
        } else {
            self.lmin[i] = Vt::INFINITY;
            CoordinatorAction::Wait
        }
    }

    /// Start a new round; returns the `Cut` to broadcast, or `None` if a
    /// round is already active.
    pub fn begin_round(&mut self) -> Option<CtrlMsg> {
        if self.phase != Phase::Idle {
            return None;
        }
        self.round += 1;
        self.phase = Phase::Collecting;
        // Dead participants will never report; pre-mark them with
        // neutral values.
        self.reported = self.dead.clone();
        self.lmin = vec![Vt::INFINITY; self.n];
        self.late_min = vec![Vt::INFINITY; self.n];
        self.cur_sent_min = vec![Vt::INFINITY; self.n];
        for i in 0..self.n {
            if self.dead[i] {
                self.prev_sent[i] = 0;
                self.prev_recv[i] = 0;
            }
        }
        Some(CtrlMsg::Cut { round: self.round })
    }

    fn evaluate(&mut self) -> CoordinatorAction {
        if self.reported.iter().any(|r| !r) {
            return CoordinatorAction::Wait;
        }
        let sent: u64 = self.prev_sent.iter().sum();
        let recv: u64 = self.prev_recv.iter().sum();
        if sent != recv && self.mem_epoch == 0 {
            // Previous epoch not drained; ask everyone again. (Once a
            // member has died the counts cannot reconcile — see
            // [`Coordinator::evict`] — so the check is skipped.)
            debug_assert!(recv < sent, "received more than was sent");
            self.reported = vec![false; self.n];
            self.polls_sent += 1;
            return CoordinatorAction::PollAll { round: self.round };
        }
        let mut estimate = Vt::INFINITY;
        for i in 0..self.n {
            estimate = estimate.min(self.lmin[i]).min(self.late_min[i]).min(self.cur_sent_min[i]);
        }
        // Monotone clamp: the estimate is a lower bound on the true GVT,
        // so taking the max of successive lower bounds is still a lower
        // bound, and published GVT never regresses.
        self.gvt = self.gvt.max(estimate);
        self.phase = Phase::Idle;
        self.rounds_run += 1;
        CoordinatorAction::Advance { gvt: self.gvt }
    }

    /// Feed a `CutAck` or `PollAck`; stale rounds are ignored.
    pub fn on_ack(&mut self, msg: &CtrlMsg) -> CoordinatorAction {
        match *msg {
            CtrlMsg::CutAck {
                round,
                daemon,
                lmin,
                prev_sent,
                prev_recv,
                late_min,
                cur_sent_min,
            } => {
                if round != self.round || self.phase != Phase::Collecting {
                    return CoordinatorAction::Wait;
                }
                let i = daemon as usize;
                if self.dead[i] {
                    // A redirected straggler from an evicted daemon.
                    return CoordinatorAction::Wait;
                }
                self.reported[i] = true;
                self.lmin[i] = lmin;
                self.prev_sent[i] = prev_sent;
                self.prev_recv[i] = prev_recv;
                self.late_min[i] = late_min;
                self.cur_sent_min[i] = cur_sent_min;
                self.evaluate()
            }
            CtrlMsg::PollAck { round, daemon, lmin, prev_recv, late_min, cur_sent_min } => {
                if round != self.round || self.phase != Phase::Collecting {
                    return CoordinatorAction::Wait;
                }
                let i = daemon as usize;
                if self.dead[i] {
                    return CoordinatorAction::Wait;
                }
                self.reported[i] = true;
                self.lmin[i] = lmin;
                self.prev_recv[i] = prev_recv;
                self.late_min[i] = late_min;
                self.cur_sent_min[i] = cur_sent_min;
                self.evaluate()
            }
            _ => CoordinatorAction::Wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a full round synchronously against a set of participants
    /// with the given local minima; returns the new GVT.
    fn run_round(coord: &mut Coordinator, parts: &mut [Participant], lmins: &[Vt]) -> Vt {
        let cut = coord.begin_round().expect("idle");
        let round = match cut {
            CtrlMsg::Cut { round } => round,
            _ => unreachable!(),
        };
        let mut action = CoordinatorAction::Wait;
        for (p, &lm) in parts.iter_mut().zip(lmins) {
            let ack = p.on_cut(round, lm);
            action = coord.on_ack(&ack);
        }
        loop {
            match action {
                CoordinatorAction::Advance { gvt } => {
                    for p in parts.iter_mut() {
                        p.on_advance(gvt);
                    }
                    return gvt;
                }
                CoordinatorAction::PollAll { round } => {
                    for (i, p) in parts.iter_mut().enumerate() {
                        let ack = p.on_poll(round, lmins[i]);
                        action = coord.on_ack(&ack);
                    }
                }
                CoordinatorAction::Wait => panic!("stuck waiting with all acks in"),
            }
        }
    }

    #[test]
    fn quiescent_round_takes_min() {
        let mut coord = Coordinator::new(3);
        let mut parts: Vec<Participant> = (0..3).map(Participant::new).collect();
        let gvt = run_round(&mut coord, &mut parts, &[Vt::new(5.0), Vt::new(3.0), Vt::new(7.0)]);
        assert_eq!(gvt, Vt::new(3.0));
        assert_eq!(parts[0].gvt(), Vt::new(3.0));
        assert_eq!(coord.rounds_run(), 1);
    }

    #[test]
    fn gvt_is_monotone_even_if_minima_rise_and_fall() {
        let mut coord = Coordinator::new(2);
        let mut parts: Vec<Participant> = (0..2).map(Participant::new).collect();
        let g1 = run_round(&mut coord, &mut parts, &[Vt::new(4.0), Vt::new(6.0)]);
        assert_eq!(g1, Vt::new(4.0));
        // A (buggy or optimistic) participant reports a lower minimum
        // later; published GVT must not regress.
        let g2 = run_round(&mut coord, &mut parts, &[Vt::new(2.0), Vt::new(6.0)]);
        assert_eq!(g2, Vt::new(4.0));
        let g3 = run_round(&mut coord, &mut parts, &[Vt::new(9.0), Vt::new(8.0)]);
        assert_eq!(g3, Vt::new(8.0));
    }

    #[test]
    fn in_flight_message_blocks_round_until_drained() {
        let mut coord = Coordinator::new(2);
        let mut p0 = Participant::new(0);
        let mut p1 = Participant::new(1);
        // p0 sends a migration (ts 1.0) that has not yet arrived at p1.
        p0.on_send(Vt::new(1.0));
        let stamp = p0.stamp();

        let cut = coord.begin_round().unwrap();
        let round = match cut {
            CtrlMsg::Cut { round } => round,
            _ => unreachable!(),
        };
        // Both daemons report; p0's queue min is 5.0, p1's is 9.0 — the
        // in-flight ts-1.0 messenger must keep GVT at or below 1.0.
        let a0 = p0.on_cut(round, Vt::new(5.0));
        assert_eq!(coord.on_ack(&a0), CoordinatorAction::Wait);
        let a1 = p1.on_cut(round, Vt::new(9.0));
        // Counts don't match: 1 sent, 0 received → poll.
        let act = coord.on_ack(&a1);
        assert_eq!(act, CoordinatorAction::PollAll { round });

        // The migration now arrives at p1 — stamped with the old epoch,
        // so it is a late white message.
        p1.on_receive(stamp, Vt::new(1.0));

        let a0 = p0.on_poll(round, Vt::new(5.0));
        assert_eq!(coord.on_ack(&a0), CoordinatorAction::Wait);
        let a1 = p1.on_poll(round, Vt::new(9.0));
        match coord.on_ack(&a1) {
            CoordinatorAction::Advance { gvt } => assert_eq!(gvt, Vt::new(1.0)),
            other => panic!("expected advance, got {other:?}"),
        }
        assert_eq!(coord.polls_sent(), 1);
    }

    #[test]
    fn current_epoch_sends_bound_the_estimate() {
        // After the cut, a daemon sends a low-timestamped messenger
        // (possible under optimistic execution). The round must not
        // publish a GVT above that timestamp.
        let mut coord = Coordinator::new(2);
        let mut p0 = Participant::new(0);
        let mut p1 = Participant::new(1);
        let cut = coord.begin_round().unwrap();
        let round = match cut {
            CtrlMsg::Cut { round } => round,
            _ => unreachable!(),
        };
        let a0 = p0.on_cut(round, Vt::new(10.0));
        coord.on_ack(&a0);
        // p1 cuts, then immediately sends at ts 2.0 before acking — model
        // by feeding on_send between cut and ack construction.
        let mut ack1 = p1.on_cut(round, Vt::new(11.0));
        p1.on_send(Vt::new(2.0));
        // Rebuild the ack as a poll would see it (cur_sent_min updated).
        if let CtrlMsg::CutAck { cur_sent_min, .. } = &mut ack1 {
            *cur_sent_min = Vt::new(2.0);
        }
        match coord.on_ack(&ack1) {
            CoordinatorAction::Advance { gvt } => assert_eq!(gvt, Vt::new(2.0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stale_round_acks_are_ignored() {
        let mut coord = Coordinator::new(1);
        let mut p = Participant::new(0);
        let cut = coord.begin_round().unwrap();
        let round = match cut {
            CtrlMsg::Cut { round } => round,
            _ => unreachable!(),
        };
        let ack = p.on_cut(round, Vt::new(1.0));
        // An ack for a round that never existed.
        let stale = CtrlMsg::CutAck {
            round: round + 7,
            daemon: 0,
            lmin: Vt::ZERO,
            prev_sent: 0,
            prev_recv: 0,
            late_min: Vt::INFINITY,
            cur_sent_min: Vt::INFINITY,
        };
        assert_eq!(coord.on_ack(&stale), CoordinatorAction::Wait);
        assert!(matches!(coord.on_ack(&ack), CoordinatorAction::Advance { .. }));
        // Acks after completion are also ignored.
        assert_eq!(coord.on_ack(&ack), CoordinatorAction::Wait);
    }

    #[test]
    fn begin_round_refuses_while_busy() {
        let mut coord = Coordinator::new(2);
        assert!(coord.begin_round().is_some());
        assert!(coord.begin_round().is_none());
        assert!(coord.busy());
    }

    #[test]
    fn epoch_advances_on_cut_only_once() {
        let mut p = Participant::new(0);
        assert_eq!(p.stamp(), 0);
        p.on_cut(1, Vt::ZERO);
        assert_eq!(p.stamp(), 1);
        // Duplicate cut for the same round must not shift counters again.
        p.on_send(Vt::new(5.0));
        let ack = p.on_cut(1, Vt::ZERO);
        if let CtrlMsg::CutAck { prev_sent, .. } = ack {
            assert_eq!(prev_sent, 0);
        }
        assert_eq!(p.stamp(), 1);
    }

    #[test]
    fn wire_bytes_are_small() {
        assert!(CtrlMsg::Cut { round: 1 }.wire_bytes() <= 16);
        assert!(
            CtrlMsg::CutAck {
                round: 1,
                daemon: 0,
                lmin: Vt::ZERO,
                prev_sent: 0,
                prev_recv: 0,
                late_min: Vt::ZERO,
                cur_sent_min: Vt::ZERO,
            }
            .wire_bytes()
                <= 64
        );
    }

    #[test]
    fn round_stalls_forever_when_a_participant_never_acks() {
        // The documented failure mode this PR's eviction machinery
        // exists for: with fixed membership, one silent participant
        // wedges the round permanently — no number of acks from the
        // others completes it.
        let mut coord = Coordinator::new(3);
        let mut p0 = Participant::new(0);
        let mut p1 = Participant::new(1);
        let round = match coord.begin_round().unwrap() {
            CtrlMsg::Cut { round } => round,
            _ => unreachable!(),
        };
        assert_eq!(coord.on_ack(&p0.on_cut(round, Vt::new(1.0))), CoordinatorAction::Wait);
        assert_eq!(coord.on_ack(&p1.on_cut(round, Vt::new(2.0))), CoordinatorAction::Wait);
        // Daemon 2 never acks; duplicate acks from the others change
        // nothing.
        assert_eq!(coord.on_ack(&p0.on_poll(round, Vt::new(1.0))), CoordinatorAction::Wait);
        assert!(coord.busy(), "round is wedged without an eviction");
    }

    #[test]
    fn evicting_the_silent_participant_unblocks_the_round() {
        let mut coord = Coordinator::new(3);
        let mut p0 = Participant::new(0);
        let mut p1 = Participant::new(1);
        let round = match coord.begin_round().unwrap() {
            CtrlMsg::Cut { round } => round,
            _ => unreachable!(),
        };
        coord.on_ack(&p0.on_cut(round, Vt::new(4.0)));
        coord.on_ack(&p1.on_cut(round, Vt::new(6.0)));
        // The victim's checkpoint floor (3.0) sits below every survivor:
        // the round must advance only to the floor, because a restore is
        // about to resurrect messengers at that virtual time.
        match coord.evict(2, Vt::new(3.0)) {
            CoordinatorAction::Advance { gvt } => assert_eq!(gvt, Vt::new(3.0)),
            other => panic!("eviction must complete the round, got {other:?}"),
        }
        assert!(!coord.busy());
        assert_eq!(coord.mem_epoch(), 1);
        assert!(coord.is_dead(2));
        assert_eq!(coord.alive(), 2);
    }

    #[test]
    fn eviction_round_trip_resumes_with_survivors() {
        // Epoch-eviction round-trip: evict while idle, then run full
        // rounds with the surviving set — GVT keeps advancing and the
        // dead slot stays neutral.
        let mut coord = Coordinator::new(3);
        let mut parts: Vec<Participant> = (0..3).map(Participant::new).collect();
        let g1 = run_round(&mut coord, &mut parts, &[Vt::new(1.0), Vt::new(2.0), Vt::new(3.0)]);
        assert_eq!(g1, Vt::new(1.0));
        assert_eq!(
            coord.evict(1, Vt::INFINITY),
            CoordinatorAction::Wait,
            "idle eviction defers to next round"
        );
        assert_eq!(coord.evict(1, Vt::ZERO), CoordinatorAction::Wait, "re-eviction is a no-op");
        assert_eq!(coord.mem_epoch(), 1);
        // Survivors only: daemon 1 never reports again.
        let round = match coord.begin_round().unwrap() {
            CtrlMsg::Cut { round } => round,
            _ => unreachable!(),
        };
        assert_eq!(coord.on_ack(&parts[0].on_cut(round, Vt::new(5.0))), CoordinatorAction::Wait);
        match coord.on_ack(&parts[2].on_cut(round, Vt::new(7.0))) {
            CoordinatorAction::Advance { gvt } => assert_eq!(gvt, Vt::new(5.0)),
            other => panic!("{other:?}"),
        }
        assert_eq!(coord.rounds_run(), 2);
    }

    #[test]
    fn acks_from_an_evicted_daemon_are_ignored() {
        // A redirected straggler ack from the victim must not corrupt
        // the survivor round (e.g. resurrect its minima).
        let mut coord = Coordinator::new(2);
        let mut p0 = Participant::new(0);
        let mut p1 = Participant::new(1);
        coord.evict(1, Vt::INFINITY);
        let round = match coord.begin_round().unwrap() {
            CtrlMsg::Cut { round } => round,
            _ => unreachable!(),
        };
        let ghost = p1.on_cut(round, Vt::new(0.25));
        assert_eq!(coord.on_ack(&ghost), CoordinatorAction::Wait);
        match coord.on_ack(&p0.on_cut(round, Vt::new(9.0))) {
            CoordinatorAction::Advance { gvt } => assert_eq!(gvt, Vt::new(9.0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eviction_skips_the_drain_check_but_keeps_monotonicity() {
        // An in-flight frame addressed to the victim leaves Σsent ≠
        // Σrecv forever; the post-eviction round must still complete,
        // and published GVT must stay monotone.
        let mut coord = Coordinator::new(2);
        let mut p0 = Participant::new(0);
        p0.on_send(Vt::new(50.0)); // addressed to daemon 1, never received
        let r1 = match coord.begin_round().unwrap() {
            CtrlMsg::Cut { round } => round,
            _ => unreachable!(),
        };
        coord.on_ack(&p0.on_cut(r1, Vt::new(10.0)));
        match coord.evict(1, Vt::INFINITY) {
            CoordinatorAction::Advance { gvt } => assert_eq!(gvt, Vt::new(10.0)),
            other => panic!("sent≠recv must not wedge survivors: {other:?}"),
        }
        assert_eq!(coord.polls_sent(), 0, "no drain polls once membership changed");
        let r2 = match coord.begin_round().unwrap() {
            CtrlMsg::Cut { round } => round,
            _ => unreachable!(),
        };
        match coord.on_ack(&p0.on_cut(r2, Vt::new(4.0))) {
            // The survivor's floor dropped below published GVT; the
            // monotone clamp holds the line.
            CoordinatorAction::Advance { gvt } => assert_eq!(gvt, Vt::new(10.0)),
            other => panic!("{other:?}"),
        }
    }

    /// Randomized safety check: simulate daemons exchanging timestamped
    /// messages through a delaying network while rounds run; the
    /// published GVT must never exceed the true minimum unprocessed
    /// timestamp at publication time.
    #[test]
    fn randomized_safety_gvt_never_overestimates() {
        use msgr_sim::DetRng;

        for seed in 0..20u64 {
            let mut rng = DetRng::new(seed);
            let n = 3usize;
            let mut parts: Vec<Participant> = (0..n as u16).map(Participant::new).collect();
            let mut coord = Coordinator::new(n);
            // Each daemon has a bag of pending timestamps; messages in
            // flight are (dst, ts, stamp, deliver_at_step).
            let mut queues: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
            let mut flight: Vec<(usize, f64, u64, u32)> = Vec::new();
            let true_min = |queues: &Vec<Vec<f64>>, flight: &Vec<(usize, f64, u64, u32)>| {
                let q = queues.iter().flatten().copied().fold(f64::INFINITY, f64::min);
                let f = flight.iter().map(|x| x.1).fold(f64::INFINITY, f64::min);
                q.min(f)
            };
            for step in 0..200u32 {
                // Deliver due messages.
                let mut still = Vec::new();
                for (dst, ts, stamp, due) in flight.drain(..) {
                    if due <= step {
                        parts[dst].on_receive(stamp, Vt::new(ts));
                        queues[dst].push(ts);
                    } else {
                        still.push((dst, ts, stamp, due));
                    }
                }
                flight = still;
                // Random daemon processes its min and maybe sends a new
                // message with a larger timestamp.
                let d = rng.below(n as u64) as usize;
                if !queues[d].is_empty() {
                    let idx = queues[d]
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(i, _)| i)
                        .unwrap();
                    let ts = queues[d].remove(idx);
                    if rng.chance(0.8) {
                        let nts = ts + rng.range_f64(0.0, 2.0);
                        let dst = rng.below(n as u64) as usize;
                        parts[d].on_send(Vt::new(nts));
                        flight.push((dst, nts, parts[d].stamp(), step + 1 + rng.below(4) as u32));
                    }
                }
                // Occasionally run a full round synchronously.
                if step % 17 == 0 {
                    if let Some(CtrlMsg::Cut { round }) = coord.begin_round() {
                        let mut action = CoordinatorAction::Wait;
                        for i in 0..n {
                            let lm = queues[i].iter().copied().fold(f64::INFINITY, f64::min);
                            let ack = parts[i].on_cut(round, Vt::new(lm));
                            action = coord.on_ack(&ack);
                        }
                        let mut guard = 0;
                        loop {
                            match action {
                                CoordinatorAction::Advance { gvt } => {
                                    let tm = true_min(&queues, &flight);
                                    assert!(
                                        gvt.as_f64() <= tm + 1e-9,
                                        "seed {seed} step {step}: GVT {gvt} > true min {tm}"
                                    );
                                    break;
                                }
                                CoordinatorAction::PollAll { round } => {
                                    // Deliver everything in flight before
                                    // polling (worst case for drain).
                                    for (dst, ts, stamp, _) in flight.drain(..) {
                                        parts[dst].on_receive(stamp, Vt::new(ts));
                                        queues[dst].push(ts);
                                    }
                                    action = CoordinatorAction::Wait;
                                    for i in 0..n {
                                        let lm =
                                            queues[i].iter().copied().fold(f64::INFINITY, f64::min);
                                        let ack = parts[i].on_poll(round, Vt::new(lm));
                                        action = coord.on_ack(&ack);
                                    }
                                }
                                CoordinatorAction::Wait => {
                                    guard += 1;
                                    assert!(guard < 100, "round never completed");
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}
