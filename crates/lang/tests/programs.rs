//! A battery of complete MSGR-C programs executed through the VM —
//! language-level integration tests.

use msgr_lang::compile;
use msgr_vm::{interp, MapEnv, MessengerState, Value, Yield};

fn eval(src: &str, args: &[Value]) -> Value {
    eval_env(src, args, &mut MapEnv::new())
}

fn eval_env(src: &str, args: &[Value], env: &mut MapEnv) -> Value {
    let p = compile(src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let mut m = MessengerState::launch(&p, 1.into(), args).unwrap();
    match interp::run(&p, &mut m, env, 10_000_000).unwrap() {
        Yield::Terminated(v) => v,
        other => panic!("unexpected yield {other:?}"),
    }
}

#[test]
fn gcd_euclid() {
    let src = r#"
        gcd(a, b) {
            while (b != 0) {
                int t = b;
                b = a % b;
                a = t;
            }
            return a;
        }
    "#;
    assert_eq!(eval(src, &[Value::Int(252), Value::Int(105)]), Value::Int(21));
    assert_eq!(eval(src, &[Value::Int(17), Value::Int(5)]), Value::Int(1));
}

#[test]
fn collatz_steps() {
    let src = r#"
        collatz(n) {
            int steps;
            while (n != 1) {
                if (n % 2 == 0) n = n / 2;
                else n = 3 * n + 1;
                steps = steps + 1;
            }
            return steps;
        }
    "#;
    assert_eq!(eval(src, &[Value::Int(27)]), Value::Int(111));
}

#[test]
fn ackermann_small() {
    let src = r#"
        ack(m, n) {
            if (m == 0) return n + 1;
            if (n == 0) return ack(m - 1, 1);
            return ack(m - 1, ack(m, n - 1));
        }
    "#;
    assert_eq!(eval(src, &[Value::Int(2), Value::Int(3)]), Value::Int(9));
    assert_eq!(eval(src, &[Value::Int(3), Value::Int(3)]), Value::Int(61));
}

#[test]
fn string_programs() {
    let src = r#"
        repeat(s, n) {
            int i;
            string out = "";
            for (i = 0; i < n; i = i + 1) out = out + s + "-";
            return out;
        }
    "#;
    assert_eq!(eval(src, &[Value::str("ab"), Value::Int(3)]), Value::str("ab-ab-ab-"));
}

#[test]
fn float_integration() {
    // Trapezoidal integration of x^2 over [0, 1].
    let src = r#"
        integrate(steps) {
            float h = 1.0 / steps, x = 0.0, acc = 0.0;
            int i;
            for (i = 0; i < steps; i = i + 1) {
                acc = acc + (x * x + (x + h) * (x + h)) * h / 2.0;
                x = x + h;
            }
            return acc;
        }
    "#;
    let v = eval(src, &[Value::Int(1000)]).as_float().unwrap();
    assert!((v - 1.0 / 3.0).abs() < 1e-5, "got {v}");
}

#[test]
fn logical_operators_short_circuit_with_side_effects() {
    let src = r#"
        main() {
            node int touched;
            int r = probe(0) && probe(1);   /* rhs skipped: lhs falsy */
            int s = probe(1) || probe(0);   /* rhs skipped: lhs truthy */
            int t = probe(1) && probe(1);   /* both run */
            return touched;
        }
        probe(v) {
            node int touched;
            touched = touched + 1;
            return v;
        }
    "#;
    assert_eq!(eval(src, &[]), Value::Int(4));
}

#[test]
fn truthiness_in_conditions_is_c_like() {
    let src = r#"
        main(x) {
            if (x) return 1;
            return 0;
        }
    "#;
    assert_eq!(eval(src, &[Value::Int(0)]), Value::Int(0));
    assert_eq!(eval(src, &[Value::Int(-7)]), Value::Int(1));
    assert_eq!(eval(src, &[Value::Float(0.0)]), Value::Int(0));
    assert_eq!(eval(src, &[Value::Null]), Value::Int(0));
    assert_eq!(eval(src, &[Value::str("x")]), Value::Int(1));
}

#[test]
fn null_coerces_to_zero_in_arithmetic() {
    // Node variables start as NULL; the paper's counter idiom.
    let src = r#"
        main() {
            node int acc;
            acc = acc + 5;      /* NULL + 5 == 5 */
            acc = acc * 2;
            return acc;
        }
    "#;
    assert_eq!(eval(src, &[]), Value::Int(10));
}

#[test]
fn nested_loops_with_labels_emulated_by_flags() {
    // MSGR-C has no labeled break; typical C-subset workaround.
    let src = r#"
        main(limit) {
            int i, j, found_i = 0 - 1, found_j = 0 - 1, done = 0;
            for (i = 0; i < limit && !done; i = i + 1) {
                for (j = 0; j < limit; j = j + 1) {
                    if (i * j == 12 && i < j) {
                        found_i = i; found_j = j; done = 1;
                        break;
                    }
                }
            }
            return found_i * 100 + found_j;
        }
    "#;
    assert_eq!(eval(src, &[Value::Int(10)]), Value::Int(206)); // 2*6=12
}

#[test]
fn sieve_of_eratosthenes_via_node_vars() {
    // Node variables as a dynamic map: mark composites "c<k>". Unset
    // node variables are NULL — distinct from 0 (the `task != NULL`
    // idiom depends on that) — so the script tests `== NULL`.
    let src = r#"
        count_primes(n) {
            int i, j, primes = 0;
            for (i = 2; i <= n; i = i + 1) {
                if (marked("c" + i) == NULL) {
                    primes = primes + 1;
                    for (j = i * i; j <= n; j = j + i) mark("c" + j);
                }
            }
            return primes;
        }
    "#;
    let mut env = MapEnv::new();
    env.natives.register("mark", |ctx, args| {
        let key = args[0].as_str().map_err(|e| e.to_string())?.to_string();
        ctx.set_node_var(&key, Value::Int(1));
        Ok(Value::Null)
    });
    env.natives.register("marked", |ctx, args| {
        let key = args[0].as_str().map_err(|e| e.to_string())?;
        Ok(ctx.node_var(key))
    });
    assert_eq!(eval_env(src, &[Value::Int(100)], &mut env), Value::Int(25));
}

#[test]
fn comments_everywhere() {
    let src = r#"
        // leading comment
        main(/* none */) {
            /* block
               comment */
            int x = 1; // trailing
            return x /* inline */ + 1;
        }
    "#;
    assert_eq!(eval(src, &[]), Value::Int(2));
}

#[test]
fn division_semantics_match_c() {
    let src = "main(a, b) { return a / b * 1000 + a % b; }";
    // Truncated division, remainder takes the dividend's sign.
    assert_eq!(eval(src, &[Value::Int(7), Value::Int(2)]), Value::Int(3001));
    assert_eq!(eval(src, &[Value::Int(-7), Value::Int(2)]), Value::Int(-3001));
}

#[test]
fn deep_recursion_within_fuel() {
    let src = r#"
        down(n) {
            if (n == 0) return 0;
            return down(n - 1) + 1;
        }
    "#;
    assert_eq!(eval(src, &[Value::Int(2000)]), Value::Int(2000));
}

#[test]
fn fuel_guards_against_runaway_scripts() {
    let p = compile("main() { while (1) { } }").unwrap();
    let mut m = MessengerState::launch(&p, 1.into(), &[]).unwrap();
    let err = interp::run(&p, &mut m, &mut MapEnv::new(), 10_000).unwrap_err();
    assert_eq!(err, msgr_vm::VmError::FuelExhausted);
}

#[test]
fn arrays_declare_index_and_assign() {
    let src = r#"
        main(n) {
            int a[n], i, sum;
            for (i = 0; i < n; i = i + 1) a[i] = i * i;
            for (i = 0; i < n; i = i + 1) sum = sum + a[i];
            return sum;
        }
    "#;
    assert_eq!(eval(src, &[Value::Int(5)]), Value::Int(30)); // 0+1+4+9+16
}

#[test]
fn arrays_have_value_semantics() {
    let src = r#"
        main() {
            int a[3], i;
            int b = 0;
            a[0] = 7;
            b = mirror(a);       /* callee mutates its copy */
            return a[0] * 100 + b;
        }
        mirror(arr) {
            arr[0] = 9;
            return arr[0];
        }
    "#;
    // Caller's array untouched (7), callee saw its own 9.
    assert_eq!(eval(src, &[]), Value::Int(709));
}

#[test]
fn bubble_sort_in_msgr_c() {
    let src = r#"
        main(n, seed) {
            int a[n], i, j, t;
            for (i = 0; i < n; i = i + 1) {
                seed = (seed * 1103515245 + 12345) % 2147483648;
                a[i] = seed % 1000;
            }
            for (i = 0; i < n; i = i + 1)
                for (j = 0; j + 1 < n - i; j = j + 1)
                    if (a[j] > a[j + 1]) {
                        t = a[j];
                        a[j] = a[j + 1];
                        a[j + 1] = t;
                    }
            /* verify sortedness in-script */
            for (i = 0; i + 1 < n; i = i + 1)
                if (a[i] > a[i + 1]) return 0 - 1;
            return a[0] * 1000000 + a[n - 1];
        }
    "#;
    let v = eval(src, &[Value::Int(24), Value::Int(42)]).as_int().unwrap();
    assert!(v >= 0, "array must be sorted");
    let (min, max) = (v / 1_000_000, v % 1_000_000);
    assert!(min <= max);
}

#[test]
fn array_out_of_bounds_is_a_runtime_error() {
    let p = compile("main() { int a[3]; return a[3]; }").unwrap();
    let mut m = MessengerState::launch(&p, 1.into(), &[]).unwrap();
    let err = interp::run(&p, &mut m, &mut MapEnv::new(), 10_000).unwrap_err();
    assert!(err.to_string().contains("out of bounds"), "{err}");
    let p = compile("main() { int a[3]; a[0 - 1] = 5; }").unwrap();
    let mut m = MessengerState::launch(&p, 1.into(), &[]).unwrap();
    assert!(interp::run(&p, &mut m, &mut MapEnv::new(), 10_000).is_err());
}

#[test]
fn array_in_node_variable_is_shared() {
    let src = r#"
        main() {
            node int tally[4];
            tally[1] = tally[1] + 5;
            tally[1] = tally[1] + 5;
            return tally[1];
        }
    "#;
    // Node-array declaration stores the array at the node; updates
    // read-modify-write through the node variable.
    assert_eq!(eval(src, &[]), Value::Int(10));
}

#[test]
fn nested_array_reads() {
    // Arrays of arrays via natives are possible; in-language we can at
    // least read through nested indexing.
    let mut env = MapEnv::new();
    env.natives.register("matrix2", |_, _| {
        use std::sync::Arc;
        let row0 = Value::Arr(Arc::new(vec![Value::Int(1), Value::Int(2)]));
        let row1 = Value::Arr(Arc::new(vec![Value::Int(3), Value::Int(4)]));
        Ok(Value::Arr(Arc::new(vec![row0, row1])))
    });
    let v = eval_env("main() { return matrix2()[1][0]; }", &[], &mut env);
    assert_eq!(v, Value::Int(3));
}

#[test]
fn node_array_declaration_does_not_clobber() {
    // Two "generations" of the same script at one node: the second must
    // see the first's array contents.
    let src = r#"
        main() {
            node int tally[4];
            tally[2] = tally[2] + 1;
            return tally[2];
        }
    "#;
    let mut env = MapEnv::new();
    assert_eq!(eval_env(src, &[], &mut env), Value::Int(1));
    assert_eq!(eval_env(src, &[], &mut env), Value::Int(2), "second run must accumulate");
}

#[test]
fn diagnostics_in_while_bodies_report_the_body_line() {
    // Regression: a lint anchored inside (or at the synthetic edges of)
    // a `while` body must carry the body's source line, not fall back
    // to the function's first line. The dead node-variable write at
    // line 5 is shadowed by line 6 before any read.
    let src = "\
worker() {
    node int total;
    int i = 0;
    while (i < 3) {
        total = 1;
        total = 2;
        i = i + 1;
    }
}
";
    let p = compile(src).expect("compiles");
    let report = msgr_analyze::analyze(&p);
    let dead: Vec<_> = report.diags.iter().filter(|d| d.code == "N303").collect();
    assert_eq!(dead.len(), 1, "exactly one dead-write lint: {:?}", report.diags);
    assert_eq!(dead[0].line, Some(5), "anchored to the body line, not the function head");
    // Every pc in the loop resolves to a loop line (4..=7), never the
    // function's first statement.
    let f = &p.funcs[0];
    let body_pcs = 2..f.code.len();
    for pc in body_pcs {
        let line = f.line_at(pc).expect("debug info present");
        assert!((4..=7).contains(&line), "pc {pc} attributed to line {line}");
    }
}
