//! Abstract syntax tree for MSGR-C.

use crate::Pos;
use msgr_vm::Dir;

/// A whole script: one or more functions; the first is the default entry
/// point for injected messengers.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// The functions, in source order.
    pub funcs: Vec<Func>,
}

/// A function definition. Parameters are untyped (MSGR-C values are
/// dynamically typed; declarations carry a nominal C type only for
/// initialization defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// The body.
    pub body: Vec<Stmt>,
    /// Source position of the definition.
    pub pos: Pos,
}

/// Nominal declaration types; they determine the default initializer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclType {
    /// `int` → `0`
    Int,
    /// `float` / `double` → `0.0`
    Float,
    /// `string` → `""`
    Str,
    /// `bool` → `false`
    Bool,
    /// `block` → `NULL`
    Block,
}

/// One declarator: a name, an optional array size (`int a[n];`), and an
/// optional initializer.
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    /// Declared name.
    pub name: String,
    /// Array size expression for `name[size]` declarations.
    pub array_size: Option<Expr>,
    /// Optional initializer expression.
    pub init: Option<Expr>,
    /// Source position.
    pub pos: Pos,
}

/// A pattern in a navigational destination specification.
#[derive(Debug, Clone, PartialEq)]
pub enum Pat {
    /// `*` — wildcard.
    Wild,
    /// `~` — unnamed.
    Unnamed,
    /// `virtual` — direct jump (only meaningful for `ll`).
    Virtual,
    /// An arbitrary expression.
    Expr(Expr),
}

/// The destination specification of a `hop` or `delete` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HopArgs {
    /// `ln = …` (default `*`).
    pub ln: Option<Pat>,
    /// `ll = …` (default `*`).
    pub ll: Option<Pat>,
    /// `ldir = …` (default `*`).
    pub ldir: Option<Dir>,
}

/// The argument list of a `create` statement: per-key lists plus `ALL`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CreateArgs {
    /// `ln = n1, n2, …`
    pub ln: Vec<Pat>,
    /// `ll = l1, l2, …`
    pub ll: Vec<Pat>,
    /// `ldir = d1, d2, …`
    pub ldir: Vec<Dir>,
    /// `dn = N1, N2, …`
    pub dn: Vec<Pat>,
    /// `dl = L1, L2, …`
    pub dl: Vec<Pat>,
    /// `ddir = D1, D2, …`
    pub ddir: Vec<Dir>,
    /// The `ALL` flag.
    pub all: bool,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Messenger-variable declaration (`int i = 0, j;`).
    Decl {
        /// Nominal type.
        ty: DeclType,
        /// Declarators.
        decls: Vec<Declarator>,
    },
    /// Node-variable declaration (`node block resid_A;`). Without an
    /// initializer this only introduces the name — it never overwrites an
    /// existing node variable.
    NodeDecl {
        /// Nominal type.
        ty: DeclType,
        /// Declarators.
        decls: Vec<Declarator>,
    },
    /// Expression statement (assignments, calls, …).
    Expr(Expr),
    /// `if (cond) then else?`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Optional else branch.
        otherwise: Vec<Stmt>,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) body`
    For {
        /// Optional initializer expression.
        init: Option<Expr>,
        /// Optional condition (missing = true).
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return e?;`
    Return(Option<Expr>, Pos),
    /// `break;`
    Break(Pos),
    /// `continue;`
    Continue(Pos),
    /// `hop(...);`
    Hop(HopArgs, Pos),
    /// `create(...);`
    Create(CreateArgs, Pos),
    /// `delete(...);`
    Delete(HopArgs, Pos),
    /// A nested block (scope).
    Block(Vec<Stmt>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Pos),
    /// Float literal.
    Float(f64, Pos),
    /// String literal.
    Str(String, Pos),
    /// `true` / `false`.
    Bool(bool, Pos),
    /// `NULL`.
    Null(Pos),
    /// Variable reference (messenger or node variable; resolved by the
    /// compiler from the declarations in scope).
    Var(String, Pos),
    /// Network variable (`$address` …).
    NetVar(String, Pos),
    /// Assignment, usable as an expression (value = right-hand side).
    /// With `index`, the single-level array assignment `a[i] = v`.
    Assign {
        /// Target variable name.
        target: String,
        /// Index expression for array-element assignment.
        index: Option<Box<Expr>>,
        /// Right-hand side.
        value: Box<Expr>,
        /// Position of the target.
        pos: Pos,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Position.
        pos: Pos,
    },
    /// Array indexing `base[idx]` (reads may nest).
    Index {
        /// The array expression.
        base: Box<Expr>,
        /// The index expression.
        idx: Box<Expr>,
        /// Position of the `[`.
        pos: Pos,
    },
    /// Function call — a user function if one with this name exists,
    /// otherwise a native; `M_sched_time_abs` / `M_sched_time_dlt` /
    /// `terminate` are intrinsics.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Position of the callee.
        pos: Pos,
    },
}

impl Expr {
    /// The source position of the expression's head token.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, p)
            | Expr::Float(_, p)
            | Expr::Str(_, p)
            | Expr::Bool(_, p)
            | Expr::Null(p)
            | Expr::Var(_, p)
            | Expr::NetVar(_, p)
            | Expr::Un { pos: p, .. }
            | Expr::Assign { pos: p, .. }
            | Expr::Index { pos: p, .. }
            | Expr::Call { pos: p, .. } => *p,
            Expr::Bin { lhs, .. } => lhs.pos(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_pos_traverses_binops() {
        let p = Pos { line: 3, col: 9 };
        let e = Expr::Bin {
            op: BinOp::Add,
            lhs: Box::new(Expr::Int(1, p)),
            rhs: Box::new(Expr::Int(2, Pos { line: 3, col: 13 })),
        };
        assert_eq!(e.pos(), p);
    }

    #[test]
    fn default_hop_args_are_all_wild() {
        let h = HopArgs::default();
        assert!(h.ln.is_none() && h.ll.is_none() && h.ldir.is_none());
    }
}
