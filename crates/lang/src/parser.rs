//! Recursive-descent parser for MSGR-C.

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};
use crate::{LangError, Phase, Pos};
use msgr_vm::Dir;

struct Parser {
    toks: Vec<Token>,
    at: usize,
}

fn perr(message: impl Into<String>, pos: Pos) -> LangError {
    LangError { phase: Phase::Parse, message: message.into(), pos }
}

const TYPE_NAMES: &[(&str, DeclType)] = &[
    ("int", DeclType::Int),
    ("float", DeclType::Float),
    ("double", DeclType::Float),
    ("string", DeclType::Str),
    ("bool", DeclType::Bool),
    ("block", DeclType::Block),
];

fn type_named(name: &str) -> Option<DeclType> {
    TYPE_NAMES.iter().find(|(n, _)| *n == name).map(|(_, t)| *t)
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.at]
    }

    fn peek2(&self) -> Option<&Token> {
        self.toks.get(self.at + 1)
    }

    fn pos(&self) -> Pos {
        self.peek().pos
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.at].clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn check(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token, LangError> {
        if self.check(kind) {
            Ok(self.bump())
        } else {
            Err(perr(format!("expected {what}, found {:?}", self.peek().kind), self.pos()))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Pos), LangError> {
        let pos = self.pos();
        match self.bump().kind {
            TokenKind::Ident(s) => Ok((s, pos)),
            other => Err(perr(format!("expected {what}, found {other:?}"), pos)),
        }
    }

    // ---- top level -------------------------------------------------------

    fn script(&mut self) -> Result<Script, LangError> {
        let mut funcs = Vec::new();
        while !self.check(&TokenKind::Eof) {
            funcs.push(self.function()?);
        }
        if funcs.is_empty() {
            return Err(perr("empty script: at least one function required", self.pos()));
        }
        Ok(Script { funcs })
    }

    fn function(&mut self) -> Result<Func, LangError> {
        let (name, pos) = self.ident("function name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.check(&TokenKind::RParen) {
            loop {
                let (p, ppos) = self.ident("parameter name")?;
                if params.contains(&p) {
                    return Err(perr(format!("duplicate parameter `{p}`"), ppos));
                }
                params.push(p);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        let body = self.block_body()?;
        Ok(Func { name, params, body, pos })
    }

    fn block_body(&mut self) -> Result<Vec<Stmt>, LangError> {
        let mut out = Vec::new();
        while !self.check(&TokenKind::RBrace) {
            if self.check(&TokenKind::Eof) {
                return Err(perr("unexpected end of input inside block", self.pos()));
            }
            out.push(self.stmt()?);
        }
        self.bump(); // consume `}`
        Ok(out)
    }

    // ---- statements ------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        match &self.peek().kind {
            TokenKind::LBrace => {
                self.bump();
                Ok(Stmt::Block(self.block_body()?))
            }
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt::Block(Vec::new()))
            }
            TokenKind::If => self.if_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::For => self.for_stmt(),
            TokenKind::Return => {
                let pos = self.bump().pos;
                let value = if self.check(&TokenKind::Semi) { None } else { Some(self.expr()?) };
                self.expect(&TokenKind::Semi, "`;` after return")?;
                Ok(Stmt::Return(value, pos))
            }
            TokenKind::Break => {
                let pos = self.bump().pos;
                self.expect(&TokenKind::Semi, "`;` after break")?;
                Ok(Stmt::Break(pos))
            }
            TokenKind::Continue => {
                let pos = self.bump().pos;
                self.expect(&TokenKind::Semi, "`;` after continue")?;
                Ok(Stmt::Continue(pos))
            }
            TokenKind::Node => {
                self.bump();
                let (tyname, typos) = self.ident("type name after `node`")?;
                let ty = type_named(&tyname)
                    .ok_or_else(|| perr(format!("unknown type `{tyname}`"), typos))?;
                let decls = self.declarators()?;
                Ok(Stmt::NodeDecl { ty, decls })
            }
            TokenKind::Ident(name) => {
                let name = name.clone();
                // Declaration: `<type> <ident> ...`
                if let Some(ty) = type_named(&name) {
                    if matches!(self.peek2().map(|t| &t.kind), Some(TokenKind::Ident(_))) {
                        self.bump(); // type name
                        let decls = self.declarators()?;
                        return Ok(Stmt::Decl { ty, decls });
                    }
                }
                // Navigational statements.
                if matches!(self.peek2().map(|t| &t.kind), Some(TokenKind::LParen)) {
                    match name.as_str() {
                        "hop" => return self.hop_stmt(false),
                        "delete" => return self.hop_stmt(true),
                        "create" => return self.create_stmt(),
                        _ => {}
                    }
                }
                self.expr_stmt()
            }
            _ => self.expr_stmt(),
        }
    }

    fn expr_stmt(&mut self) -> Result<Stmt, LangError> {
        let e = self.expr()?;
        self.expect(&TokenKind::Semi, "`;` after expression")?;
        Ok(Stmt::Expr(e))
    }

    fn declarators(&mut self) -> Result<Vec<Declarator>, LangError> {
        let mut out = Vec::new();
        loop {
            let (name, pos) = self.ident("variable name")?;
            let array_size = if self.eat(&TokenKind::LBracket) {
                let size = self.expr()?;
                self.expect(&TokenKind::RBracket, "`]` after array size")?;
                Some(size)
            } else {
                None
            };
            let init = if self.eat(&TokenKind::Assign) { Some(self.expr()?) } else { None };
            if array_size.is_some() && init.is_some() {
                return Err(perr("array declarations take no initializer", pos));
            }
            out.push(Declarator { name, array_size, init, pos });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::Semi, "`;` after declaration")?;
        Ok(out)
    }

    fn if_stmt(&mut self) -> Result<Stmt, LangError> {
        self.bump();
        self.expect(&TokenKind::LParen, "`(` after if")?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen, "`)` after condition")?;
        let then = vec![self.stmt()?];
        let otherwise = if self.eat(&TokenKind::Else) { vec![self.stmt()?] } else { Vec::new() };
        Ok(Stmt::If { cond, then, otherwise })
    }

    fn while_stmt(&mut self) -> Result<Stmt, LangError> {
        self.bump();
        self.expect(&TokenKind::LParen, "`(` after while")?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen, "`)` after condition")?;
        let body = vec![self.stmt()?];
        Ok(Stmt::While { cond, body })
    }

    fn for_stmt(&mut self) -> Result<Stmt, LangError> {
        self.bump();
        self.expect(&TokenKind::LParen, "`(` after for")?;
        let init = if self.check(&TokenKind::Semi) { None } else { Some(self.expr()?) };
        self.expect(&TokenKind::Semi, "`;` in for")?;
        let cond = if self.check(&TokenKind::Semi) { None } else { Some(self.expr()?) };
        self.expect(&TokenKind::Semi, "`;` in for")?;
        let step = if self.check(&TokenKind::RParen) { None } else { Some(self.expr()?) };
        self.expect(&TokenKind::RParen, "`)` after for clauses")?;
        let body = vec![self.stmt()?];
        Ok(Stmt::For { init, cond, step, body })
    }

    // ---- navigational statements ------------------------------------------

    fn dir_pattern(&mut self) -> Result<Dir, LangError> {
        let pos = self.pos();
        match self.bump().kind {
            TokenKind::Plus => Ok(Dir::Forward),
            TokenKind::Minus => Ok(Dir::Backward),
            TokenKind::Star => Ok(Dir::Any),
            other => {
                Err(perr(format!("expected link direction `+`, `-` or `*`, found {other:?}"), pos))
            }
        }
    }

    fn pattern(&mut self) -> Result<Pat, LangError> {
        match &self.peek().kind {
            TokenKind::Star => {
                self.bump();
                Ok(Pat::Wild)
            }
            TokenKind::Tilde => {
                self.bump();
                Ok(Pat::Unnamed)
            }
            TokenKind::Ident(s) if s == "virtual" => {
                self.bump();
                Ok(Pat::Virtual)
            }
            _ => Ok(Pat::Expr(self.expr()?)),
        }
    }

    fn hop_stmt(&mut self, is_delete: bool) -> Result<Stmt, LangError> {
        let pos = self.bump().pos; // `hop` / `delete`
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut args = HopArgs::default();
        if !self.check(&TokenKind::RParen) {
            loop {
                let (key, kpos) = self.ident("destination key (ln/ll/ldir)")?;
                self.expect(&TokenKind::Assign, "`=` after destination key")?;
                match key.as_str() {
                    "ln" => {
                        if args.ln.is_some() {
                            return Err(perr("duplicate `ln`", kpos));
                        }
                        args.ln = Some(self.pattern()?);
                    }
                    "ll" => {
                        if args.ll.is_some() {
                            return Err(perr("duplicate `ll`", kpos));
                        }
                        args.ll = Some(self.pattern()?);
                    }
                    "ldir" => {
                        if args.ldir.is_some() {
                            return Err(perr("duplicate `ldir`", kpos));
                        }
                        args.ldir = Some(self.dir_pattern()?);
                    }
                    other => {
                        return Err(perr(
                            format!("unknown hop key `{other}` (expected ln, ll, ldir)"),
                            kpos,
                        ))
                    }
                }
                if !self.eat(&TokenKind::Semi) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)` closing hop")?;
        self.expect(&TokenKind::Semi, "`;` after navigational statement")?;
        Ok(if is_delete { Stmt::Delete(args, pos) } else { Stmt::Hop(args, pos) })
    }

    fn create_stmt(&mut self) -> Result<Stmt, LangError> {
        let pos = self.bump().pos; // `create`
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut args = CreateArgs::default();
        if !self.check(&TokenKind::RParen) {
            loop {
                let (key, kpos) = self.ident("create key (ln/ll/ldir/dn/dl/ddir/ALL)")?;
                if key == "ALL" {
                    args.all = true;
                    if !self.eat(&TokenKind::Semi) {
                        break;
                    }
                    continue;
                }
                self.expect(&TokenKind::Assign, "`=` after create key")?;
                match key.as_str() {
                    "ln" | "ll" | "dn" | "dl" => {
                        let mut pats = Vec::new();
                        loop {
                            pats.push(self.pattern()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        let target = match key.as_str() {
                            "ln" => &mut args.ln,
                            "ll" => &mut args.ll,
                            "dn" => &mut args.dn,
                            _ => &mut args.dl,
                        };
                        if !target.is_empty() {
                            return Err(perr(format!("duplicate `{key}`"), kpos));
                        }
                        *target = pats;
                    }
                    "ldir" | "ddir" => {
                        let mut dirs = Vec::new();
                        loop {
                            // `~` in a direction list means "undirected",
                            // which we map to Any.
                            if self.eat(&TokenKind::Tilde) {
                                dirs.push(Dir::Any);
                            } else {
                                dirs.push(self.dir_pattern()?);
                            }
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        let target = if key == "ldir" { &mut args.ldir } else { &mut args.ddir };
                        if !target.is_empty() {
                            return Err(perr(format!("duplicate `{key}`"), kpos));
                        }
                        *target = dirs;
                    }
                    other => {
                        return Err(perr(format!("unknown create key `{other}`"), kpos));
                    }
                }
                if !self.eat(&TokenKind::Semi) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)` closing create")?;
        self.expect(&TokenKind::Semi, "`;` after navigational statement")?;
        Ok(Stmt::Create(args, pos))
    }

    // ---- expressions -------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, LangError> {
        let lhs = self.logic_or()?;
        if self.check(&TokenKind::Assign) {
            let pos = self.bump().pos;
            let value = self.assignment()?; // right-associative
            match lhs {
                Expr::Var(target, tpos) => {
                    return Ok(Expr::Assign {
                        target,
                        index: None,
                        value: Box::new(value),
                        pos: tpos,
                    })
                }
                Expr::Index { base, idx, pos: ipos } => match *base {
                    Expr::Var(target, _) => {
                        return Ok(Expr::Assign {
                            target,
                            index: Some(idx),
                            value: Box::new(value),
                            pos: ipos,
                        })
                    }
                    _ => {
                        return Err(perr("array assignment target must be `variable[index]`", ipos))
                    }
                },
                _ => return Err(perr("assignment target must be a variable", pos)),
            }
        }
        Ok(lhs)
    }

    fn logic_or(&mut self) -> Result<Expr, LangError> {
        let mut e = self.logic_and()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.logic_and()?;
            e = Expr::Bin { op: BinOp::Or, lhs: Box::new(e), rhs: Box::new(rhs) };
        }
        Ok(e)
    }

    fn logic_and(&mut self) -> Result<Expr, LangError> {
        let mut e = self.equality()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.equality()?;
            e = Expr::Bin { op: BinOp::And, lhs: Box::new(e), rhs: Box::new(rhs) };
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, LangError> {
        let mut e = self.relational()?;
        loop {
            let op = if self.eat(&TokenKind::Eq) {
                BinOp::Eq
            } else if self.eat(&TokenKind::Ne) {
                BinOp::Ne
            } else {
                return Ok(e);
            };
            let rhs = self.relational()?;
            e = Expr::Bin { op, lhs: Box::new(e), rhs: Box::new(rhs) };
        }
    }

    fn relational(&mut self) -> Result<Expr, LangError> {
        let mut e = self.additive()?;
        loop {
            let op = if self.eat(&TokenKind::Lt) {
                BinOp::Lt
            } else if self.eat(&TokenKind::Le) {
                BinOp::Le
            } else if self.eat(&TokenKind::Gt) {
                BinOp::Gt
            } else if self.eat(&TokenKind::Ge) {
                BinOp::Ge
            } else {
                return Ok(e);
            };
            let rhs = self.additive()?;
            e = Expr::Bin { op, lhs: Box::new(e), rhs: Box::new(rhs) };
        }
    }

    fn additive(&mut self) -> Result<Expr, LangError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = if self.eat(&TokenKind::Plus) {
                BinOp::Add
            } else if self.eat(&TokenKind::Minus) {
                BinOp::Sub
            } else {
                return Ok(e);
            };
            let rhs = self.multiplicative()?;
            e = Expr::Bin { op, lhs: Box::new(e), rhs: Box::new(rhs) };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, LangError> {
        let mut e = self.unary()?;
        loop {
            let op = if self.eat(&TokenKind::Star) {
                BinOp::Mul
            } else if self.eat(&TokenKind::Slash) {
                BinOp::Div
            } else if self.eat(&TokenKind::Percent) {
                BinOp::Mod
            } else {
                return Ok(e);
            };
            let rhs = self.unary()?;
            e = Expr::Bin { op, lhs: Box::new(e), rhs: Box::new(rhs) };
        }
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        let pos = self.pos();
        if self.eat(&TokenKind::Minus) {
            let e = self.unary()?;
            return Ok(Expr::Un { op: UnOp::Neg, expr: Box::new(e), pos });
        }
        if self.eat(&TokenKind::Bang) {
            let e = self.unary()?;
            return Ok(Expr::Un { op: UnOp::Not, expr: Box::new(e), pos });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, LangError> {
        let mut e = self.primary()?;
        while self.check(&TokenKind::LBracket) {
            let pos = self.bump().pos;
            let idx = self.expr()?;
            self.expect(&TokenKind::RBracket, "`]` after index")?;
            e = Expr::Index { base: Box::new(e), idx: Box::new(idx), pos };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let pos = self.pos();
        let tok = self.bump();
        Ok(match tok.kind {
            TokenKind::Int(v) => Expr::Int(v, pos),
            TokenKind::Float(v) => Expr::Float(v, pos),
            TokenKind::Str(s) => Expr::Str(s, pos),
            TokenKind::True => Expr::Bool(true, pos),
            TokenKind::False => Expr::Bool(false, pos),
            TokenKind::Null => Expr::Null(pos),
            TokenKind::NetVar(name) => Expr::NetVar(name, pos),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                e
            }
            TokenKind::Ident(name) => {
                if self.check(&TokenKind::LParen) {
                    if matches!(name.as_str(), "hop" | "create" | "delete") {
                        return Err(perr(
                            format!("`{name}` is a statement, not an expression"),
                            pos,
                        ));
                    }
                    self.bump();
                    let mut args = Vec::new();
                    if !self.check(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen, "`)` closing call")?;
                    Expr::Call { name, args, pos }
                } else {
                    Expr::Var(name, pos)
                }
            }
            other => return Err(perr(format!("unexpected token {other:?}"), pos)),
        })
    }
}

/// Parse MSGR-C source into a [`Script`].
///
/// # Errors
///
/// Returns the first [`LangError`] found.
pub fn parse(source: &str) -> Result<Script, LangError> {
    let toks = tokenize(source)?;
    let mut p = Parser { toks, at: 0 };
    p.script()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(src: &str) -> Vec<Stmt> {
        parse(&format!("main() {{ {src} }}")).unwrap().funcs.remove(0).body
    }

    #[test]
    fn function_headers() {
        let s = parse("f(a, b) { } g() { }").unwrap();
        assert_eq!(s.funcs.len(), 2);
        assert_eq!(s.funcs[0].params, vec!["a", "b"]);
        assert!(s.funcs[1].params.is_empty());
        assert!(parse("f(a, a) { }").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn declarations() {
        let b = body("int i, j = 2; node block resid_A; float x = 1.5;");
        match &b[0] {
            Stmt::Decl { ty, decls } => {
                assert_eq!(*ty, DeclType::Int);
                assert_eq!(decls.len(), 2);
                assert!(decls[0].init.is_none());
                assert!(decls[1].init.is_some());
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(&b[1], Stmt::NodeDecl { ty: DeclType::Block, .. }));
        assert!(matches!(&b[2], Stmt::Decl { ty: DeclType::Float, .. }));
    }

    #[test]
    fn assignment_as_expression() {
        // The Fig. 3 idiom.
        let b = body(r#"while ((task = next_task()) != NULL) { x = 1; }"#);
        match &b[0] {
            Stmt::While { cond, .. } => match cond {
                Expr::Bin { op: BinOp::Ne, lhs, .. } => {
                    assert!(matches!(**lhs, Expr::Assign { .. }));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn assignment_is_right_associative() {
        let b = body("int a, b; a = b = 1;");
        match &b[1] {
            Stmt::Expr(Expr::Assign { target, value, .. }) => {
                assert_eq!(target, "a");
                assert!(matches!(**value, Expr::Assign { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_assignment_target() {
        let e = parse("main() { 1 = 2; }").unwrap_err();
        assert!(e.message.contains("assignment target"));
    }

    #[test]
    fn hop_variants() {
        let b = body(
            r#"hop();
               hop(ll = $last);
               hop(ln = "init"; ll = x; ldir = -);
               hop(ll = ~);
               hop(ll = virtual; ln = "hub");
               delete(ll = "row");"#,
        );
        assert!(matches!(&b[0], Stmt::Hop(a, _) if a.ln.is_none() && a.ll.is_none()));
        match &b[1] {
            Stmt::Hop(a, _) => assert!(matches!(a.ll, Some(Pat::Expr(Expr::NetVar(_, _))))),
            other => panic!("{other:?}"),
        }
        match &b[2] {
            Stmt::Hop(a, _) => {
                assert!(matches!(a.ln, Some(Pat::Expr(Expr::Str(_, _)))));
                assert!(matches!(a.ll, Some(Pat::Expr(Expr::Var(_, _)))));
                assert_eq!(a.ldir, Some(Dir::Backward));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(&b[3], Stmt::Hop(a, _) if a.ll == Some(Pat::Unnamed)));
        assert!(matches!(&b[4], Stmt::Hop(a, _) if a.ll == Some(Pat::Virtual)));
        assert!(matches!(&b[5], Stmt::Delete(_, _)));
    }

    #[test]
    fn create_variants() {
        let b = body(
            r#"create(ALL);
               create(ln = a, b; ll = x, y);
               create(ln = ~; ldir = +; dn = 3; ALL);"#,
        );
        assert!(matches!(&b[0], Stmt::Create(a, _) if a.all && a.ln.is_empty()));
        match &b[1] {
            Stmt::Create(a, _) => {
                assert_eq!(a.ln.len(), 2);
                assert_eq!(a.ll.len(), 2);
                assert!(!a.all);
            }
            other => panic!("{other:?}"),
        }
        match &b[2] {
            Stmt::Create(a, _) => {
                assert_eq!(a.ln, vec![Pat::Unnamed]);
                assert_eq!(a.ldir, vec![Dir::Forward]);
                assert!(matches!(a.dn[0], Pat::Expr(Expr::Int(3, _))));
                assert!(a.all);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn navigational_keys_are_validated() {
        assert!(parse("main() { hop(zz = 1); }").is_err());
        assert!(parse("main() { hop(ln = 1; ln = 2); }").is_err());
        assert!(parse("main() { create(qq = 1); }").is_err());
        assert!(parse("main() { hop(ldir = 5); }").is_err());
    }

    #[test]
    fn hop_is_not_an_expression() {
        let e = parse("main() { x = hop(); }").unwrap_err();
        assert!(e.message.contains("statement"));
    }

    #[test]
    fn control_flow_shapes() {
        let b = body("if (1) x = 1; else { x = 2; } while (x < 3) x = x + 1; for (i = 0; i < 2; i = i + 1) ;");
        assert!(matches!(&b[0], Stmt::If { otherwise, .. } if !otherwise.is_empty()));
        assert!(matches!(&b[1], Stmt::While { .. }));
        match &b[2] {
            Stmt::For { init, cond, step, .. } => {
                assert!(init.is_some() && cond.is_some() && step.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_clauses_optional() {
        let b = body("for (;;) break;");
        assert!(matches!(&b[0], Stmt::For { init: None, cond: None, step: None, .. }));
    }

    #[test]
    fn precedence() {
        // 1 + 2 * 3 == 7 && !0  parses as  ((1 + (2*3)) == 7) && (!0)
        let b = body("x = 1 + 2 * 3 == 7 && !0;");
        match &b[0] {
            Stmt::Expr(Expr::Assign { value, .. }) => match &**value {
                Expr::Bin { op: BinOp::And, lhs, rhs } => {
                    assert!(matches!(&**lhs, Expr::Bin { op: BinOp::Eq, .. }));
                    assert!(matches!(&**rhs, Expr::Un { op: UnOp::Not, .. }));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn calls_and_net_vars() {
        let b = body(r#"res = compute(task, $address);"#);
        match &b[0] {
            Stmt::Expr(Expr::Assign { value, .. }) => match &**value {
                Expr::Call { name, args, .. } => {
                    assert_eq!(name, "compute");
                    assert_eq!(args.len(), 2);
                    assert!(matches!(&args[1], Expr::NetVar(n, _) if n == "address"));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn paper_fig3_parses() {
        let src = r#"
            manager_worker() {
                block task, res;
                create(ALL);
                hop(ll = $last);
                while ((task = next_task()) != NULL) {
                    hop(ll = $last);
                    res = compute(task);
                    hop(ll = $last);
                    deposit(res);
                }
            }
        "#;
        let s = parse(src).unwrap();
        assert_eq!(s.funcs[0].name, "manager_worker");
        assert_eq!(s.funcs[0].body.len(), 4);
    }

    #[test]
    fn paper_fig11_parses() {
        let src = r#"
            distribute_A(s, m, i, j) {
                block msgr_A;
                node block resid_A, curr_A;
                M_sched_time_abs((j - i + m) % m);
                msgr_A = copy_block(resid_A);
                hop(ll = "row");
                curr_A = copy_block(msgr_A);
            }
            rotate_B(s, m, i, j) {
                int k;
                block msgr_B;
                node block resid_B, curr_A, C;
                msgr_B = copy_block(resid_B);
                for (k = 0; k < m; k = k + 1) {
                    M_sched_time_dlt(0.5);
                    C = block_multiply(msgr_B, curr_A, C);
                    hop(ll = "column"; ldir = +);
                }
            }
        "#;
        let s = parse(src).unwrap();
        assert_eq!(s.funcs.len(), 2);
    }

    #[test]
    fn nested_blocks_and_empty_stmt() {
        let b = body("{ { x = 1; } } ;");
        assert!(matches!(&b[0], Stmt::Block(inner) if matches!(&inner[0], Stmt::Block(_))));
        assert!(matches!(&b[1], Stmt::Block(e) if e.is_empty()));
    }

    #[test]
    fn error_positions_point_at_problem() {
        let e = parse("main() {\n  x = ;\n}").unwrap_err();
        assert_eq!(e.pos.line, 2);
    }
}
