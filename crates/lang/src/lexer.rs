//! Tokenizer for MSGR-C.

use crate::{LangError, Phase, Pos};

/// Token kinds. Keywords are distinguished from identifiers during
/// lexing; navigational keywords (`hop`, `create`, …) are contextual and
/// remain identifiers until the parser classifies them — except the
/// statement keywords listed here, which cannot be used as identifiers.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (escapes processed).
    Str(String),
    /// Identifier.
    Ident(String),
    /// Network variable (without the `$`), e.g. `address`.
    NetVar(String),
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `node` (node-variable qualifier)
    Node,
    /// `true`
    True,
    /// `false`
    False,
    /// `NULL`
    Null,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `~`
    Tilde,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What it is.
    pub kind: TokenKind,
    /// Where it starts.
    pub pos: Pos,
}

/// The MSGR-C lexer. Usually used through [`tokenize`].
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    at: usize,
    line: u32,
    col: u32,
}

fn lex_err(message: impl Into<String>, pos: Pos) -> LangError {
    LangError { phase: Phase::Lex, message: message.into(), pos }
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `source`.
    pub fn new(source: &'a str) -> Self {
        Lexer { src: source.as_bytes(), at: 0, line: 1, col: 1 }
    }

    fn pos(&self) -> Pos {
        Pos { line: self.line, col: self.col }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.at).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.at + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.at += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), LangError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(lex_err("unterminated block comment", start)),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self) -> String {
        let start = self.at;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.at]).into_owned()
    }

    fn number(&mut self, pos: Pos) -> Result<TokenKind, LangError> {
        let start = self.at;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(lex_err("malformed exponent", pos));
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.at]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| lex_err(format!("bad float literal `{text}`"), pos))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|_| lex_err(format!("integer literal `{text}` out of range"), pos))
        }
    }

    fn string(&mut self, pos: Pos) -> Result<TokenKind, LangError> {
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(lex_err("unterminated string literal", pos)),
                Some(b'"') => return Ok(TokenKind::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    Some(b'0') => out.push('\0'),
                    other => {
                        return Err(lex_err(
                            format!("bad escape `\\{}`", other.map(char::from).unwrap_or(' ')),
                            pos,
                        ))
                    }
                },
                Some(c) => out.push(c as char),
            }
        }
    }

    /// Lex the next token.
    ///
    /// # Errors
    ///
    /// [`LangError`] (phase `Lex`) on malformed input.
    pub fn next_token(&mut self) -> Result<Token, LangError> {
        self.skip_trivia()?;
        let pos = self.pos();
        let Some(c) = self.peek() else {
            return Ok(Token { kind: TokenKind::Eof, pos });
        };
        let kind = match c {
            b'0'..=b'9' => self.number(pos)?,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let word = self.ident();
                match word.as_str() {
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "while" => TokenKind::While,
                    "for" => TokenKind::For,
                    "return" => TokenKind::Return,
                    "break" => TokenKind::Break,
                    "continue" => TokenKind::Continue,
                    "node" => TokenKind::Node,
                    "true" => TokenKind::True,
                    "false" => TokenKind::False,
                    "NULL" => TokenKind::Null,
                    _ => TokenKind::Ident(word),
                }
            }
            b'$' => {
                self.bump();
                let word = self.ident();
                if word.is_empty() {
                    return Err(lex_err("`$` must be followed by a network variable name", pos));
                }
                TokenKind::NetVar(word)
            }
            b'"' => {
                self.bump();
                self.string(pos)?
            }
            _ => {
                self.bump();
                match c {
                    b'(' => TokenKind::LParen,
                    b')' => TokenKind::RParen,
                    b'{' => TokenKind::LBrace,
                    b'}' => TokenKind::RBrace,
                    b'[' => TokenKind::LBracket,
                    b']' => TokenKind::RBracket,
                    b',' => TokenKind::Comma,
                    b';' => TokenKind::Semi,
                    b'+' => TokenKind::Plus,
                    b'-' => TokenKind::Minus,
                    b'*' => TokenKind::Star,
                    b'/' => TokenKind::Slash,
                    b'%' => TokenKind::Percent,
                    b'~' => TokenKind::Tilde,
                    b'=' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            TokenKind::Eq
                        } else {
                            TokenKind::Assign
                        }
                    }
                    b'!' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            TokenKind::Ne
                        } else {
                            TokenKind::Bang
                        }
                    }
                    b'<' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            TokenKind::Le
                        } else {
                            TokenKind::Lt
                        }
                    }
                    b'>' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            TokenKind::Ge
                        } else {
                            TokenKind::Gt
                        }
                    }
                    b'&' => {
                        if self.peek() == Some(b'&') {
                            self.bump();
                            TokenKind::AndAnd
                        } else {
                            return Err(lex_err("single `&` is not an MSGR-C operator", pos));
                        }
                    }
                    b'|' => {
                        if self.peek() == Some(b'|') {
                            self.bump();
                            TokenKind::OrOr
                        } else {
                            return Err(lex_err("single `|` is not an MSGR-C operator", pos));
                        }
                    }
                    other => {
                        return Err(lex_err(
                            format!("unexpected character `{}`", other as char),
                            pos,
                        ))
                    }
                }
            }
        };
        Ok(Token { kind, pos })
    }
}

/// Tokenize a whole source file (trailing [`TokenKind::Eof`] included).
///
/// # Errors
///
/// [`LangError`] (phase `Lex`) on malformed input.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LangError> {
    let mut lx = Lexer::new(source);
    let mut out = Vec::new();
    loop {
        let t = lx.next_token()?;
        let done = t.kind == TokenKind::Eof;
        out.push(t);
        if done {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("(){}[],; = == != < <= > >= + - * / % ! && || ~"),
            vec![
                LParen, RParen, LBrace, RBrace, LBracket, RBracket, Comma, Semi, Assign, Eq, Ne,
                Lt, Le, Gt, Ge, Plus, Minus, Star, Slash, Percent, Bang, AndAnd, OrOr, Tilde, Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        use TokenKind::*;
        assert_eq!(
            kinds("0 42 3.5 0.5 1e3 2.5e-2"),
            vec![Int(0), Int(42), Float(3.5), Float(0.5), Float(1e3), Float(2.5e-2), Eof]
        );
    }

    #[test]
    fn keywords_vs_identifiers() {
        use TokenKind::*;
        assert_eq!(
            kinds("if else while for return break continue node true false NULL hop xyz_1"),
            vec![
                If,
                Else,
                While,
                For,
                Return,
                Break,
                Continue,
                Node,
                True,
                False,
                Null,
                Ident("hop".into()),
                Ident("xyz_1".into()),
                Eof
            ]
        );
    }

    #[test]
    fn net_vars() {
        assert_eq!(
            kinds("$last $address"),
            vec![
                TokenKind::NetVar("last".into()),
                TokenKind::NetVar("address".into()),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("$ x").is_err());
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""row" "a\nb\"c""#),
            vec![TokenKind::Str("row".into()), TokenKind::Str("a\nb\"c".into()), TokenKind::Eof]
        );
        assert!(tokenize("\"open").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 // line\n2 /* block\nstill */ 3"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Int(3), TokenKind::Eof]
        );
        assert!(tokenize("/* never closed").is_err());
    }

    #[test]
    fn positions_are_tracked() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_characters_error() {
        let e = tokenize("a @ b").unwrap_err();
        assert_eq!(e.phase, Phase::Lex);
        assert_eq!(e.pos, Pos { line: 1, col: 3 });
    }

    #[test]
    fn integer_overflow_reported() {
        assert!(tokenize("99999999999999999999999").is_err());
    }
}
