//! Bytecode disassembler, for debugging and golden tests.

use msgr_vm::{Op, Program};

/// Render a whole program as assembly-like text.
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    out.push_str(&format!("; program {}\n", p.id()));
    for (i, c) in p.consts.iter().enumerate() {
        out.push_str(&format!("const[{i}] = {c:?}\n"));
    }
    for (i, s) in p.hop_specs.iter().enumerate() {
        out.push_str(&format!("hopspec[{i}] = {s:?}\n"));
    }
    for (i, s) in p.create_specs.iter().enumerate() {
        out.push_str(&format!("createspec[{i}] = all={} items={:?}\n", s.all, s.items));
    }
    for (fi, f) in p.funcs.iter().enumerate() {
        let marker = if fi == p.entry.0 as usize { " (entry)" } else { "" };
        out.push_str(&format!(
            "\nfn {}({} args, {} slots){}:\n",
            f.name, f.arity, f.n_slots, marker
        ));
        for (pc, op) in f.code.iter().enumerate() {
            out.push_str(&format!("  {pc:4}  {}\n", render(p, *op, pc)));
        }
    }
    out
}

fn render(p: &Program, op: Op, pc: usize) -> String {
    match op {
        Op::Const(i) => format!("const     {:?}", p.consts[i as usize]),
        Op::LoadLocal(i) => format!("lload     {i}"),
        Op::StoreLocal(i) => format!("lstore    {i}"),
        Op::LoadNode(i) => format!("nload     {:?}", p.consts[i as usize]),
        Op::StoreNode(i) => format!("nstore    {:?}", p.consts[i as usize]),
        Op::LoadNet(v) => format!("netload   {v:?}"),
        Op::Jump(o) => format!("jmp       -> {}", pc as i64 + 1 + o as i64),
        Op::JumpIfFalse(o) => format!("jfalse    -> {}", pc as i64 + 1 + o as i64),
        Op::JumpIfTruePeek(o) => format!("jtrue.pk  -> {}", pc as i64 + 1 + o as i64),
        Op::JumpIfFalsePeek(o) => format!("jfalse.pk -> {}", pc as i64 + 1 + o as i64),
        Op::Call { f, argc } => {
            format!("call      {}/{argc}", p.funcs[f as usize].name)
        }
        Op::CallNative { name, argc } => {
            format!("native    {:?}/{argc}", p.consts[name as usize])
        }
        Op::Hop(i) => format!("hop       spec {i}"),
        Op::Create(i) => format!("create    spec {i}"),
        Op::Delete(i) => format!("delete    spec {i}"),
        other => format!("{other:?}").to_lowercase(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn disassembly_mentions_everything() {
        let p = compile(
            r#"main() {
                int i = 0;
                node int acc;
                while (i < 3) { i = i + 1; acc = acc + helper(i); }
                hop(ll = "row");
                create(ALL);
            }
            helper(x) { return x * 2; }"#,
        )
        .unwrap();
        let text = disassemble(&p);
        assert!(text.contains("fn main(0 args"));
        assert!(text.contains("(entry)"));
        assert!(text.contains("fn helper(1 args"));
        assert!(text.contains("call      helper/1"));
        assert!(text.contains("nstore"));
        assert!(text.contains("hop       spec 0"));
        assert!(text.contains("create    spec 0"));
        assert!(text.contains("jfalse"));
    }

    #[test]
    fn jump_targets_render_as_absolute_pcs() {
        let p = compile("main() { int i; while (i < 2) i = i + 1; }").unwrap();
        let text = disassemble(&p);
        // Every rendered jump target must be a valid pc.
        let code_len = p.funcs[0].code.len() as i64;
        for line in text.lines() {
            if let Some(idx) = line.find("-> ") {
                let target: i64 = line[idx + 3..].trim().parse().unwrap();
                assert!((0..=code_len).contains(&target), "bad target in {line}");
            }
        }
    }
}
