//! Bytecode disassembler, for debugging and golden tests.
//!
//! Jump targets print as block labels (`L0:`, `L1:`, …) computed by
//! `msgr_analyze::block_labels`, the same labels `msgr-lint`
//! diagnostics reference — so a warning "at pc 14 (L2)" points at a
//! labelled line in the listing.

use msgr_analyze::block_labels;
use msgr_vm::{Op, Program};
use std::collections::BTreeMap;

/// Render a whole program as assembly-like text.
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    out.push_str(&format!("; program {}\n", p.id()));
    for (i, c) in p.consts.iter().enumerate() {
        out.push_str(&format!("const[{i}] = {c:?}\n"));
    }
    for (i, s) in p.hop_specs.iter().enumerate() {
        out.push_str(&format!("hopspec[{i}] = {s:?}\n"));
    }
    for (i, s) in p.create_specs.iter().enumerate() {
        out.push_str(&format!("createspec[{i}] = all={} items={:?}\n", s.all, s.items));
    }
    for (fi, f) in p.funcs.iter().enumerate() {
        let marker = if fi == p.entry.0 as usize { " (entry)" } else { "" };
        out.push_str(&format!(
            "\nfn {}({} args, {} slots){}:\n",
            f.name, f.arity, f.n_slots, marker
        ));
        let labels = block_labels(f);
        for (pc, op) in f.code.iter().enumerate() {
            if let Some(l) = labels.get(&pc) {
                out.push_str(&format!("L{l}:\n"));
            }
            out.push_str(&format!("  {pc:4}  {}\n", render(p, *op, pc, &labels)));
        }
        if let Some(l) = labels.get(&f.code.len()) {
            // A jump to one past the end is the implicit `return NULL`.
            out.push_str(&format!("L{l}:  ; end of function\n"));
        }
    }
    out
}

fn label(labels: &BTreeMap<usize, usize>, pc: usize, off: i32) -> String {
    let target = pc as i64 + 1 + off as i64;
    match usize::try_from(target).ok().and_then(|t| labels.get(&t)) {
        Some(l) => format!("L{l}"),
        // Out-of-range target (never produced by the compiler; shown
        // raw so broken programs still disassemble).
        None => format!("-> {target}"),
    }
}

fn render(p: &Program, op: Op, pc: usize, labels: &BTreeMap<usize, usize>) -> String {
    match op {
        Op::Const(i) => format!("const     {:?}", p.consts[i as usize]),
        Op::LoadLocal(i) => format!("lload     {i}"),
        Op::StoreLocal(i) => format!("lstore    {i}"),
        Op::LoadNode(i) => format!("nload     {:?}", p.consts[i as usize]),
        Op::StoreNode(i) => format!("nstore    {:?}", p.consts[i as usize]),
        Op::LoadNet(v) => format!("netload   {v:?}"),
        Op::Jump(o) => format!("jmp       {}", label(labels, pc, o)),
        Op::JumpIfFalse(o) => format!("jfalse    {}", label(labels, pc, o)),
        Op::JumpIfTruePeek(o) => format!("jtrue.pk  {}", label(labels, pc, o)),
        Op::JumpIfFalsePeek(o) => format!("jfalse.pk {}", label(labels, pc, o)),
        Op::Call { f, argc } => {
            format!("call      {}/{argc}", p.funcs[f as usize].name)
        }
        Op::CallNative { name, argc } => {
            format!("native    {:?}/{argc}", p.consts[name as usize])
        }
        Op::Hop(i) => format!("hop       spec {i}"),
        Op::Create(i) => format!("create    spec {i}"),
        Op::Delete(i) => format!("delete    spec {i}"),
        other => format!("{other:?}").to_lowercase(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn disassembly_mentions_everything() {
        let p = compile(
            r#"main() {
                int i = 0;
                node int acc;
                while (i < 3) { i = i + 1; acc = acc + helper(i); }
                hop(ll = "row");
                create(ALL);
            }
            helper(x) { return x * 2; }"#,
        )
        .unwrap();
        let text = disassemble(&p);
        assert!(text.contains("fn main(0 args"));
        assert!(text.contains("(entry)"));
        assert!(text.contains("fn helper(1 args"));
        assert!(text.contains("call      helper/1"));
        assert!(text.contains("nstore"));
        assert!(text.contains("hop       spec 0"));
        assert!(text.contains("create    spec 0"));
        assert!(text.contains("jfalse"));
    }

    #[test]
    fn jump_targets_render_as_block_labels() {
        let p = compile("main() { int i; while (i < 2) i = i + 1; }").unwrap();
        let text = disassemble(&p);
        // Every rendered jump must reference a label that is also
        // defined as a `L<n>:` line; no raw offsets remain.
        let mut defined = std::collections::BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix('L') {
                if let Some(colon) = rest.find(':') {
                    defined.insert(rest[..colon].to_string());
                }
            }
        }
        let mut referenced = 0;
        for line in text.lines() {
            if line.contains("jmp") || line.contains("jfalse") || line.contains("jtrue") {
                assert!(!line.contains("-> "), "raw jump target leaked: {line}");
                let l = line.rfind('L').expect("jump without label");
                let name = line[l + 1..].trim();
                assert!(defined.contains(name), "undefined label L{name} in {line}");
                referenced += 1;
            }
        }
        assert!(referenced >= 2, "while loop should have at least two jumps");
    }
}
