//! Code generation: AST → `msgr-vm` bytecode.

use std::collections::HashMap;

use crate::ast::*;
use crate::{LangError, Phase, Pos};
use msgr_vm::{
    Builder, CreateItem, CreateSpec, Dir, HopSpec, LinkPat, NamePat, NetVar, NodePat, Op, Program,
    Value,
};

fn cerr(message: impl Into<String>, pos: Pos) -> LangError {
    LangError { phase: Phase::Compile, message: message.into(), pos }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Binding {
    Local(u16),
    NodeVar,
}

struct LoopCtx {
    break_patches: Vec<usize>,
    continue_patches: Vec<usize>,
}

struct FnCompiler<'a> {
    builder: &'a mut Builder,
    signatures: &'a HashMap<String, (u16, u8)>,
    code: Vec<Op>,
    lines: Vec<u32>,
    cur_line: u32,
    scopes: Vec<HashMap<String, Binding>>,
    next_slot: u16,
    max_slot: u16,
    loops: Vec<LoopCtx>,
}

impl<'a> FnCompiler<'a> {
    fn new(builder: &'a mut Builder, signatures: &'a HashMap<String, (u16, u8)>) -> Self {
        FnCompiler {
            builder,
            signatures,
            code: Vec::new(),
            lines: Vec::new(),
            cur_line: 0,
            scopes: vec![HashMap::new()],
            next_slot: 0,
            max_slot: 0,
            loops: Vec::new(),
        }
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare_local(&mut self, name: &str, pos: Pos) -> Result<u16, LangError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.contains_key(name) {
            return Err(cerr(format!("`{name}` already declared in this scope"), pos));
        }
        let slot = self.next_slot;
        if slot == u16::MAX {
            return Err(cerr("too many local variables", pos));
        }
        self.next_slot += 1;
        self.max_slot = self.max_slot.max(self.next_slot);
        scope.insert(name.to_string(), Binding::Local(slot));
        Ok(slot)
    }

    fn declare_node_var(&mut self, name: &str) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), Binding::NodeVar);
    }

    fn emit(&mut self, op: Op) -> usize {
        self.code.push(op);
        self.lines.push(self.cur_line);
        self.code.len() - 1
    }

    /// Record the source line the next emitted ops belong to, for the
    /// debug line table consumed by `msgr-analyze` diagnostics.
    fn at(&mut self, pos: Pos) {
        self.cur_line = pos.line;
    }

    fn here(&self) -> usize {
        self.code.len()
    }

    fn patch_to_here(&mut self, at: usize) {
        self.patch(at, self.here());
    }

    fn patch(&mut self, at: usize, target: usize) {
        let off = target as i64 - (at as i64 + 1);
        match &mut self.code[at] {
            Op::Jump(o) | Op::JumpIfFalse(o) | Op::JumpIfTruePeek(o) | Op::JumpIfFalsePeek(o) => {
                *o = off as i32
            }
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn const_op(&mut self, v: Value) -> Op {
        Op::Const(self.builder.constant(v))
    }

    fn name_const(&mut self, name: &str) -> u16 {
        self.builder.constant(Value::str(name))
    }

    // ---- expressions -----------------------------------------------------

    fn load_var(&mut self, name: &str, pos: Pos) -> Result<(), LangError> {
        match self.lookup(name) {
            Some(Binding::Local(slot)) => {
                self.emit(Op::LoadLocal(slot));
                Ok(())
            }
            Some(Binding::NodeVar) => {
                let c = self.name_const(name);
                self.emit(Op::LoadNode(c));
                Ok(())
            }
            None => Err(cerr(format!("undeclared variable `{name}`"), pos)),
        }
    }

    fn store(&mut self, target: &str, pos: Pos) -> Result<(), LangError> {
        match self.lookup(target) {
            Some(Binding::Local(slot)) => {
                self.emit(Op::StoreLocal(slot));
                Ok(())
            }
            Some(Binding::NodeVar) => {
                let c = self.name_const(target);
                self.emit(Op::StoreNode(c));
                Ok(())
            }
            None => Err(cerr(format!("assignment to undeclared variable `{target}`"), pos)),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<(), LangError> {
        self.at(e.pos());
        match e {
            Expr::Int(v, _) => {
                let op = self.const_op(Value::Int(*v));
                self.emit(op);
            }
            Expr::Float(v, _) => {
                let op = self.const_op(Value::Float(*v));
                self.emit(op);
            }
            Expr::Str(s, _) => {
                let op = self.const_op(Value::str(s));
                self.emit(op);
            }
            Expr::Bool(b, _) => {
                let op = self.const_op(Value::Bool(*b));
                self.emit(op);
            }
            Expr::Null(_) => {
                let op = self.const_op(Value::Null);
                self.emit(op);
            }
            Expr::Var(name, pos) => match self.lookup(name) {
                Some(Binding::Local(slot)) => {
                    self.emit(Op::LoadLocal(slot));
                }
                Some(Binding::NodeVar) => {
                    let c = self.name_const(name);
                    self.emit(Op::LoadNode(c));
                }
                None => return Err(cerr(format!("undeclared variable `{name}`"), *pos)),
            },
            Expr::NetVar(name, pos) => {
                let var = match name.as_str() {
                    "address" => NetVar::Address,
                    "last" => NetVar::Last,
                    "node" => NetVar::Node,
                    "time" => NetVar::Time,
                    other => {
                        return Err(cerr(format!("unknown network variable `${other}`"), *pos))
                    }
                };
                self.emit(Op::LoadNet(var));
            }
            Expr::Assign { target, index: None, value, pos } => {
                self.expr(value)?;
                self.emit(Op::Dup);
                self.store(target, *pos)?;
            }
            Expr::Assign { target, index: Some(idx), value, pos } => {
                // a[i] = v  →  load a; eval i; eval v; IndexSet; dup; store a
                // (the expression's value is the whole updated array, as
                // close to C's "assignment yields the stored value" as a
                // value-semantics array allows; statement context pops it).
                self.load_var(target, *pos)?;
                self.expr(idx)?;
                self.expr(value)?;
                self.emit(Op::IndexSet);
                self.emit(Op::Dup);
                self.store(target, *pos)?;
            }
            Expr::Index { base, idx, .. } => {
                self.expr(base)?;
                self.expr(idx)?;
                self.emit(Op::IndexGet);
            }
            Expr::Un { op, expr, .. } => {
                self.expr(expr)?;
                self.emit(match op {
                    UnOp::Neg => Op::Neg,
                    UnOp::Not => Op::Not,
                });
            }
            Expr::Bin { op: BinOp::And, lhs, rhs } => {
                self.expr(lhs)?;
                let j = self.emit(Op::JumpIfFalsePeek(0));
                self.emit(Op::Pop);
                self.expr(rhs)?;
                self.patch_to_here(j);
            }
            Expr::Bin { op: BinOp::Or, lhs, rhs } => {
                self.expr(lhs)?;
                let j = self.emit(Op::JumpIfTruePeek(0));
                self.emit(Op::Pop);
                self.expr(rhs)?;
                self.patch_to_here(j);
            }
            Expr::Bin { op, lhs, rhs } => {
                self.expr(lhs)?;
                self.expr(rhs)?;
                self.emit(match op {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::Mod => Op::Mod,
                    BinOp::Eq => Op::Eq,
                    BinOp::Ne => Op::Ne,
                    BinOp::Lt => Op::Lt,
                    BinOp::Le => Op::Le,
                    BinOp::Gt => Op::Gt,
                    BinOp::Ge => Op::Ge,
                    BinOp::And | BinOp::Or => unreachable!(),
                });
            }
            Expr::Call { name, args, pos } => self.call(name, args, *pos)?,
        }
        Ok(())
    }

    fn call(&mut self, name: &str, args: &[Expr], pos: Pos) -> Result<(), LangError> {
        // Virtual-time intrinsics (§2.2) and `terminate`.
        match name {
            "M_sched_time_abs" | "M_sched_time_dlt" => {
                if args.len() != 1 {
                    return Err(cerr(format!("`{name}` takes exactly one argument"), pos));
                }
                self.expr(&args[0])?;
                self.emit(if name == "M_sched_time_abs" { Op::SchedAbs } else { Op::SchedDlt });
                // The intrinsic's value, if anyone uses it, is NULL.
                let op = self.const_op(Value::Null);
                self.emit(op);
                return Ok(());
            }
            "terminate" => {
                if !args.is_empty() {
                    return Err(cerr("`terminate` takes no arguments", pos));
                }
                self.emit(Op::Halt);
                let op = self.const_op(Value::Null);
                self.emit(op);
                return Ok(());
            }
            _ => {}
        }
        for a in args {
            self.expr(a)?;
        }
        if args.len() > u8::MAX as usize {
            return Err(cerr("too many call arguments", pos));
        }
        if let Some(&(f, arity)) = self.signatures.get(name) {
            if args.len() != arity as usize {
                return Err(cerr(
                    format!("`{name}` expects {arity} argument(s), got {}", args.len()),
                    pos,
                ));
            }
            self.emit(Op::Call { f, argc: args.len() as u8 });
        } else {
            // Unknown at compile time: a native, resolved by the daemon at
            // run time (the paper's dynamically loaded C functions).
            let c = self.name_const(name);
            self.emit(Op::CallNative { name: c, argc: args.len() as u8 });
        }
        Ok(())
    }

    // ---- navigational specs ------------------------------------------------

    /// Compile a hop/delete destination: returns the static spec after
    /// emitting operand expressions (ln first, then ll).
    fn hop_args(&mut self, args: &HopArgs, pos: Pos) -> Result<HopSpec, LangError> {
        let ln = match &args.ln {
            None | Some(Pat::Wild) => NodePat::Wild,
            Some(Pat::Expr(e)) => {
                self.expr(e)?;
                NodePat::Expr
            }
            Some(Pat::Unnamed) => return Err(cerr("`~` is not a valid node pattern in hop", pos)),
            Some(Pat::Virtual) => return Err(cerr("`virtual` applies to `ll`, not `ln`", pos)),
        };
        let ll = match &args.ll {
            None | Some(Pat::Wild) => LinkPat::Wild,
            Some(Pat::Unnamed) => LinkPat::Unnamed,
            Some(Pat::Virtual) => LinkPat::Virtual,
            Some(Pat::Expr(e)) => {
                self.expr(e)?;
                LinkPat::Expr
            }
        };
        if ll == LinkPat::Virtual && ln == NodePat::Wild {
            return Err(cerr("a virtual hop requires an explicit `ln` destination", pos));
        }
        Ok(HopSpec { ln, ll, ldir: args.ldir.unwrap_or(Dir::Any) })
    }

    fn create_args(&mut self, args: &CreateArgs, pos: Pos) -> Result<CreateSpec, LangError> {
        let lens = [
            args.ln.len(),
            args.ll.len(),
            args.ldir.len(),
            args.dn.len(),
            args.dl.len(),
            args.ddir.len(),
        ];
        let k = lens.iter().copied().max().unwrap_or(0).max(1);
        for (what, l) in ["ln", "ll", "ldir", "dn", "dl", "ddir"].iter().zip(lens) {
            if l != 0 && l != k {
                return Err(cerr(
                    format!("create: `{what}` has {l} entries but other keys have {k}"),
                    pos,
                ));
            }
        }
        let mut items = Vec::with_capacity(k);
        for i in 0..k {
            // Operand order per item: ln, ll, dn, dl.
            let ln = match args.ln.get(i) {
                None | Some(Pat::Unnamed) => NamePat::Unnamed,
                Some(Pat::Wild) => {
                    return Err(cerr("`*` is not a valid name for a created node", pos))
                }
                Some(Pat::Virtual) => {
                    return Err(cerr("`virtual` is not a valid name for a created node", pos))
                }
                Some(Pat::Expr(e)) => {
                    self.expr(e)?;
                    NamePat::Expr
                }
            };
            let ll = match args.ll.get(i) {
                None | Some(Pat::Unnamed) => NamePat::Unnamed,
                Some(Pat::Wild) => {
                    return Err(cerr("`*` is not a valid name for a created link", pos))
                }
                Some(Pat::Virtual) => {
                    return Err(cerr("`virtual` is not a valid name for a created link", pos))
                }
                Some(Pat::Expr(e)) => {
                    self.expr(e)?;
                    NamePat::Expr
                }
            };
            let dn = match args.dn.get(i) {
                None | Some(Pat::Wild) => NodePat::Wild,
                Some(Pat::Unnamed) => return Err(cerr("`~` is not a valid daemon pattern", pos)),
                Some(Pat::Virtual) => {
                    return Err(cerr("`virtual` is not a valid daemon pattern", pos))
                }
                Some(Pat::Expr(e)) => {
                    self.expr(e)?;
                    NodePat::Expr
                }
            };
            let dl = match args.dl.get(i) {
                None | Some(Pat::Wild) => LinkPat::Wild,
                Some(Pat::Unnamed) => LinkPat::Unnamed,
                Some(Pat::Virtual) => {
                    return Err(cerr("`virtual` is not a valid daemon-link pattern", pos))
                }
                Some(Pat::Expr(e)) => {
                    self.expr(e)?;
                    LinkPat::Expr
                }
            };
            items.push(CreateItem {
                ln,
                ll,
                ldir: args.ldir.get(i).copied().unwrap_or(Dir::Any),
                dn,
                dl,
                ddir: args.ddir.get(i).copied().unwrap_or(Dir::Any),
            });
        }
        Ok(CreateSpec { items, all: args.all })
    }

    // ---- statements --------------------------------------------------------

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), LangError> {
        self.scopes.push(HashMap::new());
        let saved = self.next_slot;
        for s in body {
            self.stmt(s)?;
        }
        self.scopes.pop();
        self.next_slot = saved;
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LangError> {
        match s {
            Stmt::Return(_, pos)
            | Stmt::Break(pos)
            | Stmt::Continue(pos)
            | Stmt::Hop(_, pos)
            | Stmt::Create(_, pos)
            | Stmt::Delete(_, pos) => self.at(*pos),
            _ => {}
        }
        match s {
            Stmt::Decl { ty, decls } => {
                for d in decls {
                    self.at(d.pos);
                    // Evaluate the initializer before the name is in
                    // scope (C's `int x = x;` footgun is a compile error
                    // here, which is strictly safer).
                    if let Some(size) = &d.array_size {
                        // `int a[n];` → array of n type-defaults.
                        self.expr(size)?;
                        let op = self.const_op(default_value(*ty));
                        self.emit(op);
                        self.emit(Op::MakeArr);
                    } else if let Some(init) = &d.init {
                        self.expr(init)?;
                    } else {
                        let op = self.const_op(default_value(*ty));
                        self.emit(op);
                    }
                    let slot = self.declare_local(&d.name, d.pos)?;
                    self.emit(Op::StoreLocal(slot));
                }
            }
            Stmt::NodeDecl { ty, decls } => {
                // A node declaration only introduces the name: the
                // variable lives at whatever node the messenger visits,
                // reads as NULL until someone stores to it, and is never
                // clobbered by a declaration (arithmetic coerces NULL to
                // zero, so counter idioms need no initialization). An
                // explicit initializer (or array size) does store.
                for d in decls {
                    self.at(d.pos);
                    self.declare_node_var(&d.name);
                    if let Some(size) = &d.array_size {
                        // Materialize the array only if the node variable
                        // is still NULL — a later messenger re-declaring
                        // it must not clobber existing contents.
                        let c = self.name_const(&d.name);
                        self.emit(Op::LoadNode(c));
                        let null_c = self.const_op(Value::Null);
                        self.emit(null_c);
                        self.emit(Op::Ne);
                        let skip = self.emit(Op::JumpIfTruePeek(0));
                        self.emit(Op::Pop);
                        self.expr(size)?;
                        let op = self.const_op(default_value(*ty));
                        self.emit(op);
                        self.emit(Op::MakeArr);
                        self.emit(Op::StoreNode(c));
                        let done = self.emit(Op::Jump(0));
                        self.patch_to_here(skip);
                        self.emit(Op::Pop);
                        self.patch_to_here(done);
                    } else if let Some(init) = &d.init {
                        self.expr(init)?;
                        let c = self.name_const(&d.name);
                        self.emit(Op::StoreNode(c));
                    }
                }
            }
            Stmt::Expr(e) => {
                // Assignment statements skip the Dup/Pop pair.
                match e {
                    Expr::Assign { target, index: None, value, pos } => {
                        self.expr(value)?;
                        self.store(target, *pos)?;
                    }
                    Expr::Assign { target, index: Some(idx), value, pos } => {
                        self.load_var(target, *pos)?;
                        self.expr(idx)?;
                        self.expr(value)?;
                        self.emit(Op::IndexSet);
                        self.store(target, *pos)?;
                    }
                    other => {
                        self.expr(other)?;
                        self.emit(Op::Pop);
                    }
                }
            }
            Stmt::If { cond, then, otherwise } => {
                self.expr(cond)?;
                let jelse = self.emit(Op::JumpIfFalse(0));
                self.stmts(then)?;
                if otherwise.is_empty() {
                    self.patch_to_here(jelse);
                } else {
                    let jend = self.emit(Op::Jump(0));
                    self.patch_to_here(jelse);
                    self.stmts(otherwise)?;
                    self.patch_to_here(jend);
                }
            }
            Stmt::While { cond, body } => {
                let head = self.here();
                self.expr(cond)?;
                let jend = self.emit(Op::JumpIfFalse(0));
                self.loops.push(LoopCtx { break_patches: vec![], continue_patches: vec![] });
                self.stmts(body)?;
                let ctx = self.loops.pop().expect("loop ctx");
                for p in ctx.continue_patches {
                    self.patch(p, head);
                }
                let jback = self.emit(Op::Jump(0));
                self.patch(jback, head);
                self.patch_to_here(jend);
                for p in ctx.break_patches {
                    self.patch_to_here(p);
                }
            }
            Stmt::For { init, cond, step, body } => {
                self.scopes.push(HashMap::new());
                let saved = self.next_slot;
                if let Some(e) = init {
                    self.expr(e)?;
                    self.emit(Op::Pop);
                }
                let head = self.here();
                let jend = match cond {
                    Some(c) => {
                        self.expr(c)?;
                        Some(self.emit(Op::JumpIfFalse(0)))
                    }
                    None => None,
                };
                self.loops.push(LoopCtx { break_patches: vec![], continue_patches: vec![] });
                self.stmts(body)?;
                let ctx = self.loops.pop().expect("loop ctx");
                let step_at = self.here();
                for p in ctx.continue_patches {
                    self.patch(p, step_at);
                }
                if let Some(e) = step {
                    self.expr(e)?;
                    self.emit(Op::Pop);
                }
                let jback = self.emit(Op::Jump(0));
                self.patch(jback, head);
                if let Some(j) = jend {
                    self.patch_to_here(j);
                }
                for p in ctx.break_patches {
                    self.patch_to_here(p);
                }
                self.scopes.pop();
                self.next_slot = saved;
            }
            Stmt::Return(value, _) => {
                match value {
                    Some(e) => self.expr(e)?,
                    None => {
                        let op = self.const_op(Value::Null);
                        self.emit(op);
                    }
                }
                self.emit(Op::Ret);
            }
            Stmt::Break(pos) => {
                let j = self.emit(Op::Jump(0));
                match self.loops.last_mut() {
                    Some(ctx) => ctx.break_patches.push(j),
                    None => return Err(cerr("`break` outside a loop", *pos)),
                }
            }
            Stmt::Continue(pos) => {
                let j = self.emit(Op::Jump(0));
                match self.loops.last_mut() {
                    Some(ctx) => ctx.continue_patches.push(j),
                    None => return Err(cerr("`continue` outside a loop", *pos)),
                }
            }
            Stmt::Hop(args, pos) => {
                let spec = self.hop_args(args, *pos)?;
                let i = self.builder.hop_spec(spec);
                self.at(*pos);
                self.emit(Op::Hop(i));
            }
            Stmt::Delete(args, pos) => {
                let spec = self.hop_args(args, *pos)?;
                let i = self.builder.hop_spec(spec);
                self.at(*pos);
                self.emit(Op::Delete(i));
            }
            Stmt::Create(args, pos) => {
                let spec = self.create_args(args, *pos)?;
                let i = self.builder.create_spec(spec);
                self.at(*pos);
                self.emit(Op::Create(i));
            }
            Stmt::Block(body) => self.stmts(body)?,
        }
        Ok(())
    }
}

fn default_value(ty: DeclType) -> Value {
    match ty {
        DeclType::Int => Value::Int(0),
        DeclType::Float => Value::Float(0.0),
        DeclType::Str => Value::str(""),
        DeclType::Bool => Value::Bool(false),
        DeclType::Block => Value::Null,
    }
}

/// Compile a parsed [`Script`] to a [`Program`]. The entry point is the
/// first function.
///
/// # Errors
///
/// Returns a [`LangError`] (phase `Compile`) for resolution problems:
/// undeclared variables, arity mismatches, `break` outside loops, …
pub fn compile_ast(script: &Script) -> Result<Program, LangError> {
    let mut signatures: HashMap<String, (u16, u8)> = HashMap::new();
    for (i, f) in script.funcs.iter().enumerate() {
        if signatures.contains_key(&f.name) {
            return Err(cerr(format!("duplicate function `{}`", f.name), f.pos));
        }
        if f.params.len() > u8::MAX as usize {
            return Err(cerr("too many parameters", f.pos));
        }
        signatures.insert(f.name.clone(), (i as u16, f.params.len() as u8));
    }
    let mut builder = Builder::new();
    let mut compiled = Vec::new();
    for f in &script.funcs {
        let mut fc = FnCompiler::new(&mut builder, &signatures);
        for (p, _) in f.params.iter().zip(0u16..) {
            fc.declare_local(p, f.pos)?;
        }
        for s in &f.body {
            fc.stmt(s)?;
        }
        let max_slot = fc.max_slot;
        let code = fc.code;
        let lines = fc.lines;
        compiled.push((f.name.clone(), f.params.len() as u8, max_slot, code, lines));
    }
    let mut entry = None;
    for (name, arity, n_slots, code, lines) in compiled {
        let extra = n_slots - arity as u16;
        let id = builder.function_with_lines(name, arity, extra, code, lines);
        if entry.is_none() {
            entry = Some(id);
        }
    }
    Ok(builder.finish(entry.expect("script has at least one function")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use msgr_vm::{interp, MessengerState, NullEnv, Yield};

    fn compile(src: &str) -> Program {
        compile_ast(&parse(src).unwrap()).unwrap()
    }

    fn run_value(src: &str, args: &[Value]) -> Value {
        let p = compile(src);
        let mut m = MessengerState::launch(&p, 1.into(), args).unwrap();
        match interp::run(&p, &mut m, &mut NullEnv, 1_000_000).unwrap() {
            Yield::Terminated(v) => v,
            other => panic!("unexpected yield {other:?}"),
        }
    }

    #[test]
    fn arithmetic_program() {
        assert_eq!(run_value("main() { return (2 + 3) * 4 - 6 / 2; }", &[]), Value::Int(17));
    }

    #[test]
    fn while_loop_sums() {
        let v = run_value(
            "main(n) { int i, acc; i = 0; acc = 0; while (i < n) { acc = acc + i; i = i + 1; } return acc; }",
            &[Value::Int(10)],
        );
        assert_eq!(v, Value::Int(45));
    }

    #[test]
    fn for_loop_with_break_continue() {
        let v = run_value(
            r#"main() {
                int i, acc = 0;
                for (i = 0; i < 100; i = i + 1) {
                    if (i % 2 == 0) continue;
                    if (i > 10) break;
                    acc = acc + i;
                }
                return acc; /* 1+3+5+7+9 = 25 */
            }"#,
            &[],
        );
        assert_eq!(v, Value::Int(25));
    }

    #[test]
    fn recursion_fib() {
        let v = run_value(
            r#"fib(n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }"#,
            &[Value::Int(12)],
        );
        assert_eq!(v, Value::Int(144));
    }

    #[test]
    fn mutual_recursion_forward_reference() {
        let v = run_value(
            r#"
            is_even(n) { if (n == 0) return true; return is_odd(n - 1); }
            is_odd(n) { if (n == 0) return false; return is_even(n - 1); }
            "#,
            &[Value::Int(10)],
        );
        assert_eq!(v, Value::Bool(true));
    }

    #[test]
    fn short_circuit_does_not_evaluate_rhs() {
        // Division by zero on the rhs must be skipped.
        assert_eq!(
            run_value("main() { if (false && 1 / 0) return 1; return 2; }", &[]),
            Value::Int(2)
        );
        assert_eq!(
            run_value("main() { if (true || 1 / 0) return 1; return 2; }", &[]),
            Value::Int(1)
        );
    }

    #[test]
    fn declaration_defaults() {
        assert_eq!(run_value("main() { int i; return i; }", &[]), Value::Int(0));
        assert_eq!(run_value("main() { float x; return x; }", &[]), Value::Float(0.0));
        assert_eq!(run_value("main() { string s; return s; }", &[]), Value::str(""));
        assert_eq!(run_value("main() { block b; return b; }", &[]), Value::Null);
        assert_eq!(run_value("main() { bool b; return b; }", &[]), Value::Bool(false));
    }

    #[test]
    fn scoping_and_shadowing() {
        let v = run_value(
            r#"main() {
                int x = 1;
                { int x = 2; }
                return x;
            }"#,
            &[],
        );
        assert_eq!(v, Value::Int(1));
    }

    #[test]
    fn undeclared_variable_is_an_error() {
        let e = compile_ast(&parse("main() { return nope; }").unwrap()).unwrap_err();
        assert!(e.message.contains("undeclared"));
        let e = compile_ast(&parse("main() { nope = 1; }").unwrap()).unwrap_err();
        assert!(e.message.contains("undeclared"));
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let e = compile_ast(&parse("main() { int x; int x; }").unwrap()).unwrap_err();
        assert!(e.message.contains("already declared"));
    }

    #[test]
    fn break_outside_loop_rejected() {
        let e = compile_ast(&parse("main() { break; }").unwrap()).unwrap_err();
        assert!(e.message.contains("outside"));
    }

    #[test]
    fn user_call_arity_checked() {
        let e = compile_ast(&parse("f(a, b) { return a; } main() { return f(1); }").unwrap())
            .unwrap_err();
        assert!(e.message.contains("expects 2"));
    }

    #[test]
    fn duplicate_function_rejected() {
        let e = compile_ast(&parse("f() { } f() { }").unwrap()).unwrap_err();
        assert!(e.message.contains("duplicate function"));
    }

    #[test]
    fn unknown_calls_become_natives() {
        let p = compile("main() { return mystery(1, 2); }");
        assert!(p.funcs[0].code.iter().any(|op| matches!(op, Op::CallNative { argc: 2, .. })));
    }

    #[test]
    fn sched_intrinsics_compile() {
        let p = compile("main() { M_sched_time_abs(1.0); M_sched_time_dlt(0.5); }");
        let code = &p.funcs[0].code;
        assert!(code.contains(&Op::SchedAbs));
        assert!(code.contains(&Op::SchedDlt));
        let e = compile_ast(&parse("main() { M_sched_time_abs(); }").unwrap()).unwrap_err();
        assert!(e.message.contains("exactly one"));
    }

    #[test]
    fn terminate_compiles_to_halt() {
        let p = compile("main() { terminate(); return 1; }");
        assert!(p.funcs[0].code.contains(&Op::Halt));
        let mut m = MessengerState::launch(&p, 1.into(), &[]).unwrap();
        assert_eq!(
            interp::run(&p, &mut m, &mut NullEnv, 100).unwrap(),
            Yield::Terminated(Value::Null)
        );
    }

    #[test]
    fn node_vars_compile_to_node_ops() {
        let p = compile("main() { node int acc; acc = acc + 1; }");
        let code = &p.funcs[0].code;
        assert!(code.iter().any(|op| matches!(op, Op::LoadNode(_))));
        assert!(code.iter().any(|op| matches!(op, Op::StoreNode(_))));
    }

    #[test]
    fn node_decl_never_stores_without_initializer() {
        // `node int x;` reads as NULL until assigned and never clobbers
        // a pre-set value; an initializer does store.
        let p = compile("main() { node int acc; return acc; }");
        let run = |pre: Option<Value>| {
            let mut env = msgr_vm::MapEnv::new();
            if let Some(v) = pre {
                env.vars.insert("acc".into(), v);
            }
            let mut m = MessengerState::launch(&p, 1.into(), &[]).unwrap();
            match interp::run(&p, &mut m, &mut env, 1000).unwrap() {
                Yield::Terminated(v) => v,
                other => panic!("{other:?}"),
            }
        };
        assert_eq!(run(None), Value::Null);
        assert_eq!(run(Some(Value::Int(33))), Value::Int(33));
        let p2 = compile("main() { node int acc = 9; return acc; }");
        let mut env = msgr_vm::MapEnv::new();
        let mut m = MessengerState::launch(&p2, 1.into(), &[]).unwrap();
        assert_eq!(
            interp::run(&p2, &mut m, &mut env, 1000).unwrap(),
            Yield::Terminated(Value::Int(9))
        );
    }

    #[test]
    fn hop_spec_compiled() {
        let p = compile(r#"main() { hop(ln = "init"; ll = "row"; ldir = -); hop(); }"#);
        assert_eq!(p.hop_specs.len(), 2);
        assert_eq!(
            p.hop_specs[0],
            HopSpec { ln: NodePat::Expr, ll: LinkPat::Expr, ldir: Dir::Backward }
        );
        assert_eq!(p.hop_specs[1], HopSpec::default());
    }

    #[test]
    fn create_list_length_mismatch_rejected() {
        let e = compile_ast(&parse("main() { create(ln = a, b; ll = x); }").unwrap());
        // `a`, `b`, `x` are undeclared vars — use strings to reach the
        // length check.
        assert!(e.is_err());
        let e = compile_ast(&parse(r#"main() { create(ln = "a", "b"; ll = "x"); }"#).unwrap())
            .unwrap_err();
        assert!(e.message.contains("entries"));
    }

    #[test]
    fn create_all_compiles() {
        let p = compile("main() { create(ALL); }");
        assert_eq!(p.create_specs.len(), 1);
        assert!(p.create_specs[0].all);
        assert_eq!(p.create_specs[0].items.len(), 1);
    }

    #[test]
    fn virtual_hop_requires_ln() {
        let e = compile_ast(&parse("main() { hop(ll = virtual); }").unwrap()).unwrap_err();
        assert!(e.message.contains("virtual"));
    }

    #[test]
    fn assignment_expression_value_flows() {
        assert_eq!(
            run_value("main() { int a, b; a = (b = 21) + b; return a; }", &[]),
            Value::Int(42)
        );
    }

    #[test]
    fn empty_for_is_infinite_until_break() {
        assert_eq!(
            run_value(
                "main() { int i = 0; for (;;) { i = i + 1; if (i == 5) break; } return i; }",
                &[]
            ),
            Value::Int(5)
        );
    }

    #[test]
    fn string_building_for_node_names() {
        assert_eq!(
            run_value(
                r#"main(i, j) { return "n" + i + "," + j; }"#,
                &[Value::Int(2), Value::Int(3)]
            ),
            Value::str("n2,3")
        );
    }

    #[test]
    fn netvar_time_reads_messenger_vtime() {
        let p = compile("main() { return $time; }");
        let mut m = MessengerState::launch(&p, 1.into(), &[]).unwrap();
        m.vtime = msgr_vm::Vt::new(3.5);
        assert_eq!(
            interp::run(&p, &mut m, &mut NullEnv, 100).unwrap(),
            Yield::Terminated(Value::Float(3.5))
        );
    }

    #[test]
    fn unknown_netvar_rejected() {
        let e = compile_ast(&parse("main() { return $bogus; }").unwrap()).unwrap_err();
        assert!(e.message.contains("network variable"));
    }

    #[test]
    fn slots_are_reused_across_sibling_scopes() {
        let p = compile("main() { { int a; a = 1; } { int b; b = 2; } }");
        // Both a and b should land in slot 0.
        assert_eq!(p.funcs[0].n_slots, 1);
    }
}
