//! # msgr-lang — the MSGR-C scripting language
//!
//! Messenger behaviours in the paper are "written in a subset of C and
//! are compiled into a form of byte code" (§2.1). MSGR-C is that subset:
//!
//! * **Computational statements** — C expressions, assignment (usable as
//!   an expression, as in Fig. 3's `while ((task = next_task()) != NULL)`),
//!   `if`/`else`, `while`, `for`, `return`, `break`, `continue`, and
//!   function definitions with recursion. All standard data types except
//!   pointers: `int`, `float` (= C `double`), `string`, `bool`, and
//!   `block` (a matrix/data block handle).
//! * **Navigational statements** — `hop`, `create`, `delete` with the
//!   paper's destination-specification syntax
//!   (`hop(ln = n; ll = l; ldir = +)`, wildcards `*`, unnamed `~`,
//!   `create(...; ALL)`).
//! * **Function invocation statements** — calls to precompiled native
//!   functions registered with the daemons.
//! * **Virtual time** — `M_sched_time_abs(t)` and `M_sched_time_dlt(dt)`
//!   intrinsics (§2.2).
//!
//! Variable kinds follow §2.1: plain declarations (`int i;`) are
//! *messenger variables*, private and carried on every hop;
//! `node`-qualified declarations (`node block resid_A;`) are *node
//! variables*, resident at the current logical node and shared by every
//! messenger visiting it; `$address`, `$last`, `$node`, `$time` are the
//! read-only *network variables*.
//!
//! ## Example
//!
//! ```
//! use msgr_lang::compile;
//!
//! let program = compile(
//!     r#"
//!     main(n) {
//!         int i, acc;
//!         for (i = 0; i < n; i = i + 1) { acc = acc + i; }
//!         return acc;
//!     }
//!     "#,
//! )?;
//! assert_eq!(program.funcs.len(), 1);
//! # use msgr_vm::{MessengerState, interp, Value, NullEnv};
//! let mut m = MessengerState::launch(&program, 7.into(), &[Value::Int(5)])?;
//! let y = interp::run(&program, &mut m, &mut NullEnv, 10_000)?;
//! assert_eq!(y, msgr_vm::Yield::Terminated(Value::Int(10)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod compiler;
pub mod dis;
mod lexer;
mod parser;

pub use compiler::compile_ast;
pub use lexer::{tokenize, Lexer, Token, TokenKind};
pub use parser::parse;

use msgr_vm::Program;

/// Where in the source an error occurred (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A front-end error: lexing, parsing, or compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// Which phase rejected the program.
    pub phase: Phase,
    /// Human-readable description.
    pub message: String,
    /// Source location.
    pub pos: Pos,
}

/// Compilation phases, for error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Syntax analysis.
    Parse,
    /// Resolution and code generation.
    Compile,
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Compile => "compile",
        };
        write!(f, "{phase} error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LangError {}

/// Compile MSGR-C source to a [`Program`]. The entry point is the first
/// function in the file.
///
/// # Errors
///
/// Returns a [`LangError`] describing the first problem found.
pub fn compile(source: &str) -> Result<Program, LangError> {
    let script = parse(source)?;
    let program = compile_ast(&script)?;
    debug_assert_verified(&program);
    Ok(program)
}

/// Compiler-soundness net: in debug builds every compiled program is
/// run through the `msgr-analyze` bytecode verifier. The compiler must
/// never emit code a daemon would refuse to load.
fn debug_assert_verified(program: &Program) {
    if cfg!(debug_assertions) {
        if let Err(diags) = msgr_analyze::verify(program) {
            let rendered: Vec<String> = diags.iter().map(|d| d.render(program)).collect();
            panic!("compiler emitted unverifiable bytecode:\n{}", rendered.join("\n"));
        }
    }
}

/// Compile with an explicit entry function name.
///
/// # Errors
///
/// As [`compile`]; additionally errors if `entry` is not defined.
pub fn compile_with_entry(source: &str, entry: &str) -> Result<Program, LangError> {
    let script = parse(source)?;
    let mut program = compile_ast(&script)?;
    match program.function_named(entry) {
        Some(f) => {
            program.entry = f;
            debug_assert_verified(&program);
            Ok(program)
        }
        None => Err(LangError {
            phase: Phase::Compile,
            message: format!("entry function `{entry}` not defined"),
            pos: Pos { line: 1, col: 1 },
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_smoke() {
        let p = compile("main() { return 1 + 2; }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
    }

    #[test]
    fn compile_with_entry_selects() {
        let src = "a() { return 1; } b() { return 2; }";
        let p = compile_with_entry(src, "b").unwrap();
        assert_eq!(p.func(p.entry).name, "b");
        assert!(compile_with_entry(src, "c").is_err());
    }

    #[test]
    fn errors_carry_positions() {
        let e = compile("main() { return @; }").unwrap_err();
        assert_eq!(e.pos.line, 1);
        assert!(e.to_string().contains("1:"));
    }
}
