//! Daemon-level unit tests: the wire-protocol handlers exercised
//! directly, without a platform.

use std::collections::HashMap;
use std::sync::Arc;

use msgr_vm::bytes::Bytes;
use std::sync::RwLock;

use msgr_core::config::{ClusterConfig, VtMode};
use msgr_core::daemon::{CodeCache, Daemon, Effect};
use msgr_core::ids::{DaemonId, NodeRef};
use msgr_core::logical::{LinkRec, Orient};
use msgr_core::topology::DaemonTopology;
use msgr_core::wire::{Migration, Wire};
use msgr_gvt::CtrlMsg;
use msgr_vm::{wire as vmwire, MessengerId, MessengerState, NativeRegistry, Value, Vt};

fn mk_daemon(id: u16, cfg: ClusterConfig) -> (Daemon, CodeCache) {
    let codes = CodeCache::new();
    let d = Daemon::new(
        DaemonId(id),
        Arc::new(cfg.clone()),
        Arc::new(DaemonTopology::clique(cfg.daemons)),
        codes.clone(),
        Arc::new(RwLock::new(NativeRegistry::new())),
    );
    (d, codes)
}

fn trivial_program() -> msgr_vm::Program {
    msgr_lang::compile("main() { node int ran; ran = ran + 1; }").unwrap()
}

fn migration_for(d: &Daemon, state: &MessengerState, epoch: u64) -> Wire {
    Wire::Migrate(Migration {
        id: state.id,
        vtime: state.vtime,
        epoch,
        anti: false,
        to: (d.id(), d.init_node()),
        via: None,
        bytes: vmwire::encode_messenger(state),
        code_bytes: 0,
    })
}

#[test]
fn migrate_wire_enqueues_and_runs() {
    let (mut d, codes) = mk_daemon(0, ClusterConfig::new(2));
    let prog = trivial_program();
    codes.register(&prog);
    let state = MessengerState::launch(&prog, MessengerId::compose(1, 1), &[]).unwrap();

    let mut fx = Vec::new();
    let cost = d.on_wire(migration_for(&d, &state, 0), &mut fx);
    assert!(cost > 0, "receiving charges CPU");
    assert!(d.has_work());

    let dir: HashMap<Value, (DaemonId, NodeRef)> = HashMap::new();
    let cost = d.run_segment(&dir, &mut fx).expect("one segment");
    assert!(cost > 0);
    assert!(!d.has_work());
    assert!(fx.contains(&Effect::LiveDelta(-1)), "termination decrements live count");
    assert_eq!(d.node_var(d.init_node(), "ran"), Some(Value::Int(1)));
}

#[test]
fn migration_to_missing_node_is_a_dead_letter() {
    let (mut d, codes) = mk_daemon(0, ClusterConfig::new(2));
    let prog = trivial_program();
    codes.register(&prog);
    let state = MessengerState::launch(&prog, MessengerId::compose(1, 1), &[]).unwrap();
    let mut fx = Vec::new();
    d.on_wire(
        Wire::Migrate(Migration {
            id: state.id,
            vtime: Vt::ZERO,
            epoch: 0,
            anti: false,
            to: (DaemonId(0), NodeRef::new(9, 999)), // never existed
            via: None,
            bytes: vmwire::encode_messenger(&state),
            code_bytes: 0,
        }),
        &mut fx,
    );
    assert!(!d.has_work());
    assert!(fx.contains(&Effect::LiveDelta(-1)));
    assert_eq!(d.stats().counter("dead_letters"), 1);
}

#[test]
fn corrupt_migration_faults_without_crashing() {
    let (mut d, _codes) = mk_daemon(0, ClusterConfig::new(1));
    let mut fx = Vec::new();
    d.on_wire(
        Wire::Migrate(Migration {
            id: MessengerId(7),
            vtime: Vt::ZERO,
            epoch: 0,
            anti: false,
            to: (DaemonId(0), d.init_node()),
            via: None,
            bytes: Bytes::from_static(&[0xFF, 0x00, 0x13]),
            code_bytes: 0,
        }),
        &mut fx,
    );
    assert!(fx.iter().any(|e| matches!(e, Effect::Fault { .. })));
    assert!(!d.has_work());
}

#[test]
fn missing_program_faults_at_execution() {
    let (mut d, _codes) = mk_daemon(0, ClusterConfig::new(1));
    // Encode a messenger whose program was never registered here.
    let foreign = msgr_lang::compile("main() { return 1; }").unwrap();
    let state = MessengerState::launch(&foreign, MessengerId::compose(0, 5), &[]).unwrap();
    let mut fx = Vec::new();
    d.on_wire(migration_for(&d, &state, 0), &mut fx);
    let dir: HashMap<Value, (DaemonId, NodeRef)> = HashMap::new();
    d.run_segment(&dir, &mut fx);
    assert!(
        fx.iter().any(|e| matches!(e, Effect::Fault { error, .. } if error.contains("registry"))),
        "{fx:?}"
    );
}

#[test]
fn unlink_wire_collects_singletons() {
    let (mut d, _codes) = mk_daemon(0, ClusterConfig::new(1));
    let leaf = d.build_node(Value::str("leaf"));
    let inst = d.alloc_link();
    d.install_link(
        leaf,
        LinkRec {
            inst,
            name: Value::str("tether"),
            orient: Orient::Undirected,
            peer: (DaemonId(0), d.init_node()),
            peer_name: Value::str("init"),
        },
    );
    let mut fx = Vec::new();
    d.on_wire(Wire::Unlink { node: leaf, inst }, &mut fx);
    assert!(d.node(leaf).is_none(), "singleton must be deleted");
    assert!(fx.contains(&Effect::DirectoryRemove { name: Value::str("leaf") }));
    // init is exempt even when linkless.
    assert!(d.node(d.init_node()).is_some());
}

#[test]
fn anti_messenger_annihilates_pending_or_stashes() {
    let mut cfg = ClusterConfig::new(2);
    cfg.vt_mode = VtMode::Optimistic;
    let (mut d, codes) = mk_daemon(0, cfg);
    let prog = trivial_program();
    codes.register(&prog);
    let mut state = MessengerState::launch(&prog, MessengerId::compose(1, 9), &[]).unwrap();
    state.vtime = Vt::new(3.0);

    let anti = |id: MessengerId| {
        Wire::Migrate(Migration {
            id,
            vtime: Vt::new(3.0),
            epoch: 0,
            anti: true,
            to: (DaemonId(0), NodeRef::new(0, 0)),
            via: None,
            bytes: Bytes::new(),
            code_bytes: 0,
        })
    };

    // Case 1: positive first, then anti → annihilated from the queue.
    let mut fx = Vec::new();
    d.on_wire(migration_for(&d, &state, 0), &mut fx);
    assert!(d.has_work());
    d.on_wire(anti(state.id), &mut fx);
    assert!(!d.has_work(), "positive must be annihilated");
    assert_eq!(d.stats().counter("annihilations"), 1);

    // Case 2: anti overtakes the positive → stashed, positive dies on
    // arrival.
    let id2 = MessengerId::compose(1, 10);
    let mut state2 = state.clone();
    state2.id = id2;
    d.on_wire(anti(id2), &mut fx);
    assert!(!d.has_work());
    d.on_wire(migration_for(&d, &state2, 0), &mut fx);
    assert!(!d.has_work(), "late positive must be swallowed by the stashed anti");
    assert_eq!(d.stats().counter("annihilations"), 2);
}

#[test]
fn gvt_kick_starts_round_only_on_coordinator() {
    let (mut d0, _) = mk_daemon(0, ClusterConfig::new(3));
    let (mut d1, _) = mk_daemon(1, ClusterConfig::new(3));
    let mut fx = Vec::new();
    d0.on_wire(Wire::GvtKick, &mut fx);
    let cuts = fx
        .iter()
        .filter(|e| matches!(e, Effect::Send { wire: Wire::Gvt(CtrlMsg::Cut { .. }), .. }))
        .count();
    assert_eq!(cuts, 3, "coordinator broadcasts a cut to all daemons");
    fx.clear();
    d1.on_wire(Wire::GvtKick, &mut fx);
    assert!(fx.is_empty(), "non-coordinators ignore kicks");
}

#[test]
fn cut_wire_produces_ack_with_local_min() {
    let (mut d, codes) = mk_daemon(1, ClusterConfig::new(2));
    let prog = msgr_lang::compile("main() { M_sched_time_abs(7.5); }").unwrap();
    codes.register(&prog);
    d.launch(&prog, &[], d.init_node()).unwrap();
    let dir: HashMap<Value, (DaemonId, NodeRef)> = HashMap::new();
    let mut fx = Vec::new();
    d.run_segment(&dir, &mut fx); // suspends at vt 7.5
    assert_eq!(d.local_min(), Vt::new(7.5));

    fx.clear();
    d.on_wire(Wire::Gvt(CtrlMsg::Cut { round: 1 }), &mut fx);
    match &fx[..] {
        [Effect::Send { dst, wire: Wire::Gvt(CtrlMsg::CutAck { lmin, daemon, .. }) }] => {
            assert_eq!(*dst, DaemonId(0));
            assert_eq!(*daemon, 1);
            assert_eq!(*lmin, Vt::new(7.5));
        }
        other => panic!("expected one CutAck, got {other:?}"),
    }

    // Advance past the wake time releases the messenger.
    fx.clear();
    d.on_wire(Wire::Gvt(CtrlMsg::Advance { gvt: Vt::new(7.5) }), &mut fx);
    assert!(d.has_work());
}

#[test]
fn carry_code_inflates_wire_size_only() {
    let mut cfg = ClusterConfig::new(2);
    cfg.carry_code = true;
    let (mut d, codes) = mk_daemon(0, cfg);
    let prog = msgr_lang::compile(r#"main() { hop(ll = "out"); }"#).unwrap();
    codes.register(&prog);
    // Give init an outgoing link so the hop matches.
    let inst = d.alloc_link();
    let init = d.init_node();
    d.install_link(
        init,
        LinkRec {
            inst,
            name: Value::str("out"),
            orient: Orient::Undirected,
            peer: (DaemonId(1), NodeRef::new(1, 0)),
            peer_name: Value::str("init"),
        },
    );
    d.launch(&prog, &[], init).unwrap();
    let dir: HashMap<Value, (DaemonId, NodeRef)> = HashMap::new();
    let mut fx = Vec::new();
    d.run_segment(&dir, &mut fx);
    let sent = fx
        .iter()
        .find_map(|e| match e {
            Effect::Send { wire: Wire::Migrate(m), .. } => Some(m.clone()),
            _ => None,
        })
        .expect("hop sent a migration");
    assert!(sent.code_bytes > 0, "carry-code mode ships the program");
    assert_eq!(sent.code_bytes, prog.wire_bytes());
    // The decoded state itself is unchanged.
    let back = vmwire::decode_messenger(sent.bytes).unwrap();
    assert_eq!(back.program, prog.id());
}

#[test]
fn local_min_spans_ready_and_pending() {
    let (mut d, codes) = mk_daemon(1, ClusterConfig::new(2));
    assert_eq!(d.local_min(), Vt::INFINITY);
    let prog = trivial_program();
    codes.register(&prog);
    d.launch(&prog, &[], d.init_node()).unwrap();
    assert_eq!(d.local_min(), Vt::ZERO, "ready messengers count");
}
