//! Property tests for the inter-daemon frame codec.

use msgr_check::{check, prop_assert, prop_assert_eq, Source};
use msgr_core::wire::{decode_frame, encode_frame, CreateNode, Migration, Wire};
use msgr_core::{DaemonId, NodeRef};
use msgr_gvt::CtrlMsg;
use msgr_vm::{Bytes, LinkInstance, MessengerId, Value, Vt};

fn arb_vt(s: &mut Source) -> Vt {
    if s.bool_with(0.1) {
        Vt::new(f64::INFINITY)
    } else {
        Vt::new(s.f64_in(0.0, 1e9))
    }
}

fn arb_node_ref(s: &mut Source) -> NodeRef {
    NodeRef::new(s.any_u16(), s.any_u64())
}

fn arb_endpoint(s: &mut Source) -> (DaemonId, NodeRef) {
    (DaemonId(s.any_u16()), arb_node_ref(s))
}

fn arb_name(s: &mut Source) -> Value {
    if s.any_bool() {
        Value::Null
    } else {
        Value::str(s.string(0..12, "abcdefghij"))
    }
}

fn arb_migration(s: &mut Source) -> Migration {
    Migration {
        id: MessengerId(s.any_u64()),
        vtime: arb_vt(s),
        epoch: s.any_u64(),
        anti: s.any_bool(),
        to: arb_endpoint(s),
        via: if s.any_bool() { Some(LinkInstance(s.any_u64())) } else { None },
        bytes: Bytes::from(s.vec_with(0..64, |s| s.any_u8())),
        code_bytes: s.any_u64(),
    }
}

fn arb_ctrl(s: &mut Source) -> CtrlMsg {
    match s.draw(5) {
        0 => CtrlMsg::Cut { round: s.any_u64() },
        1 => CtrlMsg::CutAck {
            round: s.any_u64(),
            daemon: s.any_u16(),
            lmin: arb_vt(s),
            prev_sent: s.any_u64(),
            prev_recv: s.any_u64(),
            late_min: arb_vt(s),
            cur_sent_min: arb_vt(s),
        },
        2 => CtrlMsg::Poll { round: s.any_u64() },
        3 => CtrlMsg::PollAck {
            round: s.any_u64(),
            daemon: s.any_u16(),
            lmin: arb_vt(s),
            prev_recv: s.any_u64(),
            late_min: arb_vt(s),
            cur_sent_min: arb_vt(s),
        },
        _ => CtrlMsg::Advance { gvt: arb_vt(s) },
    }
}

/// Frames that can ride inside a transport envelope (everything except
/// `Data`/`Ack` themselves — the codec rejects nesting).
fn arb_payload_frame(s: &mut Source) -> Wire {
    match s.draw(5) {
        0 => Wire::Migrate(arb_migration(s)),
        1 => Wire::Create(Box::new(CreateNode {
            gid: arb_node_ref(s),
            name: arb_name(s),
            origin: arb_endpoint(s),
            origin_name: arb_name(s),
            inst: LinkInstance(s.any_u64()),
            link_name: arb_name(s),
            orient_at_new: *s.pick(&[
                msgr_core::logical::Orient::Out,
                msgr_core::logical::Orient::In,
                msgr_core::logical::Orient::Undirected,
            ]),
            messenger: arb_migration(s),
        })),
        2 => Wire::Unlink { node: arb_node_ref(s), inst: LinkInstance(s.any_u64()) },
        3 => Wire::Gvt(arb_ctrl(s)),
        _ => Wire::GvtKick,
    }
}

fn arb_frame(s: &mut Source) -> Wire {
    match s.draw(9) {
        5 => Wire::Data {
            src: DaemonId(s.any_u16()),
            chan: DaemonId(s.any_u16()),
            seq: s.any_u64(),
            frame: Box::new(arb_payload_frame(s)),
        },
        6 => Wire::Ack {
            src: DaemonId(s.any_u16()),
            chan: DaemonId(s.any_u16()),
            cum: s.any_u64(),
            seq: s.any_u64(),
        },
        7 => Wire::Beat { from: DaemonId(s.any_u16()), epoch: s.any_u64() },
        8 => Wire::Evict { victim: DaemonId(s.any_u16()), epoch: s.any_u64(), floor: arb_vt(s) },
        _ => arb_payload_frame(s),
    }
}

#[test]
fn frame_codec_round_trips() {
    check("frame_codec_round_trips", |s| {
        let w = arb_frame(s);
        let bytes = encode_frame(&w);
        let back = decode_frame(bytes).unwrap();
        prop_assert_eq!(back, w);
        Ok(())
    });
}

#[test]
fn frame_decoder_never_panics_on_garbage() {
    check("frame_decoder_never_panics_on_garbage", |s| {
        let raw = s.vec_with(0..128, |s| s.any_u8());
        // Must return Ok or Err, never panic.
        let _ = decode_frame(Bytes::from(raw));
        Ok(())
    });
}

#[test]
fn frame_decoder_rejects_truncations() {
    check("frame_decoder_rejects_truncations", |s| {
        let w = arb_frame(s);
        let full = encode_frame(&w);
        let cut = s.usize_in(0..full.len().max(1));
        if cut < full.len() {
            prop_assert!(
                decode_frame(full.slice(..cut)).is_err(),
                "truncation at {cut} of {w:?} decoded"
            );
        }
        Ok(())
    });
}
