//! Crash-recovery property suite: a cluster must survive the
//! **permanent death** of worker daemons — failure detection, checkpoint
//! restore on the successor, logical-node failover, and GVT membership
//! change — and still deliver every messenger's work exactly once.
//!
//! Every property runs 256 generated cases through `msgr-check`, so a
//! failing case prints a `MSGR_CHECK_SEED=<n>` line and replays (and
//! shrinks) deterministically. `MSGR_FAULT_SEED=<n>` (set by
//! `scripts/ci.sh`'s chaos step) is XORed into every cluster seed so CI
//! sweeps fresh kill schedules without touching the source.

use msgr_check::{check_with, prop_assert, prop_assert_eq, Config, Source};
use msgr_core::topology::LogicalTopology;
use msgr_core::{BatchPolicy, ClusterConfig, DaemonId, ExecMode, SimCluster};
use msgr_sim::{CrashEvent, FaultPlan, Stats, MILLI};
use msgr_vm::{Dir, Value};

/// Ring walk with a per-node visit counter (same workload as the
/// transient-fault suite): the counter sum counts deliveries, so lost
/// checkpointed updates show up as a short sum and replayed-twice work
/// as an excess.
const WALK: &str = r#"
walk(passes) {
    int i = 0;
    node int visits;
    visits = visits + 1;
    while (i < passes) {
        hop(ll = "ring"; ldir = +);
        visits = visits + 1;
        i = i + 1;
    }
}
"#;

/// Virtual-time ring walk: each messenger advances its clock one tick per
/// hop, so progress requires GVT to keep advancing — with the victim
/// evicted and the restored messengers' virtual times respected.
const VT_WALK: &str = r#"
walk(passes) {
    int i = 0;
    node int visits;
    visits = visits + 1;
    while (i < passes) {
        M_sched_time_dlt(1.0);
        hop(ll = "ring"; ldir = +);
        visits = visits + 1;
        i = i + 1;
    }
}
"#;

fn fault_seed() -> u64 {
    std::env::var("MSGR_FAULT_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn chaos_cases() -> Config {
    Config { cases: 256, ..Config::default() }
}

struct Scenario {
    daemons: usize,
    nodes: usize,
    msgrs: usize,
    passes: i64,
    seed: u64,
    plan: FaultPlan,
    lanes: usize,
    batch: bool,
    exec: ExecMode,
}

/// A cluster of 2–8 daemons with one permanent worker kill (never daemon
/// 0 — it hosts the GVT coordinator) somewhere in the first ~200 ms,
/// i.e. anywhere from "before the first checkpoint" to "mid-run".
/// Execution lanes, frame batching, and the execution engine are drawn
/// too: recovery must be indifferent to all three (a batch acks and
/// retransmits as a unit, so a kill mid-batch loses and restores whole
/// batches, never fragments; a compiled messenger checkpoints, dies,
/// and restores with the same wire state as an interpreted one).
fn arb_kill_scenario(s: &mut Source) -> Scenario {
    let daemons = s.usize_in(2..9);
    let victim = s.u32_in(1..daemons as u32);
    Scenario {
        daemons,
        nodes: s.usize_in(daemons..2 * daemons + 1),
        msgrs: s.usize_in(1..5),
        passes: s.i64_in(1..25),
        seed: s.any_u64() ^ fault_seed(),
        plan: FaultPlan {
            crashes: vec![CrashEvent::kill(victim, s.u64_in(0..200 * MILLI))],
            ..FaultPlan::none()
        },
        lanes: s.usize_in(1..5),
        batch: s.bool_with(0.5),
        exec: if s.bool_with(0.5) { ExecMode::Compiled } else { ExecMode::Interp },
    }
}

struct RunResult {
    faults: Vec<(msgr_vm::MessengerId, String)>,
    live_leak: i64,
    visits: i64,
    sim_seconds: f64,
    events: u64,
    stats: Stats,
}

fn run_ring(sc: &Scenario, program: &str) -> Result<RunResult, String> {
    let mut topo = LogicalTopology::new();
    for i in 0..sc.nodes {
        topo.node(Value::str(format!("p{i}")), DaemonId((i % sc.daemons) as u16));
    }
    for i in 0..sc.nodes {
        topo.link(
            Value::str(format!("p{i}")),
            Value::str(format!("p{}", (i + 1) % sc.nodes)),
            Value::str("ring"),
            Dir::Forward,
        );
    }
    let mut cfg = ClusterConfig::new(sc.daemons);
    cfg.seed = sc.seed;
    cfg.faults = sc.plan.clone();
    cfg.lanes = sc.lanes;
    cfg.exec = sc.exec;
    if sc.batch {
        cfg.batch = BatchPolicy::on();
    }
    // These walks finish in well under a million events; a run that
    // needs more is stalled, and the tight budget turns "hang for the
    // full default budget" into a fast, seeded counterexample.
    cfg.max_events = 5_000_000;
    let mut cluster = SimCluster::new(cfg);
    cluster.build(&topo).map_err(|e| e.to_string())?;
    let pid = cluster.register_program(&msgr_lang::compile(program).map_err(|e| e.to_string())?);
    for m in 0..sc.msgrs {
        cluster
            .inject_at(&Value::str(format!("p{}", m % sc.nodes)), pid, &[Value::Int(sc.passes)])
            .map_err(|e| e.to_string())?;
    }
    let report = cluster.run().map_err(|e| e.to_string())?;
    let mut visits = 0i64;
    for i in 0..sc.nodes {
        if let Some(Value::Int(v)) =
            cluster.node_var_by_name(&Value::str(format!("p{i}")), "visits")
        {
            visits += v;
        }
    }
    Ok(RunResult {
        faults: report.faults.clone(),
        live_leak: report.live_leak,
        visits,
        sim_seconds: report.sim_seconds,
        events: report.events,
        stats: report.stats,
    })
}

/// Exactly-once across death and failover: every messenger finishes its
/// full walk, no checkpointed update is lost, and no replayed segment
/// double-counts. `live_leak == 0` is the census half of the claim:
/// death + restore must be a net-zero population change.
fn assert_exactly_once(sc: &Scenario, r: &RunResult) -> Result<(), String> {
    let expected = sc.msgrs as i64 * (sc.passes + 1);
    prop_assert!(r.faults.is_empty(), "unexpected faults: {:?}", r.faults);
    prop_assert_eq!(r.live_leak, 0);
    prop_assert_eq!(r.visits, expected);
    prop_assert_eq!(r.stats.counter("xport_gave_up"), 0);
    // The kill always fires, and failover must always follow it.
    prop_assert_eq!(r.stats.counter("kills"), 1);
    prop_assert_eq!(r.stats.counter("restores"), 1);
    prop_assert!(r.stats.counter("checkpoints") > 0, "recovery-armed runs must checkpoint");
    Ok(())
}

#[test]
fn recovery_no_lost_or_doubled_updates_under_kill() {
    check_with(chaos_cases(), "recovery_no_lost_or_doubled_updates_under_kill", |s| {
        let sc = arb_kill_scenario(s);
        let r = run_ring(&sc, WALK)?;
        assert_exactly_once(&sc, &r)
    });
}

#[test]
fn recovery_gvt_never_stalls_after_eviction() {
    // The virtual-time walk cannot make progress unless GVT keeps
    // advancing; a stall (dead daemon never evicted, or GVT advanced
    // past the restored messengers so they can never run) shows up as a
    // `Stalled` run error or a short visit sum.
    check_with(chaos_cases(), "recovery_gvt_never_stalls_after_eviction", |s| {
        let mut sc = arb_kill_scenario(s);
        sc.passes = s.i64_in(1..10); // virtual-time walks are slower
        let r = run_ring(&sc, VT_WALK)?;
        assert_exactly_once(&sc, &r)?;
        prop_assert!(
            r.stats.counter("gvt_rounds") > 0,
            "the virtual-time walk must have exercised GVT"
        );
        prop_assert!(r.stats.counter("evictions") > 0, "the victim must have been evicted");
        Ok(())
    });
}

#[test]
fn recovery_runs_are_deterministic() {
    // Identical config + kill schedule ⇒ byte-identical outcome: same
    // visit counts, f64-bit-identical simulated time, same counters —
    // failure detection, failover, and replay included.
    check_with(chaos_cases(), "recovery_runs_are_deterministic", |s| {
        let sc = arb_kill_scenario(s);
        let a = run_ring(&sc, WALK)?;
        let b = run_ring(&sc, WALK)?;
        prop_assert_eq!(a.visits, b.visits);
        prop_assert_eq!(a.sim_seconds.to_bits(), b.sim_seconds.to_bits());
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(
            a.stats.counters().collect::<Vec<_>>(),
            b.stats.counters().collect::<Vec<_>>()
        );
        Ok(())
    });
}

#[test]
fn recovery_survives_kill_plus_transient_faults() {
    // Frame loss, duplication, and reordering compose with a permanent
    // kill: the retransmit layer hides the network faults while the
    // checkpoint/failover layer hides the death.
    check_with(chaos_cases(), "recovery_survives_kill_plus_transient_faults", |s| {
        let mut sc = arb_kill_scenario(s);
        sc.plan.drop_p = s.f64_in(0.0, 0.05);
        sc.plan.dup_p = s.f64_in(0.0, 0.05);
        sc.plan.reorder_p = s.f64_in(0.0, 0.05);
        sc.plan.reorder_delay = s.u64_in(MILLI / 10..2 * MILLI);
        let r = run_ring(&sc, WALK)?;
        assert_exactly_once(&sc, &r)
    });
}

/// Soak: sequential permanent deaths until half the cluster is gone,
/// under sustained loss/duplication/reordering, with a long walk. Run by
/// `scripts/ci.sh --soak` (or `cargo test -- --ignored`).
#[test]
#[ignore = "soak: long chaos run, exercised by scripts/ci.sh --soak"]
fn soak_survives_cascading_permanent_kills() {
    let sc = Scenario {
        daemons: 8,
        nodes: 16,
        msgrs: 6,
        passes: 300,
        seed: 0xDEAD5EED ^ fault_seed(),
        plan: FaultPlan {
            drop_p: 0.05,
            dup_p: 0.02,
            reorder_p: 0.02,
            reorder_delay: MILLI,
            // Three cascading deaths: each failover's successor ring is
            // smaller than the last, and daemon 7's successor wraps.
            crashes: vec![
                CrashEvent::kill(2, 30 * MILLI),
                CrashEvent::kill(5, 90 * MILLI),
                CrashEvent::kill(7, 150 * MILLI),
            ],
        },
        lanes: 4,
        batch: true,
        exec: ExecMode::Compiled,
    };
    let r = run_ring(&sc, WALK).expect("run completes");
    assert!(r.faults.is_empty(), "{:?}", r.faults);
    assert_eq!(r.live_leak, 0);
    assert_eq!(r.visits, 6 * 301);
    assert_eq!(r.stats.counter("kills"), 3);
    assert_eq!(r.stats.counter("restores"), 3, "every death must fail over");
    assert_eq!(r.stats.counter("xport_gave_up"), 0);
}

/// Deterministic single-case smoke with a mid-run kill — the minimal
/// end-to-end story, kept out of the generator so its counters can be
/// asserted tightly. Also the example documented in the README.
#[test]
fn recovery_smoke_mid_run_kill() {
    let sc = Scenario {
        daemons: 4,
        nodes: 8,
        msgrs: 3,
        passes: 40,
        seed: 0xD1E,
        plan: FaultPlan { crashes: vec![CrashEvent::kill(2, 50 * MILLI)], ..FaultPlan::none() },
        lanes: 1,
        batch: false,
        exec: ExecMode::Interp,
    };
    let r = run_ring(&sc, WALK).expect("run completes");
    assert!(r.faults.is_empty(), "{:?}", r.faults);
    assert_eq!(r.live_leak, 0);
    assert_eq!(r.visits, 3 * 41);
    assert_eq!(r.stats.counter("kills"), 1);
    assert_eq!(r.stats.counter("fd_deaths"), 1, "exactly one Dead verdict acted on");
    assert_eq!(r.stats.counter("restores"), 1);
    assert!(r.stats.counter("evictions") >= 3, "every survivor evicts the victim");
    assert!(r.stats.counter("restored_nodes") > 0, "the victim hosted ring nodes");
    assert!(r.stats.counter("checkpoint_bytes") > 0);
}

/// The same mid-run-kill acceptance scenario under the compiled engine:
/// a parked compiled messenger checkpoints, dies with its daemon, and
/// restores on the successor with the same wire state an interpreted
/// one would — so every tightly-asserted counter, the visit sum, and
/// the simulated clock must match the interpreter run bit for bit.
#[test]
fn recovery_smoke_mid_run_kill_compiled() {
    let sc = |exec: ExecMode| Scenario {
        daemons: 4,
        nodes: 8,
        msgrs: 3,
        passes: 40,
        seed: 0xD1E,
        plan: FaultPlan { crashes: vec![CrashEvent::kill(2, 50 * MILLI)], ..FaultPlan::none() },
        lanes: 1,
        batch: false,
        exec,
    };
    let r = run_ring(&sc(ExecMode::Compiled), WALK).expect("run completes");
    assert!(r.faults.is_empty(), "{:?}", r.faults);
    assert_eq!(r.live_leak, 0);
    assert_eq!(r.visits, 3 * 41);
    assert_eq!(r.stats.counter("kills"), 1);
    assert_eq!(r.stats.counter("fd_deaths"), 1, "exactly one Dead verdict acted on");
    assert_eq!(r.stats.counter("restores"), 1);
    assert!(r.stats.counter("compile_programs") > 0, "the walk must have been compiled");
    let interp = run_ring(&sc(ExecMode::Interp), WALK).expect("run completes");
    assert_eq!(r.visits, interp.visits);
    assert_eq!(r.sim_seconds.to_bits(), interp.sim_seconds.to_bits());
    assert_eq!(r.events, interp.events);
    assert_eq!(r.stats.counters().collect::<Vec<_>>(), interp.stats.counters().collect::<Vec<_>>());
}
