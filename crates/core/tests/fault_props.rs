//! Chaos property suite: the reliable transport must deliver every
//! messenger **exactly once** under randomized frame loss, duplication,
//! reordering, and daemon crash/restart — across random cluster shapes
//! and seeds.
//!
//! Every property runs 256 generated cases through `msgr-check`, so a
//! failing case prints a `MSGR_CHECK_SEED=<n>` line and replays (and
//! shrinks) deterministically. Additionally, `MSGR_FAULT_SEED=<n>` (set
//! by `scripts/ci.sh`'s chaos step, which logs the value) is XORed into
//! every cluster seed so CI can sweep fresh fault schedules without
//! touching the source.
//!
//! ## Mutation check
//!
//! `broken_retransmit_is_caught` proves the suite has teeth: it cripples
//! the retransmit layer the way a buggy implementation would (give up
//! after a single retry) and asserts the exactly-once property *fails*
//! under loss. If someone breaks retransmission — stops arming timers,
//! drops the unacked buffer, gives up too early — these properties are
//! what catches it.

use msgr_check::{check_with, prop_assert, prop_assert_eq, run_check, Config, Source};
use msgr_core::topology::LogicalTopology;
use msgr_core::{ClusterConfig, DaemonId, SimCluster};
use msgr_sim::{CrashEvent, FaultPlan, Stats, MILLI};
use msgr_vm::{Dir, Value};

/// Each messenger walks the ring `passes` hops, incrementing a resident
/// counter at every node it lands on — so the global counter sum counts
/// deliveries. Lost frames show up as a short sum, duplicated deliveries
/// as an excess.
const WALK: &str = r#"
walk(passes) {
    int i = 0;
    node int visits;
    visits = visits + 1;
    while (i < passes) {
        hop(ll = "ring"; ldir = +);
        visits = visits + 1;
        i = i + 1;
    }
}
"#;

/// CI-supplied extra entropy (logged by the chaos step for replay);
/// 0 when unset.
fn fault_seed() -> u64 {
    std::env::var("MSGR_FAULT_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn chaos_cases() -> Config {
    Config { cases: 256, ..Config::default() }
}

struct Scenario {
    daemons: usize,
    nodes: usize,
    msgrs: usize,
    passes: i64,
    seed: u64,
    plan: FaultPlan,
}

/// A random cluster shape: 1–8 daemons, a ring of at least as many
/// nodes, a handful of messengers.
fn arb_scenario(s: &mut Source, plan: FaultPlan) -> Scenario {
    let daemons = s.usize_in(1..9);
    Scenario {
        daemons,
        nodes: s.usize_in(daemons..2 * daemons + 1),
        msgrs: s.usize_in(1..5),
        passes: s.i64_in(1..25),
        seed: s.any_u64() ^ fault_seed(),
        plan,
    }
}

/// Random fault probabilities, each up to 10% (combined up to 30%).
fn arb_rates(s: &mut Source) -> FaultPlan {
    FaultPlan {
        drop_p: s.f64_in(0.0, 0.10),
        dup_p: s.f64_in(0.0, 0.10),
        reorder_p: s.f64_in(0.0, 0.10),
        reorder_delay: s.u64_in(MILLI / 10..5 * MILLI),
        crashes: Vec::new(),
    }
}

/// Random crash/restart schedule over the scenario's daemons.
fn arb_crashes(s: &mut Source, daemons: usize) -> Vec<CrashEvent> {
    // Transient windows only, and well under `RecoveryPolicy::dead_after`
    // (240 ms), so fail-recover scenarios never trip permanent failover.
    let mut evs = s.vec_with(1..4, |s| {
        CrashEvent::transient(
            s.u32_in(0..daemons as u32),
            s.u64_in(0..40 * MILLI),
            s.u64_in(MILLI..30 * MILLI),
        )
    });
    // `FaultPlan::validate` rejects overlapping windows per host; keep
    // the earliest of any overlapping pair.
    evs.sort_by_key(|e| (e.host, e.at));
    let mut out: Vec<CrashEvent> = Vec::new();
    for e in evs {
        match out.iter().rev().find(|p| p.host == e.host) {
            Some(prev) if e.at < prev.until() => continue,
            _ => out.push(e),
        }
    }
    out
}

struct RunResult {
    faults: Vec<(msgr_vm::MessengerId, String)>,
    live_leak: i64,
    visits: i64,
    sim_seconds: f64,
    events: u64,
    stats: Stats,
}

/// Build the ring, inject the messengers, run to quiescence, and sum the
/// per-node visit counters.
fn run_ring(sc: &Scenario) -> Result<RunResult, String> {
    let mut topo = LogicalTopology::new();
    for i in 0..sc.nodes {
        topo.node(Value::str(format!("p{i}")), DaemonId((i % sc.daemons) as u16));
    }
    for i in 0..sc.nodes {
        topo.link(
            Value::str(format!("p{i}")),
            Value::str(format!("p{}", (i + 1) % sc.nodes)),
            Value::str("ring"),
            Dir::Forward,
        );
    }
    let mut cfg = ClusterConfig::new(sc.daemons);
    cfg.seed = sc.seed;
    cfg.faults = sc.plan.clone();
    let mut cluster = SimCluster::new(cfg);
    cluster.build(&topo).map_err(|e| e.to_string())?;
    let pid = cluster.register_program(&msgr_lang::compile(WALK).map_err(|e| e.to_string())?);
    for m in 0..sc.msgrs {
        cluster
            .inject_at(&Value::str(format!("p{}", m % sc.nodes)), pid, &[Value::Int(sc.passes)])
            .map_err(|e| e.to_string())?;
    }
    let report = cluster.run().map_err(|e| e.to_string())?;
    let mut visits = 0i64;
    for i in 0..sc.nodes {
        if let Some(Value::Int(v)) =
            cluster.node_var_by_name(&Value::str(format!("p{i}")), "visits")
        {
            visits += v;
        }
    }
    Ok(RunResult {
        faults: report.faults.clone(),
        live_leak: report.live_leak,
        visits,
        sim_seconds: report.sim_seconds,
        events: report.events,
        stats: report.stats,
    })
}

/// Exactly-once delivery: every messenger completes its full walk and no
/// node sees an extra (duplicated) visit, at any combination of loss,
/// duplication, and reordering.
fn assert_exactly_once(sc: &Scenario, r: &RunResult) -> Result<(), String> {
    let expected = sc.msgrs as i64 * (sc.passes + 1);
    prop_assert!(r.faults.is_empty(), "unexpected faults: {:?}", r.faults);
    prop_assert_eq!(r.live_leak, 0);
    prop_assert_eq!(r.visits, expected);
    prop_assert_eq!(r.stats.counter("xport_gave_up"), 0);
    // Conservation: every allocated sequence number is eventually acked,
    // and nothing is acked twice.
    prop_assert_eq!(r.stats.counter("xport_acked"), r.stats.counter("xport_sent"));
    Ok(())
}

#[test]
fn chaos_every_messenger_completes_exactly_once() {
    check_with(chaos_cases(), "chaos_every_messenger_completes_exactly_once", |s| {
        let plan = arb_rates(s);
        let sc = arb_scenario(s, plan);
        let r = run_ring(&sc)?;
        assert_exactly_once(&sc, &r)
    });
}

#[test]
fn chaos_crash_restart_preserves_every_messenger() {
    check_with(chaos_cases(), "chaos_crash_restart_preserves_every_messenger", |s| {
        let mut plan = arb_rates(s);
        let daemons = s.usize_in(1..9);
        plan.crashes = arb_crashes(s, daemons);
        let mut sc = arb_scenario(s, plan);
        // Crash hosts were drawn for `daemons`; pin the scenario to it.
        sc.daemons = daemons;
        sc.nodes = sc.nodes.max(daemons);
        let r = run_ring(&sc)?;
        assert_exactly_once(&sc, &r)
    });
}

#[test]
fn chaos_faulty_runs_are_deterministic() {
    // Identical config + fault plan ⇒ byte-identical outcome: same
    // visit counts, f64-bit-identical simulated time, same counters.
    check_with(chaos_cases(), "chaos_faulty_runs_are_deterministic", |s| {
        let mut plan = arb_rates(s);
        let daemons = s.usize_in(1..9);
        if s.any_bool() {
            plan.crashes = arb_crashes(s, daemons);
        }
        let mut sc = arb_scenario(s, plan);
        sc.daemons = daemons;
        sc.nodes = sc.nodes.max(daemons);
        let a = run_ring(&sc)?;
        let b = run_ring(&sc)?;
        prop_assert_eq!(a.visits, b.visits);
        prop_assert_eq!(a.sim_seconds.to_bits(), b.sim_seconds.to_bits());
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(
            a.stats.counters().collect::<Vec<_>>(),
            b.stats.counters().collect::<Vec<_>>()
        );
        Ok(())
    });
}

#[test]
fn broken_retransmit_is_caught() {
    // Mutation check (see module docs): a transport that abandons frames
    // after one retry is indistinguishable from a broken one. Under 40%
    // loss some frame is dropped twice in a row in virtually every run,
    // so the exactly-once property must report a counterexample. If this
    // test starts failing, the chaos suite has lost its ability to
    // detect delivery bugs — treat that as a broken suite, not a broken
    // transport.
    let failure = run_check(Config::default(), "broken_retransmit_is_caught", |s| {
        let sc = Scenario {
            daemons: 4,
            nodes: 8,
            msgrs: 3,
            passes: 20,
            seed: s.any_u64(),
            plan: FaultPlan::lossy(0.4),
        };
        let mut topo = LogicalTopology::new();
        for i in 0..sc.nodes {
            topo.node(Value::str(format!("p{i}")), DaemonId((i % sc.daemons) as u16));
        }
        for i in 0..sc.nodes {
            topo.link(
                Value::str(format!("p{i}")),
                Value::str(format!("p{}", (i + 1) % sc.nodes)),
                Value::str("ring"),
                Dir::Forward,
            );
        }
        let mut cfg = ClusterConfig::new(sc.daemons);
        cfg.seed = sc.seed;
        cfg.faults = sc.plan.clone();
        cfg.retransmit.max_attempts = 2; // the "mutation"
        let mut cluster = SimCluster::new(cfg);
        cluster.build(&topo).map_err(|e| e.to_string())?;
        let pid = cluster.register_program(&msgr_lang::compile(WALK).map_err(|e| e.to_string())?);
        for m in 0..sc.msgrs {
            cluster
                .inject_at(&Value::str(format!("p{}", m % sc.nodes)), pid, &[Value::Int(sc.passes)])
                .map_err(|e| e.to_string())?;
        }
        let report = cluster.run().map_err(|e| e.to_string())?;
        prop_assert!(report.faults.is_empty(), "messengers abandoned: {:?}", report.faults);
        Ok(())
    });
    assert!(
        failure.is_err(),
        "a transport that gives up after one retry must fail the exactly-once property"
    );
}

/// Trust boundary under chaos: messengers carrying a program the
/// verifier rejected are refused **exactly once** each — loss,
/// duplication, reordering, and crash/restart replay must neither lose
/// a refusal nor repeat one (a replayed injection that faulted again
/// would double-count `verify_rejected` and leak a live messenger) —
/// while verified walkers on the same cluster still complete their
/// exactly-once delivery.
#[test]
fn chaos_quarantined_code_is_refused_exactly_once() {
    use msgr_vm::{Builder, Op};
    check_with(chaos_cases(), "chaos_quarantined_code_is_refused_exactly_once", |s| {
        let mut plan = arb_rates(s);
        let daemons = s.usize_in(1..9);
        plan.crashes = arb_crashes(s, daemons);
        let mut sc = arb_scenario(s, plan);
        sc.daemons = daemons;
        sc.nodes = sc.nodes.max(daemons);
        let bad_msgrs = s.usize_in(1..4);

        let mut topo = LogicalTopology::new();
        for i in 0..sc.nodes {
            topo.node(Value::str(format!("p{i}")), DaemonId((i % sc.daemons) as u16));
        }
        for i in 0..sc.nodes {
            topo.link(
                Value::str(format!("p{i}")),
                Value::str(format!("p{}", (i + 1) % sc.nodes)),
                Value::str("ring"),
                Dir::Forward,
            );
        }
        let mut cfg = ClusterConfig::new(sc.daemons);
        cfg.seed = sc.seed;
        cfg.faults = sc.plan.clone();
        let mut cluster = SimCluster::new(cfg);
        cluster.build(&topo).map_err(|e| e.to_string())?;

        let pid = cluster.register_program(&msgr_lang::compile(WALK).map_err(|e| e.to_string())?);
        let mut b = Builder::new();
        let f = b.function("main", 0, 0, vec![Op::Jump(100)]); // V002: quarantined
        let bad_pid = cluster.register_program(&b.finish(f));

        for m in 0..sc.msgrs {
            cluster
                .inject_at(&Value::str(format!("p{}", m % sc.nodes)), pid, &[Value::Int(sc.passes)])
                .map_err(|e| e.to_string())?;
        }
        for m in 0..bad_msgrs {
            cluster
                .inject_at(&Value::str(format!("p{}", m % sc.nodes)), bad_pid, &[])
                .map_err(|e| e.to_string())?;
        }

        let report = cluster.run().map_err(|e| e.to_string())?;
        // Every refusal is a fault naming verification — and nothing else
        // faults.
        prop_assert_eq!(report.faults.len(), bad_msgrs);
        for (_, err) in &report.faults {
            prop_assert!(err.contains("failed verification"), "unexpected fault: {err}");
        }
        prop_assert_eq!(report.stats.counter("verify_rejected"), bad_msgrs as u64);
        prop_assert_eq!(report.live_leak, 0);
        // The verified walkers are untouched by their doomed neighbours.
        let mut visits = 0i64;
        for i in 0..sc.nodes {
            if let Some(Value::Int(v)) =
                cluster.node_var_by_name(&Value::str(format!("p{i}")), "visits")
            {
                visits += v;
            }
        }
        prop_assert_eq!(visits, sc.msgrs as i64 * (sc.passes + 1));
        Ok(())
    });
}

/// Soak test: a long bounded run under sustained 10% loss with periodic
/// crash/restart cycles across every daemon. Ignored by default; run via
/// `scripts/ci.sh --soak` (or `cargo test -- --ignored`).
#[test]
#[ignore = "soak: long chaos run, exercised by scripts/ci.sh --soak"]
fn soak_sustained_loss_and_crashes() {
    let daemons = 6usize;
    // One crash somewhere every ~40 ms for the whole expected run.
    let crashes: Vec<CrashEvent> = (0..24)
        .map(|k| {
            CrashEvent::transient((k % daemons) as u32, (10 + 40 * k as u64) * MILLI, 15 * MILLI)
        })
        .collect();
    let sc = Scenario {
        daemons,
        nodes: 12,
        msgrs: 6,
        passes: 400,
        seed: 0xD15EA5E ^ fault_seed(),
        plan: FaultPlan {
            drop_p: 0.10,
            dup_p: 0.05,
            reorder_p: 0.05,
            reorder_delay: 2 * MILLI,
            crashes,
        },
    };
    let r = run_ring(&sc).expect("soak run");
    assert!(r.events > 10_000, "soak too small to mean anything: {} events", r.events);
    assert!(r.faults.is_empty(), "faults: {:?}", r.faults);
    assert_eq!(r.live_leak, 0);
    assert_eq!(r.visits, sc.msgrs as i64 * (sc.passes + 1));
    assert_eq!(r.stats.counter("xport_gave_up"), 0);
    // Counter sanity: acks can't outnumber sends, crash machinery must
    // have actually fired, and the delivery histogram saw every frame.
    let sent = r.stats.counter("xport_sent");
    let acked = r.stats.counter("xport_acked");
    assert_eq!(acked, sent, "every frame acked exactly once");
    assert!(r.stats.counter("xport_retransmits") > 0, "loss must force retransmits");
    assert_eq!(r.stats.counter("crashes"), 24);
    assert_eq!(r.stats.counter("restarts"), 24);
    let h = r.stats.histogram("xport_delivery_ns").expect("delivery histogram");
    assert_eq!(h.count(), acked);
    assert!(h.max() < 60_000 * MILLI, "delivery latency exploded: {} ns", h.max());
    assert!(r.sim_seconds > 0.0);
}
