//! Control-plane property suite: quorum-agreed membership changes plus
//! `k`-replicated checkpoints must survive losing a daemon **and** the
//! primary holder of its checkpoint in the same fault plan — the
//! double-fault the deterministic next-alive scheme could not.
//!
//! Every property runs 256 generated cases through `msgr-check`, so a
//! failing case prints a `MSGR_CHECK_SEED=<n>` line and replays (and
//! shrinks) deterministically. `MSGR_FAULT_SEED=<n>` (set by
//! `scripts/ci.sh`'s chaos step) is XORed into every cluster seed so CI
//! sweeps fresh kill schedules without touching the source.

use msgr_check::{check_with, prop_assert, prop_assert_eq, Config, Source};
use msgr_core::topology::LogicalTopology;
use msgr_core::{BatchPolicy, ClusterConfig, DaemonId, ExecMode, SimCluster};
use msgr_sim::{CrashEvent, FaultPlan, Stats, MILLI};
use msgr_trace::{EventKind, Trace};
use msgr_vm::{Dir, Value};

/// Ring walk with a per-node visit counter (the recovery suite's
/// workload): the counter sum counts deliveries, so lost checkpointed
/// updates show up as a short sum and replayed-twice work as an excess.
const WALK: &str = r#"
walk(passes) {
    int i = 0;
    node int visits;
    visits = visits + 1;
    while (i < passes) {
        hop(ll = "ring"; ldir = +);
        visits = visits + 1;
        i = i + 1;
    }
}
"#;

/// Virtual-time ring walk: each messenger advances its clock one tick
/// per hop, so GVT keeps moving — and with it the gossip digests' GVT
/// hints, which is what makes anti-entropy exchanges actually *merge*
/// (an all-quiescent cluster gossips digests that are already equal).
const VT_WALK: &str = r#"
walk(passes) {
    int i = 0;
    node int visits;
    visits = visits + 1;
    while (i < passes) {
        M_sched_time_dlt(1.0);
        hop(ll = "ring"; ldir = +);
        visits = visits + 1;
        i = i + 1;
    }
}
"#;

fn fault_seed() -> u64 {
    std::env::var("MSGR_FAULT_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn chaos_cases() -> Config {
    Config { cases: 256, ..Config::default() }
}

struct Scenario {
    daemons: usize,
    nodes: usize,
    msgrs: usize,
    passes: i64,
    seed: u64,
    plan: FaultPlan,
    replication: usize,
    lanes: usize,
    batch: bool,
    exec: ExecMode,
    trace: bool,
    trace_capacity: Option<usize>,
}

/// A 5–8 daemon cluster, `k = 2`, with **two** permanent kills: a victim
/// and its ring successor — which is exactly the victim's first
/// checkpoint-replica holder, so the victim's newest snapshot may
/// survive only on the second holder. Kill times are drawn
/// independently, so the plan covers both orders: holder-first (the
/// victim re-replicates to the next live successors) and victim-first
/// (the named heir can itself die mid-recovery, forcing the quorum to
/// re-decide at a higher seq). Neither kill ever hits daemon 0 (the GVT
/// coordinator) and two kills are always a strict minority of ≥5.
fn arb_double_kill_scenario(s: &mut Source) -> Scenario {
    let daemons = s.usize_in(5..9);
    let victim = s.u32_in(1..daemons as u32 - 1);
    Scenario {
        daemons,
        nodes: s.usize_in(daemons..2 * daemons + 1),
        msgrs: s.usize_in(1..5),
        passes: s.i64_in(1..25),
        seed: s.any_u64() ^ fault_seed(),
        plan: FaultPlan {
            crashes: vec![
                CrashEvent::kill(victim, s.u64_in(0..200 * MILLI)),
                CrashEvent::kill(victim + 1, s.u64_in(0..200 * MILLI)),
            ],
            ..FaultPlan::none()
        },
        replication: 2,
        lanes: s.usize_in(1..5),
        batch: s.bool_with(0.5),
        exec: if s.bool_with(0.5) { ExecMode::Compiled } else { ExecMode::Interp },
        trace: false,
        trace_capacity: None,
    }
}

struct RunResult {
    faults: Vec<(msgr_vm::MessengerId, String)>,
    live_leak: i64,
    visits: i64,
    stats: Stats,
    trace: Option<Trace>,
}

fn run_ring(sc: &Scenario, program: &str) -> Result<RunResult, String> {
    let mut topo = LogicalTopology::new();
    for i in 0..sc.nodes {
        topo.node(Value::str(format!("p{i}")), DaemonId((i % sc.daemons) as u16));
    }
    for i in 0..sc.nodes {
        topo.link(
            Value::str(format!("p{i}")),
            Value::str(format!("p{}", (i + 1) % sc.nodes)),
            Value::str("ring"),
            Dir::Forward,
        );
    }
    let mut cfg = ClusterConfig::new(sc.daemons);
    cfg.seed = sc.seed;
    cfg.faults = sc.plan.clone();
    cfg.replication = sc.replication;
    cfg.lanes = sc.lanes;
    cfg.exec = sc.exec;
    if sc.batch {
        cfg.batch = BatchPolicy::on();
    }
    cfg.trace.enabled = sc.trace;
    if let Some(cap) = sc.trace_capacity {
        cfg.trace.capacity = cap;
    }
    // These walks finish in well under a million events; a run that
    // needs more is stalled, and the tight budget turns "hang for the
    // full default budget" into a fast, seeded counterexample.
    cfg.max_events = 5_000_000;
    let mut cluster = SimCluster::new(cfg);
    cluster.build(&topo).map_err(|e| e.to_string())?;
    let pid = cluster.register_program(&msgr_lang::compile(program).map_err(|e| e.to_string())?);
    for m in 0..sc.msgrs {
        cluster
            .inject_at(&Value::str(format!("p{}", m % sc.nodes)), pid, &[Value::Int(sc.passes)])
            .map_err(|e| e.to_string())?;
    }
    let report = cluster.run().map_err(|e| e.to_string())?;
    let mut visits = 0i64;
    for i in 0..sc.nodes {
        if let Some(Value::Int(v)) =
            cluster.node_var_by_name(&Value::str(format!("p{i}")), "visits")
        {
            visits += v;
        }
    }
    Ok(RunResult {
        faults: report.faults.clone(),
        live_leak: report.live_leak,
        visits,
        stats: report.stats.clone(),
        trace: report.trace.clone(),
    })
}

/// Exactly-once across a double death: both victims are buried by
/// decree, both are restored from a surviving replica, and the walk's
/// visit sum is exact — no update lost with the primary holder, none
/// replayed twice through the cascaded failovers.
fn assert_double_recovery(sc: &Scenario, r: &RunResult) -> Result<(), String> {
    let expected = sc.msgrs as i64 * (sc.passes + 1);
    prop_assert!(r.faults.is_empty(), "unexpected faults: {:?}", r.faults);
    prop_assert_eq!(r.live_leak, 0);
    prop_assert_eq!(r.visits, expected);
    prop_assert_eq!(r.stats.counter("xport_gave_up"), 0);
    prop_assert_eq!(r.stats.counter("kills"), 2);
    prop_assert_eq!(r.stats.counter("restores"), 2, "both victims must fail over");
    prop_assert!(r.stats.counter("checkpoints") > 0, "recovery-armed runs must checkpoint");
    prop_assert!(
        r.stats.counter("ckpt_replicas") > 0,
        "k = 2 must actually push write-ahead replicas"
    );
    Ok(())
}

#[test]
fn quorum_recovery_survives_victim_and_replica_holder() {
    check_with(chaos_cases(), "quorum_recovery_survives_victim_and_replica_holder", |s| {
        let sc = arb_double_kill_scenario(s);
        let r = run_ring(&sc, WALK)?;
        assert_double_recovery(&sc, &r)
    });
}

#[test]
fn quorum_recovery_survives_double_kill_under_transient_faults() {
    // Frame loss, duplication, and reordering compose with the double
    // kill: the retransmit layer hides the network faults, re-proposal
    // at a higher ballot heals lost control frames, and the replica on
    // the second holder hides the loss of the first.
    check_with(chaos_cases(), "quorum_recovery_survives_double_kill_under_transient_faults", |s| {
        let mut sc = arb_double_kill_scenario(s);
        sc.plan.drop_p = s.f64_in(0.0, 0.05);
        sc.plan.dup_p = s.f64_in(0.0, 0.05);
        sc.plan.reorder_p = s.f64_in(0.0, 0.05);
        sc.plan.reorder_delay = s.u64_in(MILLI / 10..2 * MILLI);
        let r = run_ring(&sc, WALK)?;
        assert_double_recovery(&sc, &r)
    });
}

#[test]
fn quorum_double_kill_traces_are_byte_identical() {
    // Identical config + kill schedule ⇒ byte-identical merged trace:
    // proposals, decrees, gossip exchanges, replica pushes, and both
    // restores serialize to the same JSONL — the control plane is part
    // of the deterministic surface. Sizes are a notch smaller than the
    // main chaos suite because every case runs the cluster twice.
    check_with(chaos_cases(), "quorum_double_kill_traces_are_byte_identical", |s| {
        let daemons = s.usize_in(5..7);
        let victim = s.u32_in(1..daemons as u32 - 1);
        let sc = Scenario {
            daemons,
            nodes: s.usize_in(daemons..2 * daemons),
            msgrs: s.usize_in(1..4),
            passes: s.i64_in(1..10),
            seed: s.any_u64() ^ fault_seed(),
            plan: FaultPlan {
                crashes: vec![
                    CrashEvent::kill(victim, s.u64_in(0..200 * MILLI)),
                    CrashEvent::kill(victim + 1, s.u64_in(0..200 * MILLI)),
                ],
                ..FaultPlan::none()
            },
            replication: 2,
            lanes: s.usize_in(1..5),
            batch: s.bool_with(0.5),
            exec: if s.bool_with(0.5) { ExecMode::Compiled } else { ExecMode::Interp },
            trace: true,
            trace_capacity: None,
        };
        let a = run_ring(&sc, WALK)?.trace.ok_or("tracing was enabled but no trace came back")?;
        let b = run_ring(&sc, WALK)?.trace.ok_or("tracing was enabled but no trace came back")?;
        let (ja, jb) = (a.to_jsonl(), b.to_jsonl());
        prop_assert!(ja == jb, "same-seed traces differ: {:?}", a.diff(&b, 5));
        let counts: std::collections::HashMap<&str, u64> = a.counts().into_iter().collect();
        for ev in ["ctrl_propose", "ctrl_decide", "kill", "restore", "ckpt_replica"] {
            prop_assert!(
                counts.get(ev).copied().unwrap_or(0) > 0,
                "double-kill trace is missing `{}` events; got {:?}",
                ev,
                counts
            );
        }
        Ok(())
    });
}

/// Flight-recorder drop accounting across `Daemon::gut()`: a killed
/// daemon's ring survives volatile-state destruction, so its pre-crash
/// window — the gossip exchanges and frames it was mid-way through —
/// must reach the merged trace even when a tiny ring capacity forces
/// oldest-event drops. Runs the same seeded double-kill chaos scenario
/// twice: once with a roomy ring (zero drops, the reference emission
/// stream) and once with a 96-event ring, then checks the small run
/// kept exactly the **newest** suffix of every daemon's stream and
/// counted every evicted event.
#[test]
fn recorder_drop_accounting_survives_gut_mid_gossip() {
    let sc = |capacity: Option<usize>| Scenario {
        daemons: 5,
        nodes: 10,
        msgrs: 4,
        passes: 12,
        seed: 0xC0FFEE ^ fault_seed(),
        // Loss heavy enough that fire-and-forget control traffic (GVT
        // advances, decree learns) goes missing regularly, leaving the
        // stale windows that anti-entropy exists to heal — so the run
        // demonstrably *merges* digests, not just pushes them.
        plan: FaultPlan {
            drop_p: 0.15,
            dup_p: 0.0,
            reorder_p: 0.0,
            reorder_delay: MILLI,
            crashes: vec![CrashEvent::kill(2, 50 * MILLI), CrashEvent::kill(3, 120 * MILLI)],
        },
        replication: 2,
        lanes: 1,
        batch: false,
        exec: ExecMode::Interp,
        trace: true,
        trace_capacity: capacity,
    };
    let full = run_ring(&sc(None), VT_WALK).expect("reference run completes");
    let small = run_ring(&sc(Some(96)), VT_WALK).expect("bounded run completes");
    let full = full.trace.expect("reference trace");
    let small = small.trace.expect("bounded trace");
    assert_eq!(full.dropped, 0, "the roomy ring must capture the whole emission stream");
    assert!(small.dropped > 0, "a 96-event ring must overflow on this workload");

    // Oldest-drop accounting: everything not retained was counted.
    assert_eq!(
        small.dropped as usize,
        full.events.len() - small.events.len(),
        "every evicted event must be counted, none double-counted"
    );

    // Per daemon, the bounded ring holds exactly the newest suffix of
    // the reference stream — flight-recorder semantics, including for
    // the two gutted daemons whose rings outlived their kill.
    let mut by_daemon: std::collections::BTreeMap<u16, (Vec<_>, Vec<_>)> = Default::default();
    for e in &full.events {
        by_daemon.entry(e.daemon).or_default().0.push(e);
    }
    for e in &small.events {
        by_daemon.entry(e.daemon).or_default().1.push(e);
    }
    for (d, (f, s)) in &by_daemon {
        assert!(s.len() <= 96, "daemon {d} retained {} events, over capacity", s.len());
        assert!(!s.is_empty(), "daemon {d} lost its entire window");
        assert_eq!(
            &f[f.len() - s.len()..],
            &s[..],
            "daemon {d}'s bounded ring is not the newest suffix of its stream"
        );
    }

    // The pre-crash window of both victims reached the merged trace:
    // the kill marker itself plus events from before the kill — emitted
    // into a ring that `gut()` deliberately leaves intact.
    for victim in [2u16, 3u16] {
        let kill_rt = small
            .events
            .iter()
            .find(|e| e.daemon == victim && matches!(e.kind, EventKind::Kill))
            .unwrap_or_else(|| panic!("daemon {victim}'s kill marker missing from bounded trace"))
            .rt;
        assert!(
            small.events.iter().any(|e| e.daemon == victim && e.rt < kill_rt),
            "daemon {victim}'s pre-crash window was lost with its volatile state"
        );
    }

    // The window the kill interrupts is a live gossip exchange: the
    // reference trace must show the anti-entropy schedule running.
    let counts: std::collections::HashMap<&str, u64> = full.counts().into_iter().collect();
    assert!(
        counts.get("gossip_merge").copied().unwrap_or(0) > 0,
        "quorum-mode chaos run never merged a gossip digest; got {counts:?}"
    );
}

/// Soak: cascading permanent kills — including an **adjacent pair**, so
/// one victim's first replica holder is the next victim — under
/// sustained loss/duplication/reordering plus two transient partition
/// windows, with a long walk. Run by `scripts/ci.sh --soak` (or
/// `cargo test -- --ignored`).
#[test]
#[ignore = "soak: long chaos run, exercised by scripts/ci.sh --soak"]
fn soak_cascading_kills_with_replicated_checkpoints() {
    let sc = Scenario {
        daemons: 8,
        nodes: 16,
        msgrs: 6,
        passes: 300,
        seed: 0x0DDC0DE ^ fault_seed(),
        plan: FaultPlan {
            drop_p: 0.05,
            dup_p: 0.02,
            reorder_p: 0.02,
            reorder_delay: MILLI,
            crashes: vec![
                // 2 then 3: daemon 3 holds daemon 2's freshest replica
                // when it dies, and has itself just finished a restore.
                CrashEvent::kill(2, 30 * MILLI),
                CrashEvent::kill(3, 90 * MILLI),
                CrashEvent::kill(6, 150 * MILLI),
                // Two partition windows squeezing the live quorum while
                // decrees are in flight.
                CrashEvent::transient(1, 60 * MILLI, 20 * MILLI),
                CrashEvent::transient(4, 140 * MILLI, 20 * MILLI),
            ],
        },
        replication: 2,
        lanes: 4,
        batch: true,
        exec: ExecMode::Compiled,
        trace: false,
        trace_capacity: None,
    };
    let r = run_ring(&sc, WALK).expect("run completes");
    assert!(r.faults.is_empty(), "{:?}", r.faults);
    assert_eq!(r.live_leak, 0);
    assert_eq!(r.visits, 6 * 301);
    assert_eq!(r.stats.counter("kills"), 3);
    assert_eq!(r.stats.counter("restores"), 3, "every death must fail over");
    assert_eq!(r.stats.counter("xport_gave_up"), 0);
    assert!(r.stats.counter("ckpt_replicas") > 0);
}
