//! The mobile-code trust boundary, end to end: a program that fails
//! bytecode verification is quarantined by the code registry, and any
//! messenger that tries to run it faults with an observable
//! `verify_rejected` counter — while verified programs on the same
//! cluster are untouched.

use msgr_core::config::NetKind;
use msgr_core::{ClusterConfig, CodeCache, SimCluster};
use msgr_lang::compile;
use msgr_vm::{Builder, Op, Program, Value};

/// A structurally broken program: its only instruction jumps far out
/// of bounds (verifier code V002).
fn bad_program() -> Program {
    let mut b = Builder::new();
    let f = b.function("main", 0, 0, vec![Op::Jump(100)]);
    b.finish(f)
}

fn sim(n: usize) -> SimCluster {
    let mut cfg = ClusterConfig::new(n);
    cfg.net = NetKind::Ideal;
    SimCluster::new(cfg)
}

#[test]
fn code_cache_quarantines_unverifiable_programs() {
    let cache = CodeCache::new();
    let bad = bad_program();
    let id = cache.register(&bad);
    // The id is minted (content hash), but the program is invisible to
    // execution lookups and carries a precise rejection reason.
    assert!(cache.get(id).is_none());
    let reason = cache.rejection(id).expect("rejection reason recorded");
    assert!(reason.contains("V002"), "reason: {reason}");
    assert!(cache.get_any(id).is_some(), "quarantined code still inspectable");

    // A good program is unaffected.
    let good = compile("main() { node int x; x = 1; }").unwrap();
    let gid = cache.register(&good);
    assert!(cache.get(gid).is_some());
    assert!(cache.rejection(gid).is_none());
}

#[test]
fn daemon_refuses_quarantined_program_in_run() {
    let mut c = sim(2);
    let bad_id = c.register_program(&bad_program());
    let good = compile("main() { node int ok; ok = 1; }").unwrap();
    let good_id = c.register_program(&good);

    // Injection succeeds — the daemon, not the shell, is the boundary.
    c.inject(0, bad_id, &[]).unwrap();
    c.inject(1, good_id, &[]).unwrap();

    let report = c.run().unwrap();
    // Exactly one refusal, as a fault naming verification.
    assert_eq!(report.stats.counter("verify_rejected"), 1);
    assert_eq!(report.faults.len(), 1, "faults: {:?}", report.faults);
    assert!(report.faults[0].1.contains("failed verification"), "fault: {}", report.faults[0].1);
    assert!(report.faults[0].1.contains("V002"), "fault: {}", report.faults[0].1);
    // Accounting stays clean and the good messenger ran to completion.
    assert_eq!(report.live_leak, 0);
    assert_eq!(c.node_var(1, &Value::str("init"), "ok"), Some(Value::Int(1)));
}
