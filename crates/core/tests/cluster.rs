//! End-to-end cluster tests: MSGR-C scripts compiled, injected, and run
//! on both platforms.

use msgr_core::config::{NetKind, VtMode};
use msgr_core::topology::LogicalTopology;
use msgr_core::{ClusterConfig, ClusterError, SimCluster, ThreadCluster};
use msgr_lang::compile;
use msgr_vm::{Value, Vt};

fn sim(n: usize) -> SimCluster {
    let mut cfg = ClusterConfig::new(n);
    cfg.net = NetKind::Ideal; // fast functional tests
    SimCluster::new(cfg)
}

#[test]
fn single_messenger_updates_node_vars() {
    let prog = compile(
        r#"main(a, b) {
            node int sum;
            sum = a + b;
        }"#,
    )
    .unwrap();
    let mut c = sim(1);
    let pid = c.register_program(&prog);
    c.inject(0, pid, &[Value::Int(19), Value::Int(23)]).unwrap();
    let report = c.run().unwrap();
    assert_eq!(report.live_leak, 0);
    assert!(report.faults.is_empty());
    assert_eq!(c.node_var(0, &Value::str("init"), "sum"), Some(Value::Int(42)));
}

#[test]
fn create_all_spawns_one_worker_per_daemon() {
    // Each replica marks its daemon's init... actually the new node; it
    // then reports home by writing into the origin via a hop back.
    let prog = compile(
        r#"main() {
            node int here;
            create(ALL);
            here = $address + 1;  /* runs at each created node */
        }"#,
    )
    .unwrap();
    let mut c = sim(4);
    let pid = c.register_program(&prog);
    c.inject(2, pid, &[]).unwrap();
    let report = c.run().unwrap();
    assert_eq!(report.live_leak, 0, "faults: {:?}", report.faults);
    // One new node on every daemon (clique includes self).
    assert_eq!(report.stats.counter("remote_creates"), 4);
    assert_eq!(report.stats.counter("terminated"), 4);
}

#[test]
fn manager_worker_shuttle_with_last() {
    // The Fig. 3 skeleton: workers created on all daemons shuttle back
    // and forth over $last, pulling tasks from the center's node
    // variables — no manager process exists.
    let prog = compile(
        r#"manager_worker() {
            int task, res;
            node int next, limit, done, sum;
            create(ALL);
            hop(ll = $last);
            while ((task = take_task()) != NULL) {
                hop(ll = $last);
                res = task * task;
                hop(ll = $last);
                done = done + 1;
                sum = sum + res;
            }
        }"#,
    )
    .unwrap();
    let mut c = sim(4);
    c.register_native("take_task", |ctx, _args| {
        let next = ctx.node_var("next").as_int().unwrap_or(0);
        let limit = ctx.node_var("limit").as_int().unwrap_or(0);
        if next >= limit {
            return Ok(Value::Null);
        }
        ctx.set_node_var("next", Value::Int(next + 1));
        Ok(Value::Int(next))
    });
    let pid = c.register_program(&prog);
    // Pre-set the task pool on daemon 1's init node, where we inject.
    let mid = c.inject(1, pid, &[]);
    assert!(mid.is_ok());
    // Find daemon 1's init and set the limit before running.
    // (Injection is queued; nothing has executed yet.)
    let d1init = Value::str("init");
    // Set node vars directly through the daemon accessor.
    {
        // `set_node_var` works on directory names; init nodes are per
        // daemon, so use the daemon-level API via node_var/find…
        // For tests we reach through the public daemon handle.
    }
    // Simplest: run with limit stored via another injected setter script.
    let setter = compile(r#"set(n) { node int limit; limit = n; }"#).unwrap();
    let _sid = c.register_program(&setter);
    // The setter must run first; inject it first (FIFO at the daemon).
    let mut c2 = sim(4);
    c2.register_native("take_task", |ctx, _args| {
        let next = ctx.node_var("next").as_int().unwrap_or(0);
        let limit = ctx.node_var("limit").as_int().unwrap_or(0);
        if next >= limit {
            return Ok(Value::Null);
        }
        ctx.set_node_var("next", Value::Int(next + 1));
        Ok(Value::Int(next))
    });
    let sid = c2.register_program(&setter);
    let pid = c2.register_program(&prog);
    c2.inject(1, sid, &[Value::Int(10)]).unwrap();
    c2.inject(1, pid, &[]).unwrap();
    let report = c2.run().unwrap();
    assert!(report.faults.is_empty(), "faults: {:?}", report.faults);
    assert_eq!(report.live_leak, 0);
    assert_eq!(c2.node_var(1, &d1init, "done"), Some(Value::Int(10)));
    // sum of squares 0..9 = 285
    assert_eq!(c2.node_var(1, &d1init, "sum"), Some(Value::Int(285)));
    // All 10 tasks were taken exactly once despite 4 concurrent workers.
    assert_eq!(c2.node_var(1, &d1init, "next"), Some(Value::Int(10)));
}

#[test]
fn grid_hop_along_named_links() {
    // Build a 2x2 Fig.-10-style grid and walk a messenger along a row
    // then up a column.
    let prog = compile(
        r#"main() {
            node int mark;
            hop(ll = "row");          /* 0,0 -> 0,1 (row is a mesh) */
            mark = mark + 1;
            hop(ll = "column"; ldir = +);  /* up the column ring */
            mark = mark + 10;
        }"#,
    )
    .unwrap();
    let mut c = sim(4);
    c.build(&LogicalTopology::grid(2, 4)).unwrap();
    let pid = c.register_program(&prog);
    c.inject_at(&Value::str("0,0"), pid, &[]).unwrap();
    let report = c.run().unwrap();
    assert!(report.faults.is_empty(), "{:?}", report.faults);
    assert_eq!(report.live_leak, 0);
    // Row hop from 0,0 reaches 0,1 (single row neighbor in a 2x2 mesh).
    assert_eq!(c.node_var_by_name(&Value::str("0,1"), "mark"), Some(Value::Int(1)));
    // Column hop with ldir=+ from 0,1 goes to 1,1 ((0-1) mod 2 = 1).
    assert_eq!(c.node_var_by_name(&Value::str("1,1"), "mark"), Some(Value::Int(10)));
}

#[test]
fn hop_replicates_to_all_matches() {
    let prog = compile(
        r#"main() {
            node int hits;
            hop(ll = "spoke");
            hits = hits + 1;
        }"#,
    )
    .unwrap();
    let mut c = sim(3);
    c.build(&LogicalTopology::star(5, 3)).unwrap();
    let pid = c.register_program(&prog);
    c.inject_at(&Value::str("hub"), pid, &[]).unwrap();
    let report = c.run().unwrap();
    assert_eq!(report.live_leak, 0);
    for k in 0..5 {
        assert_eq!(
            c.node_var_by_name(&Value::str(format!("leaf{k}")), "hits"),
            Some(Value::Int(1)),
            "leaf{k}"
        );
    }
    assert_eq!(report.stats.counter("terminated"), 5);
}

#[test]
fn zero_match_hop_kills_messenger() {
    let prog = compile(r#"main() { hop(ll = "nonexistent"); }"#).unwrap();
    let mut c = sim(2);
    let pid = c.register_program(&prog);
    c.inject(0, pid, &[]).unwrap();
    let report = c.run().unwrap();
    assert_eq!(report.live_leak, 0);
    assert_eq!(report.stats.counter("hop_no_match"), 1);
    assert_eq!(report.stats.counter("terminated"), 0);
}

#[test]
fn virtual_hop_jumps_by_name() {
    let prog = compile(
        r#"main() {
            node int visited;
            hop(ll = virtual; ln = "faraway");
            visited = 1;
        }"#,
    )
    .unwrap();
    let mut c = sim(4);
    let mut topo = LogicalTopology::new();
    topo.node(Value::str("faraway"), msgr_core::DaemonId(3));
    c.build(&topo).unwrap();
    let pid = c.register_program(&prog);
    c.inject(0, pid, &[]).unwrap();
    let report = c.run().unwrap();
    assert_eq!(report.live_leak, 0, "{:?}", report.faults);
    assert_eq!(c.node_var_by_name(&Value::str("faraway"), "visited"), Some(Value::Int(1)));
    assert_eq!(report.stats.counter("virtual_hops"), 1);
}

#[test]
fn delete_tears_down_links_and_singletons() {
    let prog = compile(
        r#"main() {
            node int x;
            create(ln = "out"; ll = "cord"; dn = 1);
            /* now at node "out" on daemon 1 */
            x = 7;
            delete(ll = "cord");   /* back at init; cord destroyed */
            x = 9;
        }"#,
    )
    .unwrap();
    let mut c = sim(2);
    let pid = c.register_program(&prog);
    c.inject(0, pid, &[]).unwrap();
    let report = c.run().unwrap();
    assert!(report.faults.is_empty(), "{:?}", report.faults);
    assert_eq!(report.live_leak, 0);
    assert_eq!(c.node_var(0, &Value::str("init"), "x"), Some(Value::Int(9)));
    // "out" became a singleton and was deleted.
    assert_eq!(report.stats.counter("nodes_deleted"), 1);
    assert!(c.node_var_by_name(&Value::str("out"), "x").is_none());
}

#[test]
fn virtual_time_alternation_conservative() {
    // Two messengers at one node interleave strictly by virtual time:
    // A at ticks 0,1,2 appends 'a'; B at 0.5,1.5,2.5 appends 'b'.
    let prog = compile(
        r#"main(who, offset) {
            int k;
            node string trace;
            for (k = 0; k < 3; k = k + 1) {
                M_sched_time_abs(k + offset);
                trace = trace + who;
            }
        }"#,
    )
    .unwrap();
    let mut c = sim(2);
    let pid = c.register_program(&prog);
    c.inject(0, pid, &[Value::str("a"), Value::Float(0.0)]).unwrap();
    c.inject(0, pid, &[Value::str("b"), Value::Float(0.5)]).unwrap();
    let report = c.run().unwrap();
    assert!(report.faults.is_empty(), "{:?}", report.faults);
    assert_eq!(report.live_leak, 0);
    assert_eq!(c.node_var(0, &Value::str("init"), "trace"), Some(Value::str("ababab")));
    assert!(report.stats.counter("gvt_rounds") > 0);
}

#[test]
fn virtual_time_across_daemons() {
    // distribute/rotate-style alternation across two daemons sharing a
    // logical ring: each messenger stamps the global order counter.
    let prog = compile(
        r#"main(slot) {
            node int order_ok, counter;
            M_sched_time_abs(slot);
            counter = counter + 1;
            if (counter == slot + 1) order_ok = order_ok + 1;
        }"#,
    )
    .unwrap();
    let mut c = sim(1);
    let pid = c.register_program(&prog);
    for slot in 0..6 {
        c.inject(0, pid, &[Value::Int(slot)]).unwrap();
    }
    let report = c.run().unwrap();
    assert!(report.faults.is_empty());
    assert_eq!(
        c.node_var(0, &Value::str("init"), "order_ok"),
        Some(Value::Int(6)),
        "every messenger must observe the counter at its own slot"
    );
}

#[test]
fn optimistic_matches_conservative() {
    // A virtual-time workload with cross-daemon hops; optimistic (Time
    // Warp) must produce the same final node state as conservative.
    let src = r#"main(k, rounds) {
            int i;
            node int acc;
            for (i = 0; i < rounds; i = i + 1) {
                M_sched_time_dlt(1.0);
                acc = acc + k + i;
                hop(ll = "ring");
            }
        }"#;
    let prog = compile(src).unwrap();

    let run_with = |mode: VtMode| {
        let mut cfg = ClusterConfig::new(2);
        cfg.net = NetKind::Ideal;
        cfg.vt_mode = mode;
        let mut c = SimCluster::new(cfg);
        let mut topo = LogicalTopology::new();
        topo.node(Value::str("r0"), msgr_core::DaemonId(0));
        topo.node(Value::str("r1"), msgr_core::DaemonId(1));
        topo.link(Value::str("r0"), Value::str("r1"), Value::str("ring"), msgr_vm::Dir::Any);
        c.build(&topo).unwrap();
        let pid = c.register_program(&prog);
        c.inject_at(&Value::str("r0"), pid, &[Value::Int(1), Value::Int(4)]).unwrap();
        c.inject_at(&Value::str("r1"), pid, &[Value::Int(100), Value::Int(4)]).unwrap();
        let report = c.run().unwrap();
        assert!(report.faults.is_empty(), "{mode:?}: {:?}", report.faults);
        (c.node_var_by_name(&Value::str("r0"), "acc"), c.node_var_by_name(&Value::str("r1"), "acc"))
    };
    let cons = run_with(VtMode::Conservative);
    let opt = run_with(VtMode::Optimistic);
    assert_eq!(cons, opt);
    assert!(cons.0.is_some());
}

#[test]
fn carry_code_inflates_migrations() {
    let prog =
        compile(r#"main() { int i; for (i = 0; i < 4; i = i + 1) hop(ll = "spoke"); }"#).unwrap();
    let run_with = |carry: bool| {
        let mut cfg = ClusterConfig::new(2);
        cfg.net = NetKind::Ideal;
        cfg.carry_code = carry;
        let mut c = SimCluster::new(cfg);
        c.build(&LogicalTopology::star(1, 2)).unwrap();
        let pid = c.register_program(&prog);
        c.inject_at(&Value::str("hub"), pid, &[]).unwrap();
        let r = c.run().unwrap();
        r.stats.counter("migration_bytes")
    };
    let lean = run_with(false);
    let fat = run_with(true);
    assert!(fat > lean * 2, "carry-code should dominate: {fat} vs {lean}");
}

#[test]
fn stalled_detection_on_livelock() {
    // A messenger bouncing between two nodes forever.
    let prog = compile(r#"main() { while (1) hop(ll = "spoke"); }"#).unwrap();
    let mut cfg = ClusterConfig::new(2);
    cfg.net = NetKind::Ideal;
    cfg.max_events = 20_000;
    let mut c = SimCluster::new(cfg);
    c.build(&LogicalTopology::star(1, 2)).unwrap();
    let pid = c.register_program(&prog);
    c.inject_at(&Value::str("hub"), pid, &[]).unwrap();
    match c.run() {
        Err(ClusterError::Stalled { events }) => assert!(events >= 20_000),
        other => panic!("expected stall, got {other:?}"),
    }
}

#[test]
fn faulting_messenger_reported_not_fatal() {
    let prog = compile(r#"main() { int x; x = 1 / 0; }"#).unwrap();
    let mut c = sim(1);
    let pid = c.register_program(&prog);
    c.inject(0, pid, &[]).unwrap();
    let report = c.run().unwrap();
    assert_eq!(report.live_leak, 0);
    assert_eq!(report.faults.len(), 1);
    assert!(report.faults[0].1.contains("division by zero"));
}

#[test]
fn unknown_program_rejected() {
    let mut c = sim(1);
    let err = c.inject(0, msgr_vm::ProgramId(0xDEAD), &[]).unwrap_err();
    assert_eq!(err, ClusterError::UnknownProgram);
}

#[test]
fn bad_arity_injection_rejected() {
    let prog = compile("main(a) { return a; }").unwrap();
    let mut c = sim(1);
    let pid = c.register_program(&prog);
    let err = c.inject(0, pid, &[]).unwrap_err();
    assert!(matches!(err, ClusterError::BadInjection(_)));
}

// ---- threaded platform ----------------------------------------------------

#[test]
fn threads_basic_node_update() {
    let prog = compile(
        r#"main(n) {
            node int total;
            total = total + n;
        }"#,
    )
    .unwrap();
    let mut c = ThreadCluster::new(ClusterConfig::new(2)).unwrap();
    let pid = c.register_program(&prog);
    c.inject(0, pid, &[Value::Int(5)]).unwrap();
    c.inject(0, pid, &[Value::Int(7)]).unwrap();
    let report = c.run().unwrap();
    assert!(report.faults.is_empty());
    assert_eq!(c.node_var(0, &Value::str("init"), "total"), Some(Value::Int(12)));
    assert!(report.wall_seconds < 60.0);
}

#[test]
fn threads_create_all_and_shuttle() {
    let prog = compile(
        r#"main() {
            int task;
            node int next, done;
            create(ALL);
            hop(ll = $last);
            while ((task = grab()) != NULL) {
                hop(ll = $last);
                hop(ll = $last);
                done = done + 1;
            }
        }"#,
    )
    .unwrap();
    let mut c = ThreadCluster::new(ClusterConfig::new(4)).unwrap();
    c.register_native("grab", |ctx, _| {
        let next = ctx.node_var("next").as_int().unwrap_or(0);
        if next >= 20 {
            return Ok(Value::Null);
        }
        ctx.set_node_var("next", Value::Int(next + 1));
        Ok(Value::Int(next))
    });
    let pid = c.register_program(&prog);
    c.inject(0, pid, &[]).unwrap();
    let report = c.run().unwrap();
    assert!(report.faults.is_empty(), "{:?}", report.faults);
    assert_eq!(c.node_var(0, &Value::str("init"), "done"), Some(Value::Int(20)));
    assert_eq!(c.node_var(0, &Value::str("init"), "next"), Some(Value::Int(20)));
}

#[test]
fn threads_virtual_time_alternation() {
    let prog = compile(
        r#"main(who, offset) {
            int k;
            node string trace;
            for (k = 0; k < 3; k = k + 1) {
                M_sched_time_abs(k + offset);
                trace = trace + who;
            }
        }"#,
    )
    .unwrap();
    let mut cfg = ClusterConfig::new(2);
    cfg.gvt_interval = 1_000_000; // 1 ms wall-clock ticks
    let mut c = ThreadCluster::new(cfg).unwrap();
    let pid = c.register_program(&prog);
    c.inject(1, pid, &[Value::str("a"), Value::Float(0.0)]).unwrap();
    c.inject(1, pid, &[Value::str("b"), Value::Float(0.5)]).unwrap();
    let report = c.run().unwrap();
    assert!(report.faults.is_empty(), "{:?}", report.faults);
    assert_eq!(c.node_var(1, &Value::str("init"), "trace"), Some(Value::str("ababab")));
}

#[test]
fn threads_file_backed_checkpoints() {
    use msgr_core::{CheckpointStore, DaemonId, FileStore};
    let dir = std::env::temp_dir().join(format!("msgr-threads-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let prog = compile(
        r#"main(n) {
            node int total;
            total = total + n;
        }"#,
    )
    .unwrap();
    let mut cfg = ClusterConfig::new(2);
    cfg.checkpoint_dir = Some(dir.clone());
    let mut c = ThreadCluster::new(cfg).unwrap();
    let pid = c.register_program(&prog);
    c.inject(0, pid, &[Value::Int(5)]).unwrap();
    let report = c.run().unwrap();
    assert!(report.faults.is_empty(), "{:?}", report.faults);
    // Every daemon wrote at least its shutdown snapshot, and the files
    // decode as the current snapshot format.
    let store = FileStore::new(dir.clone()).unwrap();
    for d in 0..2u16 {
        let snap = store.get(DaemonId(d)).expect("snapshot file exists");
        assert_eq!(snap[0], 1, "daemon {d}: snapshot format version");
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn threads_reject_optimistic() {
    let mut cfg = ClusterConfig::new(2);
    cfg.vt_mode = VtMode::Optimistic;
    assert!(matches!(ThreadCluster::new(cfg), Err(ClusterError::Config(_))));
}

#[test]
fn vt_zero_wake_runs_immediately() {
    // M_sched_time_abs(0) at vtime 0 must not deadlock even though GVT
    // starts at 0.
    let prog = compile(
        r#"main() {
            node int ran;
            M_sched_time_abs(0.0);
            ran = 1;
        }"#,
    )
    .unwrap();
    let mut c = sim(2);
    let pid = c.register_program(&prog);
    c.inject(0, pid, &[]).unwrap();
    let report = c.run().unwrap();
    assert!(report.faults.is_empty());
    assert_eq!(c.node_var(0, &Value::str("init"), "ran"), Some(Value::Int(1)));
    let _ = Vt::ZERO;
}

#[test]
fn create_respects_daemon_topology_patterns() {
    // A ring daemon network with named links: create(dl = "ring",
    // ddir = +) must place the node on the clockwise neighbor only.
    let prog = compile(
        r#"main() {
            node int made;
            create(ln = "next"; ll = "cord"; dl = "ring"; ddir = +);
            made = $address + 100;   /* runs at the created node */
        }"#,
    )
    .unwrap();
    let mut cfg = ClusterConfig::new(4);
    cfg.net = NetKind::Ideal;
    let mut c =
        msgr_core::SimCluster::with_daemon_topology(cfg, msgr_core::DaemonTopology::ring(4));
    let pid = c.register_program(&prog);
    c.inject(1, pid, &[]).unwrap();
    let report = c.run().unwrap();
    assert!(report.faults.is_empty(), "{:?}", report.faults);
    // Daemon 1's clockwise neighbor is daemon 2.
    assert_eq!(c.node_var_by_name(&Value::str("next"), "made"), Some(Value::Int(102)));
}

#[test]
fn create_with_dn_places_on_named_daemon() {
    let prog = compile(
        r#"main(target) {
            node int made;
            create(ln = "spot"; dn = target);
            made = $address;
        }"#,
    )
    .unwrap();
    let mut c = sim(6);
    let pid = c.register_program(&prog);
    c.inject(0, pid, &[Value::Int(4)]).unwrap();
    let report = c.run().unwrap();
    assert!(report.faults.is_empty(), "{:?}", report.faults);
    assert_eq!(c.node_var_by_name(&Value::str("spot"), "made"), Some(Value::Int(4)));
}

#[test]
fn threaded_stress_many_messengers() {
    // 64 messengers bouncing across 8 daemons, all terminating cleanly.
    let prog = compile(
        r#"main(rounds) {
            int i;
            node int landings;
            create(ALL);
            for (i = 0; i < rounds; i = i + 1) {
                landings = landings + 1;
                hop(ll = $last);
            }
        }"#,
    )
    .unwrap();
    let mut c = ThreadCluster::new(ClusterConfig::new(8)).unwrap();
    let pid = c.register_program(&prog);
    for _ in 0..8 {
        c.inject(0, pid, &[Value::Int(8)]).unwrap();
    }
    let report = c.run().unwrap();
    assert!(report.faults.is_empty(), "{:?}", report.faults);
    // 8 injections × 8 replicas each → 64 workers... each replica makes
    // `rounds` hops; total landings = replicas × rounds (first landing
    // at creation, then ping-pong).
    assert_eq!(report.stats.counter("terminated"), 64);
}

#[test]
fn runtime_injection_at_future_time() {
    // The paper allows injecting new messengers at runtime; a late
    // messenger must observe the state its predecessors left behind.
    let prog = compile(
        r#"stamp(tag) {
            node string log;
            log = log + tag;
        }"#,
    )
    .unwrap();
    let mut c = sim(2);
    let mut topo = LogicalTopology::new();
    topo.node(Value::str("board"), msgr_core::DaemonId(1));
    c.build(&topo).unwrap();
    let pid = c.register_program(&prog);
    c.inject_at(&Value::str("board"), pid, &[Value::str("a")]).unwrap();
    c.inject_at_time(&Value::str("board"), pid, &[Value::str("c")], 2.0).unwrap();
    c.inject_at_time(&Value::str("board"), pid, &[Value::str("b")], 1.0).unwrap();
    let report = c.run().unwrap();
    assert!(report.faults.is_empty(), "{:?}", report.faults);
    assert_eq!(report.live_leak, 0);
    assert!(report.sim_seconds >= 2.0, "clock must reach the last injection");
    assert_eq!(
        c.node_var_by_name(&Value::str("board"), "log"),
        Some(Value::str("abc")),
        "injections must run in scheduled order"
    );
}

#[test]
fn logical_network_persists_across_messenger_generations() {
    // §1: "the logical network is persistent. Unless explicitly
    // destroyed, it will continue to exist after the Messengers have
    // moved on or terminated." A builder messenger creates the network;
    // a *later* generation (injected at a later simulated time, after
    // the builder has died) navigates it.
    let builder = compile(
        r#"build() {
            create(ln = "annex"; ll = "door"; dn = 1);
            /* builder dies here, at the annex */
        }"#,
    )
    .unwrap();
    let visitor = compile(
        r#"visit() {
            node int visits;
            hop(ll = virtual; ln = "annex");
            visits = visits + 1;
        }"#,
    )
    .unwrap();
    let mut c = sim(2);
    let bid = c.register_program(&builder);
    let vid = c.register_program(&visitor);
    c.inject(0, bid, &[]).unwrap();
    let run1 = c.run().unwrap();
    assert!(run1.faults.is_empty(), "{:?}", run1.faults);

    // The builder is long dead; its network remains.
    c.inject(0, vid, &[]).unwrap();
    c.inject(1, vid, &[]).unwrap();
    let run2 = c.run().unwrap();
    assert!(run2.faults.is_empty(), "{:?}", run2.faults);
    assert_eq!(c.node_var_by_name(&Value::str("annex"), "visits"), Some(Value::Int(2)));
}

#[test]
fn runaway_messenger_is_killed_with_fuel_fault() {
    let prog = compile(r#"main() { while (1) { } }"#).unwrap();
    let mut cfg = ClusterConfig::new(1);
    cfg.net = NetKind::Ideal;
    cfg.segment_fuel = 50_000;
    let mut c = SimCluster::new(cfg);
    let pid = c.register_program(&prog);
    c.inject(0, pid, &[]).unwrap();
    let report = c.run().unwrap();
    assert_eq!(report.live_leak, 0);
    assert_eq!(report.faults.len(), 1);
    assert!(report.faults[0].1.contains("fuel"), "{:?}", report.faults);
}

#[test]
fn negative_virtual_time_delta_faults() {
    let prog = compile(r#"main() { M_sched_time_dlt(0.0 - 1.0); }"#).unwrap();
    let mut c = sim(1);
    let pid = c.register_program(&prog);
    c.inject(0, pid, &[]).unwrap();
    let report = c.run().unwrap();
    assert_eq!(report.faults.len(), 1);
    assert!(report.faults[0].1.contains("negative"), "{:?}", report.faults);
    assert_eq!(report.live_leak, 0);
}

#[test]
fn backward_hop_traverses_against_orientation() {
    let prog = compile(
        r#"main() {
            node int here;
            hop(ll = "oneway"; ldir = -);   /* against the arrow */
            here = $address + 1;
        }"#,
    )
    .unwrap();
    let mut c = sim(2);
    let mut topo = LogicalTopology::new();
    topo.node(Value::str("src"), msgr_core::DaemonId(0));
    topo.node(Value::str("dst"), msgr_core::DaemonId(1));
    // Arrow points src -> dst; we inject at dst and walk backward to src.
    topo.link(Value::str("src"), Value::str("dst"), Value::str("oneway"), msgr_vm::Dir::Forward);
    c.build(&topo).unwrap();
    let pid = c.register_program(&prog);
    c.inject_at(&Value::str("dst"), pid, &[]).unwrap();
    let report = c.run().unwrap();
    assert!(report.faults.is_empty());
    assert_eq!(c.node_var_by_name(&Value::str("src"), "here"), Some(Value::Int(1)));
    // Forward from dst must not match (zero-match kills).
    let prog2 = compile(r#"main() { hop(ll = "oneway"; ldir = +); }"#).unwrap();
    let pid2 = c.register_program(&prog2);
    c.inject_at(&Value::str("dst"), pid2, &[]).unwrap();
    let report = c.run().unwrap();
    assert_eq!(report.stats.counter("hop_no_match"), 1);
}

#[test]
fn unnamed_link_pattern_matches_only_unnamed() {
    let prog = compile(
        r#"main() {
            node int got;
            hop(ll = ~);     /* unnamed links only */
            got = 1;
        }"#,
    )
    .unwrap();
    let mut c = sim(3);
    let mut topo = LogicalTopology::new();
    topo.node(Value::str("hub2"), msgr_core::DaemonId(0));
    topo.node(Value::str("named"), msgr_core::DaemonId(1));
    topo.node(Value::str("anon"), msgr_core::DaemonId(2));
    topo.link(Value::str("hub2"), Value::str("named"), Value::str("wire"), msgr_vm::Dir::Any);
    topo.link(Value::str("hub2"), Value::str("anon"), Value::Null, msgr_vm::Dir::Any);
    c.build(&topo).unwrap();
    let pid = c.register_program(&prog);
    c.inject_at(&Value::str("hub2"), pid, &[]).unwrap();
    let report = c.run().unwrap();
    assert!(report.faults.is_empty());
    assert_eq!(c.node_var_by_name(&Value::str("anon"), "got"), Some(Value::Int(1)));
    assert_eq!(c.node_var_by_name(&Value::str("named"), "got"), Some(Value::Null));
}

#[test]
fn node_netvar_reports_current_node_name() {
    let prog = compile(
        r#"main() {
            node string whoami;
            whoami = "" + $node;
            hop(ll = "spoke");
            whoami = "" + $node;
        }"#,
    )
    .unwrap();
    let mut c = sim(2);
    c.build(&LogicalTopology::star(1, 2)).unwrap();
    let pid = c.register_program(&prog);
    c.inject_at(&Value::str("hub"), pid, &[]).unwrap();
    let report = c.run().unwrap();
    assert!(report.faults.is_empty(), "{:?}", report.faults);
    assert_eq!(c.node_var_by_name(&Value::str("hub"), "whoami"), Some(Value::str("hub")));
    assert_eq!(c.node_var_by_name(&Value::str("leaf0"), "whoami"), Some(Value::str("leaf0")));
}

#[test]
fn arrays_travel_with_messengers() {
    // A messenger fills an array, hops with it, and unloads it remotely.
    let prog = compile(
        r#"main(n) {
            int a[n], i;
            node int total;
            for (i = 0; i < n; i = i + 1) a[i] = i + 1;
            hop(ll = "spoke");
            for (i = 0; i < n; i = i + 1) total = total + a[i];
        }"#,
    )
    .unwrap();
    let mut c = sim(2);
    c.build(&LogicalTopology::star(1, 2)).unwrap();
    let pid = c.register_program(&prog);
    c.inject_at(&Value::str("hub"), pid, &[Value::Int(10)]).unwrap();
    let report = c.run().unwrap();
    assert!(report.faults.is_empty(), "{:?}", report.faults);
    assert_eq!(c.node_var_by_name(&Value::str("leaf0"), "total"), Some(Value::Int(55)));
}

#[test]
fn delete_from_hub_does_not_strand_the_traveler() {
    // The deleting messenger tears down the only link while traveling
    // over it: it must still arrive, and the now-singleton destination
    // survives while occupied.
    let prog = compile(
        r#"main() {
            node int landed;
            create(ln = "island"; ll = "bridge"; dn = 1);
            hop(ll = $last);          /* back to init */
            delete(ll = "bridge");    /* burn the bridge while crossing it */
            landed = 1;
        }"#,
    )
    .unwrap();
    let mut c = sim(2);
    let pid = c.register_program(&prog);
    c.inject(0, pid, &[]).unwrap();
    let report = c.run().unwrap();
    assert!(report.faults.is_empty(), "{:?}", report.faults);
    assert_eq!(report.live_leak, 0);
    assert_eq!(report.stats.counter("dead_letters"), 0, "traveler must not be lost");
    assert_eq!(c.node_var_by_name(&Value::str("island"), "landed"), Some(Value::Int(1)));
}
