//! Property suite for `Wire::Batch` and the execution lanes.
//!
//! The batching optimization only counts if it is provably invisible:
//! a batch must round-trip the codec under arbitrary frame mixes, the
//! codec must refuse every nesting a buggy coalescer could produce
//! (a Batch never contains Data/Ack/Batch), exactly-once delivery must
//! survive seeded drop/dup/reorder with batching enabled, and the lane
//! assignment must be a pure function of gid + seed so `sim` stays
//! deterministic at any lane count.
//!
//! Every property runs 256 generated cases through `msgr-check`, so a
//! failing case prints a `MSGR_CHECK_SEED=<n>` line and replays (and
//! shrinks) deterministically. `MSGR_FAULT_SEED=<n>` (set by
//! `scripts/ci.sh`'s chaos step) is XORed into every cluster seed so CI
//! sweeps fresh loss schedules without touching the source.
//!
//! ## Mutation check
//!
//! `broken_retransmit_loses_whole_batches` proves the suite has teeth
//! against the new failure mode batching introduces: one abandoned
//! envelope now loses *several* messengers. It cripples the retransmit
//! layer and asserts the exactly-once property fails on the scatter
//! workload — and that the give-up path faults every messenger in the
//! lost batch instead of silently leaking all but one.

use msgr_check::{check_with, prop_assert, prop_assert_eq, run_check, Config, Source};
use msgr_core::topology::LogicalTopology;
use msgr_core::wire::{decode_frame, encode_frame, CreateNode, Migration, Wire};
use msgr_core::{lane_of, BatchPolicy, ClusterConfig, DaemonId, NodeRef, SimCluster};
use msgr_gvt::CtrlMsg;
use msgr_sim::{FaultPlan, MILLI};
use msgr_vm::{Bytes, Dir, LinkInstance, MessengerId, Value, Vt};

// ---- generators (mirroring wire_props.rs) ----

fn arb_vt(s: &mut Source) -> Vt {
    if s.bool_with(0.1) {
        Vt::new(f64::INFINITY)
    } else {
        Vt::new(s.f64_in(0.0, 1e9))
    }
}

fn arb_node_ref(s: &mut Source) -> NodeRef {
    NodeRef::new(s.any_u16(), s.any_u64())
}

fn arb_endpoint(s: &mut Source) -> (DaemonId, NodeRef) {
    (DaemonId(s.any_u16()), arb_node_ref(s))
}

fn arb_name(s: &mut Source) -> Value {
    if s.any_bool() {
        Value::Null
    } else {
        Value::str(s.string(0..12, "abcdefghij"))
    }
}

fn arb_migration(s: &mut Source) -> Migration {
    Migration {
        id: MessengerId(s.any_u64()),
        vtime: arb_vt(s),
        epoch: s.any_u64(),
        anti: s.any_bool(),
        to: arb_endpoint(s),
        via: if s.any_bool() { Some(LinkInstance(s.any_u64())) } else { None },
        bytes: Bytes::from(s.vec_with(0..64, |s| s.any_u8())),
        code_bytes: s.any_u64(),
    }
}

fn arb_ctrl(s: &mut Source) -> CtrlMsg {
    match s.draw(3) {
        0 => CtrlMsg::Cut { round: s.any_u64() },
        1 => CtrlMsg::Poll { round: s.any_u64() },
        _ => CtrlMsg::Advance { gvt: arb_vt(s) },
    }
}

/// Frames a coalescer is allowed to put inside a batch — plus the GVT
/// control frames the codec tolerates there (anything but
/// Data/Ack/Batch).
fn arb_inner_frame(s: &mut Source) -> Wire {
    match s.draw(5) {
        0 => Wire::Migrate(arb_migration(s)),
        1 => Wire::Create(Box::new(CreateNode {
            gid: arb_node_ref(s),
            name: arb_name(s),
            origin: arb_endpoint(s),
            origin_name: arb_name(s),
            inst: LinkInstance(s.any_u64()),
            link_name: arb_name(s),
            orient_at_new: *s.pick(&[
                msgr_core::logical::Orient::Out,
                msgr_core::logical::Orient::In,
                msgr_core::logical::Orient::Undirected,
            ]),
            messenger: arb_migration(s),
        })),
        2 => Wire::Unlink { node: arb_node_ref(s), inst: LinkInstance(s.any_u64()) },
        3 => Wire::Gvt(arb_ctrl(s)),
        _ => Wire::GvtKick,
    }
}

fn arb_batch(s: &mut Source) -> Wire {
    Wire::Batch(s.vec_with(2..17, arb_inner_frame))
}

fn chaos_cases() -> Config {
    Config { cases: 256, ..Config::default() }
}

fn fault_seed() -> u64 {
    std::env::var("MSGR_FAULT_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

// ---- codec properties ----

#[test]
fn batch_codec_round_trips() {
    check_with(chaos_cases(), "batch_codec_round_trips", |s| {
        let w = if s.any_bool() {
            arb_batch(s)
        } else {
            // A batch sealed inside one transport envelope — the form
            // the reliable transport actually retransmits and acks.
            Wire::Data {
                src: DaemonId(s.any_u16()),
                chan: DaemonId(s.any_u16()),
                seq: s.any_u64(),
                frame: Box::new(arb_batch(s)),
            }
        };
        let back = decode_frame(encode_frame(&w)).map_err(|e| e.to_string())?;
        prop_assert_eq!(back, w);
        Ok(())
    });
}

#[test]
fn batch_nesting_is_refused() {
    // Every shape a buggy coalescer could emit must die in the decoder:
    // Batch-in-Batch, Data-in-Batch, Ack-in-Batch, and batches with
    // fewer than two frames (which should have stayed plain sends).
    check_with(chaos_cases(), "batch_nesting_is_refused", |s| {
        let contraband = match s.draw(4) {
            0 => arb_batch(s),
            1 => Wire::Data {
                src: DaemonId(s.any_u16()),
                chan: DaemonId(s.any_u16()),
                seq: s.any_u64(),
                frame: Box::new(arb_inner_frame(s)),
            },
            2 => Wire::Ack {
                src: DaemonId(s.any_u16()),
                chan: DaemonId(s.any_u16()),
                cum: s.any_u64(),
                seq: s.any_u64(),
            },
            _ => {
                // Undersized batch (0 or 1 frames) of legal inners.
                let w = Wire::Batch(s.vec_with(0..2, arb_inner_frame));
                prop_assert!(
                    decode_frame(encode_frame(&w)).is_err(),
                    "undersized batch decoded: {w:?}"
                );
                return Ok(());
            }
        };
        let mut frames = s.vec_with(2..9, arb_inner_frame);
        let at = s.usize_in(0..frames.len() + 1);
        frames.insert(at, contraband);
        let w = Wire::Batch(frames);
        prop_assert!(decode_frame(encode_frame(&w)).is_err(), "nested batch decoded: {w:?}");
        // Nesting refusal must hold one envelope deeper too.
        let sealed = Wire::Data { src: DaemonId(0), chan: DaemonId(1), seq: 7, frame: Box::new(w) };
        prop_assert!(decode_frame(encode_frame(&sealed)).is_err(), "sealed nested batch decoded");
        Ok(())
    });
}

#[test]
fn batch_corruption_never_silently_round_trips() {
    // Flip one byte anywhere in an encoded batch: the decoder must
    // either reject the buffer or produce a visibly different frame —
    // never report the original frame from corrupted bytes.
    check_with(chaos_cases(), "batch_corruption_never_silently_round_trips", |s| {
        let w = arb_batch(s);
        let full = encode_frame(&w);
        let mut raw: Vec<u8> = full.as_ref().to_vec();
        let at = s.usize_in(0..raw.len());
        let flip = (s.draw(255) + 1) as u8; // never a no-op XOR
        raw[at] ^= flip;
        match decode_frame(Bytes::from(raw)) {
            Err(_) => {}
            Ok(back) => prop_assert!(
                back != w,
                "corrupt byte {at} (xor {flip:#x}) silently round-tripped {w:?}"
            ),
        }
        Ok(())
    });
}

// ---- lane assignment properties ----

#[test]
fn lane_assignment_is_pure_and_bounded() {
    check_with(chaos_cases(), "lane_assignment_is_pure_and_bounded", |s| {
        let gid = arb_node_ref(s);
        let seed = s.any_u64();
        let lanes = s.usize_in(1..9);
        let lane = lane_of(gid, seed, lanes);
        prop_assert!(lane < lanes, "lane {lane} out of range {lanes}");
        // Pure: same inputs, same lane — across calls and clones.
        prop_assert_eq!(lane, lane_of(gid, seed, lanes));
        // Degenerate cases pin to lane 0.
        prop_assert_eq!(lane_of(gid, seed, 1), 0);
        prop_assert_eq!(lane_of(gid, seed, 0), 0);
        Ok(())
    });
}

// ---- cluster chaos properties ----

const WALK: &str = r#"
walk(passes) {
    int i = 0;
    node int visits;
    visits = visits + 1;
    while (i < passes) {
        hop(ll = "ring"; ldir = +);
        visits = visits + 1;
        i = i + 1;
    }
}
"#;

/// Each injection at the hub replicates to every spoke in one burst —
/// the workload that forces the coalescer to form real batches.
const SCATTER: &str = r#"
scatter() {
    node int seen;
    hop(ll = "out"; ldir = +);
    seen = seen + 1;
}
"#;

fn arb_rates(s: &mut Source) -> FaultPlan {
    FaultPlan {
        drop_p: s.f64_in(0.0, 0.10),
        dup_p: s.f64_in(0.0, 0.10),
        reorder_p: s.f64_in(0.0, 0.10),
        reorder_delay: s.u64_in(MILLI / 10..5 * MILLI),
        crashes: Vec::new(),
    }
}

struct StarScenario {
    daemons: usize,
    spokes: usize,
    injections: usize,
    seed: u64,
    lanes: usize,
    plan: FaultPlan,
}

fn arb_star(s: &mut Source) -> StarScenario {
    let daemons = s.usize_in(2..6);
    StarScenario {
        daemons,
        // At least two spokes per daemon, so every burst has a
        // coalescible pair for every destination.
        spokes: s.usize_in(2 * daemons..17),
        injections: s.usize_in(2..9),
        seed: s.any_u64() ^ fault_seed(),
        lanes: s.usize_in(1..5),
        plan: arb_rates(s),
    }
}

struct StarResult {
    faults: Vec<(MessengerId, String)>,
    live_leak: i64,
    seen: i64,
    stats: msgr_sim::Stats,
}

fn run_star(
    sc: &StarScenario,
    cfg_tweak: impl Fn(&mut ClusterConfig),
) -> Result<StarResult, String> {
    let mut topo = LogicalTopology::new();
    topo.node(Value::str("hub"), DaemonId(0));
    for i in 0..sc.spokes {
        topo.node(Value::str(format!("s{i}")), DaemonId((i % sc.daemons) as u16));
        topo.link(Value::str("hub"), Value::str(format!("s{i}")), Value::str("out"), Dir::Forward);
    }
    let mut cfg = ClusterConfig::new(sc.daemons);
    cfg.seed = sc.seed;
    cfg.faults = sc.plan.clone();
    cfg.lanes = sc.lanes;
    cfg.batch = BatchPolicy::on();
    cfg_tweak(&mut cfg);
    let mut cluster = SimCluster::new(cfg);
    cluster.build(&topo).map_err(|e| e.to_string())?;
    let pid = cluster.register_program(&msgr_lang::compile(SCATTER).map_err(|e| e.to_string())?);
    for _ in 0..sc.injections {
        cluster.inject_at(&Value::str("hub"), pid, &[]).map_err(|e| e.to_string())?;
    }
    let report = cluster.run().map_err(|e| e.to_string())?;
    let mut seen = 0i64;
    for i in 0..sc.spokes {
        if let Some(Value::Int(v)) = cluster.node_var_by_name(&Value::str(format!("s{i}")), "seen")
        {
            seen += v;
        }
    }
    Ok(StarResult {
        faults: report.faults.clone(),
        live_leak: report.live_leak,
        seen,
        stats: report.stats,
    })
}

#[test]
fn chaos_batched_scatter_delivers_exactly_once() {
    check_with(chaos_cases(), "chaos_batched_scatter_delivers_exactly_once", |s| {
        let sc = arb_star(s);
        let r = run_star(&sc, |_| {})?;
        prop_assert!(r.faults.is_empty(), "unexpected faults: {:?}", r.faults);
        prop_assert_eq!(r.live_leak, 0);
        prop_assert_eq!(r.seen, (sc.injections * sc.spokes) as i64);
        prop_assert_eq!(r.stats.counter("xport_gave_up"), 0);
        prop_assert_eq!(r.stats.counter("xport_acked"), r.stats.counter("xport_sent"));
        // The workload is built so coalescing must actually fire —
        // otherwise this property is not testing batching at all.
        prop_assert!(r.stats.counter("batch_flushes") > 0, "no batches formed");
        prop_assert!(
            r.stats.counter("batch_frames") >= 2 * r.stats.counter("batch_flushes"),
            "batch with fewer than two frames"
        );
        Ok(())
    });
}

#[test]
fn chaos_batched_runs_are_lane_invariant() {
    // Same seed, same faults: lanes=1 and lanes=4 must agree on every
    // observable — deliveries, live accounting, f64-bit-identical
    // simulated time, and all counters except the lane bookkeeping.
    check_with(chaos_cases(), "chaos_batched_runs_are_lane_invariant", |s| {
        let mut sc = arb_star(s);
        sc.lanes = 1;
        let a = run_star(&sc, |_| {})?;
        sc.lanes = 4;
        let b = run_star(&sc, |_| {})?;
        prop_assert_eq!(a.seen, b.seen);
        prop_assert_eq!(a.live_leak, b.live_leak);
        prop_assert_eq!(
            a.stats.counters().collect::<Vec<_>>(),
            b.stats.counters().collect::<Vec<_>>()
        );
        Ok(())
    });
}

#[test]
fn chaos_batched_ring_walk_delivers_exactly_once() {
    // The fault_props ring walk, re-run with batching enabled and a
    // random lane count: enabling the optimization must not change the
    // exactly-once verdict on the workload the original suite pins.
    check_with(chaos_cases(), "chaos_batched_ring_walk_delivers_exactly_once", |s| {
        let plan = arb_rates(s);
        let daemons = s.usize_in(1..9);
        let nodes = s.usize_in(daemons..2 * daemons + 1);
        let msgrs = s.usize_in(1..5);
        let passes = s.i64_in(1..25);
        let mut topo = LogicalTopology::new();
        for i in 0..nodes {
            topo.node(Value::str(format!("p{i}")), DaemonId((i % daemons) as u16));
        }
        for i in 0..nodes {
            topo.link(
                Value::str(format!("p{i}")),
                Value::str(format!("p{}", (i + 1) % nodes)),
                Value::str("ring"),
                Dir::Forward,
            );
        }
        let mut cfg = ClusterConfig::new(daemons);
        cfg.seed = s.any_u64() ^ fault_seed();
        cfg.faults = plan;
        cfg.lanes = s.usize_in(1..5);
        cfg.batch = BatchPolicy::on();
        let mut cluster = SimCluster::new(cfg);
        cluster.build(&topo).map_err(|e| e.to_string())?;
        let pid = cluster.register_program(&msgr_lang::compile(WALK).map_err(|e| e.to_string())?);
        for m in 0..msgrs {
            cluster
                .inject_at(&Value::str(format!("p{}", m % nodes)), pid, &[Value::Int(passes)])
                .map_err(|e| e.to_string())?;
        }
        let report = cluster.run().map_err(|e| e.to_string())?;
        prop_assert!(report.faults.is_empty(), "unexpected faults: {:?}", report.faults);
        prop_assert_eq!(report.live_leak, 0);
        let mut visits = 0i64;
        for i in 0..nodes {
            if let Some(Value::Int(v)) =
                cluster.node_var_by_name(&Value::str(format!("p{i}")), "visits")
            {
                visits += v;
            }
        }
        prop_assert_eq!(visits, msgrs as i64 * (passes + 1));
        prop_assert_eq!(report.stats.counter("xport_gave_up"), 0);
        Ok(())
    });
}

#[test]
fn broken_retransmit_loses_whole_batches() {
    // Mutation check (see module docs). Under 40% loss a transport that
    // gives up after one retry abandons envelopes in virtually every
    // run; with batching those envelopes carry several messengers each.
    // The exactly-once property must fail — and when it does, the
    // give-up path must have faulted *every* messenger in the lost
    // batches (faults + deliveries add up to the injected population),
    // proving multi-messenger loss is accounted, not leaked.
    let failure = run_check(Config::default(), "broken_retransmit_loses_whole_batches", |s| {
        let sc = StarScenario {
            daemons: 3,
            spokes: 9,
            injections: 6,
            seed: s.any_u64(),
            lanes: 2,
            plan: FaultPlan::lossy(0.4),
        };
        let r = run_star(&sc, |cfg| cfg.retransmit.max_attempts = 2)?;
        // Accounting must balance even while delivery fails: every
        // replica either reached its spoke or was faulted on give-up.
        prop_assert!(
            r.seen + r.faults.len() as i64 == (sc.injections * sc.spokes) as i64,
            "lost batch under-accounted: seen={} faults={}",
            r.seen,
            r.faults.len()
        );
        prop_assert!(r.faults.is_empty(), "messengers abandoned: {:?}", r.faults);
        Ok(())
    });
    assert!(
        failure.is_err(),
        "a transport that gives up after one retry must fail exactly-once under batching"
    );
}

// ---- soak ----

/// Lane-contention soak: a large threaded run at lanes=4 with batching
/// and local moves, checking the full delivery count and that the
/// rotating scheduler actually contended (steals observed). Ignored by
/// default; run via `scripts/ci.sh --soak` (or `cargo test -- --ignored`).
#[test]
#[ignore = "soak: long threaded run, exercised by scripts/ci.sh --soak"]
fn soak_lane_contention_threads() {
    use msgr_core::ThreadCluster;
    let daemons = 4usize;
    let nodes = 64usize;
    let walkers = 128usize;
    let passes = 400i64;
    let mut cfg = ClusterConfig::new(daemons);
    cfg.seed = 0xBA7C4;
    cfg.lanes = 4;
    cfg.batch = BatchPolicy::on();
    cfg.local_move = true;
    let mut cluster = ThreadCluster::new(cfg).expect("threads cluster");
    let block = nodes / daemons;
    let mut topo = LogicalTopology::new();
    for i in 0..nodes {
        topo.node(Value::str(format!("p{i}")), DaemonId((i / block) as u16));
    }
    for i in 0..nodes {
        topo.link(
            Value::str(format!("p{i}")),
            Value::str(format!("p{}", (i + 1) % nodes)),
            Value::str("ring"),
            Dir::Forward,
        );
    }
    cluster.build(&topo).expect("build");
    let pid = cluster.register_program(&msgr_lang::compile(WALK).expect("compile"));
    for m in 0..walkers {
        cluster
            .inject_at(&Value::str(format!("p{}", m % nodes)), pid, &[Value::Int(passes)])
            .expect("inject");
    }
    let rep = cluster.run().expect("run");
    assert!(rep.faults.is_empty(), "faults: {:?}", rep.faults);
    let mut visits = 0i64;
    for i in 0..nodes {
        if let Some(Value::Int(v)) =
            cluster.node_var_by_name(&Value::str(format!("p{i}")), "visits")
        {
            visits += v;
        }
    }
    assert_eq!(visits, walkers as i64 * (passes + 1));
    assert!(rep.stats.counter("lane_steals") > 0, "4 lanes never contended");
    assert_eq!(rep.stats.counter("terminated"), walkers as u64);
}
