//! Inter-daemon wire protocol.
//!
//! Everything daemons exchange travels as one of these frames. Messenger
//! state is genuinely serialized (`msgr_vm::wire`) — the header fields
//! are carried alongside for routing without re-decoding. The simulation
//! platform charges network time for [`Wire::wire_bytes`]; the threaded
//! platform moves frames over channels.

use msgr_vm::bytes::{Bytes, BytesMut};
use msgr_vm::wire::{get_f64, get_value, get_varint, put_f64, put_value, put_varint};

use msgr_gvt::CtrlMsg;
use msgr_vm::{LinkInstance, MessengerId, Value, VmError, Vt};

use crate::ids::{DaemonId, NodeRef};
use crate::logical::Orient;

/// A migrating messenger's routing header + payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Migration {
    /// The messenger's id.
    pub id: MessengerId,
    /// Its virtual time (for GVT accounting and Time-Warp keys).
    pub vtime: Vt,
    /// The sender's GVT epoch (Mattern color).
    pub epoch: u64,
    /// True for an anti-messenger (cancels `id`; carries no payload).
    pub anti: bool,
    /// Destination logical node.
    pub to: (DaemonId, NodeRef),
    /// The link instance traversed (sets `$last`); `None` for virtual
    /// hops and injections.
    pub via: Option<LinkInstance>,
    /// Encoded [`msgr_vm::MessengerState`] (empty for anti-messengers).
    pub bytes: Bytes,
    /// Extra payload accounted on the wire when the cluster runs in
    /// carry-code mode (the WAVE-style ablation): the serialized program
    /// size.
    pub code_bytes: u64,
}

/// A remote `create`: instantiate a node (id pre-allocated by the
/// origin), install the connecting link's far half, and deliver the
/// creating messenger into the new node.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateNode {
    /// Pre-allocated id for the new node.
    pub gid: NodeRef,
    /// New node's name (`Value::Null` = unnamed).
    pub name: Value,
    /// The origin endpoint (current node of the creating messenger).
    pub origin: (DaemonId, NodeRef),
    /// Cached name of the origin node.
    pub origin_name: Value,
    /// Shared link instance id.
    pub inst: LinkInstance,
    /// Link name (`Value::Null` = unnamed).
    pub link_name: Value,
    /// Orientation of the link *as stored at the new node*.
    pub orient_at_new: Orient,
    /// The messenger replica that continues in the new node.
    pub messenger: Migration,
}

/// One wire frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Wire {
    /// A messenger migration (or anti-messenger).
    Migrate(Migration),
    /// A remote node creation.
    Create(Box<CreateNode>),
    /// Remove the far half of a link (from a `delete` traversal).
    Unlink {
        /// Node holding the half to remove.
        node: NodeRef,
        /// Link instance.
        inst: LinkInstance,
    },
    /// GVT protocol traffic.
    Gvt(CtrlMsg),
    /// Local prod for the coordinator daemon to begin a GVT round
    /// (issued by the platform's interval timer; never crosses the
    /// network).
    GvtKick,
    /// Reliable-transport envelope: `frame` is the `seq`-th payload frame
    /// on the `src → dst` channel. Only present when the cluster runs
    /// with an active fault plan; the receiver acks every copy and
    /// delivers each sequence number exactly once.
    Data {
        /// The channel's original *sender*. Normally the transmitting
        /// daemon itself; after a failover the successor keeps sending on
        /// the dead daemon's adopted channels with `src` still naming the
        /// dead originator, and the ack routes to whichever daemon
        /// currently owns `src`.
        src: DaemonId,
        /// The channel's original *receiver*: the daemon the frame was
        /// first addressed to. Normally the physical destination; after a
        /// failover it names the dead daemon whose receive channel the
        /// successor has taken over, so sequencing survives re-homing.
        chan: DaemonId,
        /// Per-(sender, channel) sequence number, starting at 1.
        seq: u64,
        /// The enveloped payload frame (never itself `Data` or `Ack`).
        frame: Box<Wire>,
    },
    /// Transport acknowledgement for a [`Wire::Data`] frame. The ack
    /// names the *channel* `(src, chan)` it credits, not the daemons it
    /// physically travels between: it routes to whoever currently owns
    /// `src`.
    Ack {
        /// The acked channel's original sender (mirrors
        /// [`Wire::Data::src`]).
        src: DaemonId,
        /// The acked channel's original receiver (mirrors
        /// [`Wire::Data::chan`]).
        chan: DaemonId,
        /// Highest sequence number delivered with no gaps (cumulative
        /// ack): everything `<= cum` is acknowledged at once.
        cum: u64,
        /// The sequence number whose arrival triggered this ack (may sit
        /// above a gap; acknowledged individually).
        seq: u64,
    },
    /// Failure-detector heartbeat. Deliberately *not* enveloped in
    /// [`Wire::Data`]: a lost heartbeat is itself the failure signal, so
    /// retransmitting one would defeat the detector.
    Beat {
        /// The daemon asserting its liveness.
        from: DaemonId,
        /// Its current membership epoch.
        epoch: u64,
    },
    /// A coalesced flush: several payload frames bound for the same peer
    /// travel under one physical header. Built by the daemon's effect
    /// coalescer when [`crate::BatchPolicy`] allows; the receiver unpacks
    /// and processes the inner frames in order. A batch never contains
    /// `Data`, `Ack`, or another `Batch` (the codec rejects all three),
    /// but a whole batch may itself be enveloped in one `Data` frame —
    /// the reliable transport then acks and retransmits the flush as a
    /// unit, so exactly-once delivery of every inner frame follows from
    /// exactly-once delivery of the envelope.
    Batch(Vec<Wire>),
    /// Membership change: `victim` has been declared permanently dead and
    /// its logical nodes re-homed to its successor. Broadcast by the
    /// successor (reliably — eviction must not be lost) after it restores
    /// the victim's checkpoint.
    Evict {
        /// The daemon declared dead.
        victim: DaemonId,
        /// Membership epoch after the eviction.
        epoch: u64,
        /// Minimum virtual time in the checkpoint the successor restored.
        /// The GVT coordinator substitutes this for the victim's report
        /// in the round the eviction lands in, so GVT can never advance
        /// past the resurrected messengers' restored virtual times.
        floor: Vt,
    },
    /// Consensus traffic for the decentralized control plane: one
    /// single-decree Paxos message (see `msgr_ctrl::quorum`). Like
    /// [`Wire::Beat`], deliberately *not* enveloped: loss is healed by
    /// the proposer re-proposing with a higher ballot on the next
    /// heartbeat tick, and retransmitting a stale ballot would only add
    /// noise the protocol already tolerates.
    Ctrl {
        /// The daemon that sent this message.
        from: DaemonId,
        /// The consensus message.
        msg: msgr_ctrl::PaxosMsg,
    },
    /// Anti-entropy gossip: a digest of the sender's control-plane
    /// knowledge (membership epoch, evictions, code-registry hash, GVT
    /// hint), pushed to one random peer per heartbeat tick. Unenveloped
    /// for the same reason as [`Wire::Beat`]: the next round re-covers
    /// anything a lost frame carried.
    Gossip {
        /// The daemon that sent this digest.
        from: DaemonId,
        /// `true` when this digest answers a push (the pull half);
        /// replies are never replied to, bounding an exchange at two
        /// frames.
        reply: bool,
        /// The sender's summarized knowledge.
        digest: msgr_ctrl::Digest,
    },
    /// Checkpoint replication: `owner`'s `ver`-th snapshot, pushed
    /// write-ahead to one of its `k` successor holders before the
    /// checkpointed flush effects are released. Exempt from fault
    /// injection — the durable-write path is reliable-or-fail-stop,
    /// mirroring a local disk write (see DESIGN.md §12).
    CkptPush {
        /// The daemon whose state is snapshotted.
        owner: DaemonId,
        /// Monotone snapshot version for `owner`.
        ver: u32,
        /// The encoded checkpoint.
        snapshot: Bytes,
    },
    /// A holder's acknowledgement that it durably installed a pushed
    /// replica (accounting/tracing only — the write-ahead path does not
    /// block on it).
    CkptAck {
        /// The snapshot's owner.
        owner: DaemonId,
        /// The holder that installed it.
        holder: DaemonId,
        /// The installed version.
        ver: u32,
    },
}

impl Wire {
    /// A short static label for this frame's kind — the vocabulary trace
    /// consumers and diagnostics use to talk about wire traffic. For
    /// transport envelopes this names the *payload* ("data:migrate"),
    /// since that is what the frame carries.
    pub fn kind(&self) -> &'static str {
        match self {
            Wire::Migrate(_) => "migrate",
            Wire::Create(_) => "create",
            Wire::Unlink { .. } => "unlink",
            Wire::Gvt(_) => "gvt",
            Wire::GvtKick => "gvt_kick",
            Wire::Data { frame, .. } => match frame.as_ref() {
                Wire::Migrate(_) => "data:migrate",
                Wire::Create(_) => "data:create",
                Wire::Unlink { .. } => "data:unlink",
                Wire::Gvt(_) => "data:gvt",
                Wire::Batch(_) => "data:batch",
                _ => "data",
            },
            Wire::Ack { .. } => "ack",
            Wire::Batch(_) => "batch",
            Wire::Beat { .. } => "beat",
            Wire::Evict { .. } => "evict",
            Wire::Ctrl { .. } => "ctrl",
            Wire::Gossip { .. } => "gossip",
            Wire::CkptPush { .. } => "ckpt_push",
            Wire::CkptAck { .. } => "ckpt_ack",
        }
    }

    /// Bytes this frame occupies on the network, given the per-message
    /// header overhead from the cost model.
    pub fn wire_bytes(&self, header: u64) -> u64 {
        match self {
            Wire::Migrate(m) => header + m.bytes.len() as u64 + m.code_bytes,
            Wire::Create(c) => {
                header + 48 + c.messenger.bytes.len() as u64 + c.messenger.code_bytes
            }
            Wire::Unlink { .. } => header + 16,
            Wire::Gvt(msg) => header + msg.wire_bytes(),
            Wire::GvtKick => 0,
            // The envelope rides on the payload frame's existing header:
            // only src + chan + seq are extra bytes.
            Wire::Data { frame, .. } => frame.wire_bytes(header) + 14,
            Wire::Ack { .. } => header + 22,
            // One shared physical header for the whole flush; each inner
            // frame pays only 4 bytes of framing instead of `header`.
            Wire::Batch(frames) => header + 2 + frames.iter().map(|f| f.wire_bytes(4)).sum::<u64>(),
            Wire::Beat { .. } => header + 10,
            Wire::Evict { .. } => header + 18,
            Wire::Ctrl { msg, .. } => {
                let payload = match msg {
                    msgr_ctrl::PaxosMsg::Prepare { .. } | msgr_ctrl::PaxosMsg::Learn { .. } => 15,
                    msgr_ctrl::PaxosMsg::Promise { accepted: None, .. } => 16,
                    msgr_ctrl::PaxosMsg::Promise { accepted: Some(_), .. } => 32,
                    msgr_ctrl::PaxosMsg::AcceptReq { .. }
                    | msgr_ctrl::PaxosMsg::Accepted { .. } => 23,
                };
                header + 2 + payload
            }
            Wire::Gossip { digest, .. } => header + 3 + 20 + digest.evictions.len() as u64 * 10,
            Wire::CkptPush { snapshot, .. } => header + 6 + snapshot.len() as u64,
            Wire::CkptAck { .. } => header + 8,
        }
    }
}

// ---- frame codec -----------------------------------------------------------
//
// The threaded platform moves `Wire` values over in-process channels and
// the simulation platform only *accounts* their size, so neither needs a
// byte encoding to function. The codec exists so the frame format is
// pinned down (and property-tested) like the messenger format in
// `msgr_vm::wire`: tagged fields, LEB128 varints, strict validation —
// a truncated or corrupted buffer yields `VmError::Decode`, never a
// panic. It reuses the vm codec's primitives so both layers share one
// set of encodings.

fn err(msg: &str) -> VmError {
    VmError::Decode(msg.to_string())
}

fn get_u8(buf: &mut Bytes, what: &str) -> Result<u8, VmError> {
    if !buf.has_remaining() {
        return Err(err(&format!("truncated {what}")));
    }
    Ok(buf.get_u8())
}

/// A varint that must fit in 16 bits (daemon ids, node creators).
/// Silently truncating with `as u16` would let a corrupted high bit
/// decode to the *same* value — the strict-validation policy forbids
/// accepting any byte sequence the encoder could not have produced.
fn get_u16_varint(buf: &mut Bytes, what: &str) -> Result<u16, VmError> {
    let v = get_varint(buf)?;
    u16::try_from(v).map_err(|_| err(&format!("{what} {v} overflows u16")))
}

/// A varint that must fit in 32 bits (checkpoint versions). Same
/// strictness rationale as [`get_u16_varint`].
fn get_u32_varint(buf: &mut Bytes, what: &str) -> Result<u32, VmError> {
    let v = get_varint(buf)?;
    u32::try_from(v).map_err(|_| err(&format!("{what} {v} overflows u32")))
}

pub(crate) fn put_vt(buf: &mut BytesMut, vt: Vt) {
    put_f64(buf, vt.as_f64());
}

pub(crate) fn get_vt(buf: &mut Bytes) -> Result<Vt, VmError> {
    let t = get_f64(buf)?;
    if t.is_nan() {
        return Err(err("NaN virtual time"));
    }
    Ok(Vt::new(t))
}

fn put_endpoint(buf: &mut BytesMut, (d, n): (DaemonId, NodeRef)) {
    put_varint(buf, d.0 as u64);
    put_node_ref(buf, n);
}

fn get_endpoint(buf: &mut Bytes) -> Result<(DaemonId, NodeRef), VmError> {
    let d = DaemonId(get_u16_varint(buf, "endpoint daemon")?);
    Ok((d, get_node_ref(buf)?))
}

pub(crate) fn put_node_ref(buf: &mut BytesMut, n: NodeRef) {
    put_varint(buf, n.creator as u64);
    put_varint(buf, n.seq);
}

pub(crate) fn get_node_ref(buf: &mut Bytes) -> Result<NodeRef, VmError> {
    let creator = get_u16_varint(buf, "node creator")?;
    let seq = get_varint(buf)?;
    Ok(NodeRef { creator, seq })
}

fn put_migration(buf: &mut BytesMut, m: &Migration) {
    put_varint(buf, m.id.0);
    put_vt(buf, m.vtime);
    put_varint(buf, m.epoch);
    buf.put_u8(m.anti as u8);
    put_endpoint(buf, m.to);
    match m.via {
        None => buf.put_u8(0),
        Some(inst) => {
            buf.put_u8(1);
            put_varint(buf, inst.0);
        }
    }
    put_varint(buf, m.bytes.len() as u64);
    buf.put_slice(&m.bytes);
    put_varint(buf, m.code_bytes);
}

fn get_migration(buf: &mut Bytes) -> Result<Migration, VmError> {
    let id = MessengerId(get_varint(buf)?);
    let vtime = get_vt(buf)?;
    let epoch = get_varint(buf)?;
    let anti = match get_u8(buf, "anti flag")? {
        0 => false,
        1 => true,
        t => return Err(err(&format!("bad anti flag {t}"))),
    };
    let to = get_endpoint(buf)?;
    let via = match get_u8(buf, "via flag")? {
        0 => None,
        1 => Some(LinkInstance(get_varint(buf)?)),
        t => return Err(err(&format!("bad via flag {t}"))),
    };
    let n = get_varint(buf)? as usize;
    if buf.remaining() < n {
        return Err(err("truncated migration payload"));
    }
    let bytes = buf.copy_to_bytes(n);
    let code_bytes = get_varint(buf)?;
    Ok(Migration { id, vtime, epoch, anti, to, via, bytes, code_bytes })
}

pub(crate) fn put_orient(buf: &mut BytesMut, o: Orient) {
    buf.put_u8(match o {
        Orient::Out => 0,
        Orient::In => 1,
        Orient::Undirected => 2,
    });
}

pub(crate) fn get_orient(buf: &mut Bytes) -> Result<Orient, VmError> {
    Ok(match get_u8(buf, "orient")? {
        0 => Orient::Out,
        1 => Orient::In,
        2 => Orient::Undirected,
        t => return Err(err(&format!("bad orient {t}"))),
    })
}

fn put_ctrl(buf: &mut BytesMut, msg: &CtrlMsg) {
    match msg {
        CtrlMsg::Cut { round } => {
            buf.put_u8(0);
            put_varint(buf, *round);
        }
        CtrlMsg::CutAck { round, daemon, lmin, prev_sent, prev_recv, late_min, cur_sent_min } => {
            buf.put_u8(1);
            put_varint(buf, *round);
            put_varint(buf, *daemon as u64);
            put_vt(buf, *lmin);
            put_varint(buf, *prev_sent);
            put_varint(buf, *prev_recv);
            put_vt(buf, *late_min);
            put_vt(buf, *cur_sent_min);
        }
        CtrlMsg::Poll { round } => {
            buf.put_u8(2);
            put_varint(buf, *round);
        }
        CtrlMsg::PollAck { round, daemon, lmin, prev_recv, late_min, cur_sent_min } => {
            buf.put_u8(3);
            put_varint(buf, *round);
            put_varint(buf, *daemon as u64);
            put_vt(buf, *lmin);
            put_varint(buf, *prev_recv);
            put_vt(buf, *late_min);
            put_vt(buf, *cur_sent_min);
        }
        CtrlMsg::Advance { gvt } => {
            buf.put_u8(4);
            put_vt(buf, *gvt);
        }
    }
}

fn get_ctrl(buf: &mut Bytes) -> Result<CtrlMsg, VmError> {
    Ok(match get_u8(buf, "ctrl tag")? {
        0 => CtrlMsg::Cut { round: get_varint(buf)? },
        1 => CtrlMsg::CutAck {
            round: get_varint(buf)?,
            daemon: get_u16_varint(buf, "ctrl daemon")?,
            lmin: get_vt(buf)?,
            prev_sent: get_varint(buf)?,
            prev_recv: get_varint(buf)?,
            late_min: get_vt(buf)?,
            cur_sent_min: get_vt(buf)?,
        },
        2 => CtrlMsg::Poll { round: get_varint(buf)? },
        3 => CtrlMsg::PollAck {
            round: get_varint(buf)?,
            daemon: get_u16_varint(buf, "ctrl daemon")?,
            lmin: get_vt(buf)?,
            prev_recv: get_varint(buf)?,
            late_min: get_vt(buf)?,
            cur_sent_min: get_vt(buf)?,
        },
        4 => CtrlMsg::Advance { gvt: get_vt(buf)? },
        t => return Err(err(&format!("unknown ctrl tag {t}"))),
    })
}

/// Length-prefix a control-plane payload written by the `msgr_ctrl`
/// codec, so the strict frame decoder can require exact consumption.
fn put_ctrl_payload(buf: &mut BytesMut, write: impl FnOnce(&mut Vec<u8>)) {
    let mut tmp = Vec::with_capacity(32);
    write(&mut tmp);
    put_varint(buf, tmp.len() as u64);
    buf.put_slice(&tmp);
}

fn get_ctrl_payload<T>(
    buf: &mut Bytes,
    what: &str,
    read: impl FnOnce(&mut &[u8]) -> Result<T, msgr_ctrl::codec::CodecError>,
) -> Result<T, VmError> {
    let n = get_varint(buf)? as usize;
    if buf.remaining() < n {
        return Err(err(&format!("truncated {what} payload")));
    }
    let payload = buf.copy_to_bytes(n);
    let mut r: &[u8] = &payload;
    let v = read(&mut r).map_err(|e| err(&format!("{what}: {e}")))?;
    if !r.is_empty() {
        return Err(err(&format!("trailing bytes in {what} payload")));
    }
    Ok(v)
}

fn put_frame(buf: &mut BytesMut, w: &Wire) {
    match w {
        Wire::Migrate(m) => {
            buf.put_u8(0);
            put_migration(buf, m);
        }
        Wire::Create(c) => {
            buf.put_u8(1);
            put_node_ref(buf, c.gid);
            put_value(buf, &c.name);
            put_endpoint(buf, c.origin);
            put_value(buf, &c.origin_name);
            put_varint(buf, c.inst.0);
            put_value(buf, &c.link_name);
            put_orient(buf, c.orient_at_new);
            put_migration(buf, &c.messenger);
        }
        Wire::Unlink { node, inst } => {
            buf.put_u8(2);
            put_node_ref(buf, *node);
            put_varint(buf, inst.0);
        }
        Wire::Gvt(msg) => {
            buf.put_u8(3);
            put_ctrl(buf, msg);
        }
        Wire::GvtKick => buf.put_u8(4),
        Wire::Data { src, chan, seq, frame } => {
            buf.put_u8(5);
            put_varint(buf, src.0 as u64);
            put_varint(buf, chan.0 as u64);
            put_varint(buf, *seq);
            put_frame(buf, frame);
        }
        Wire::Ack { src, chan, cum, seq } => {
            buf.put_u8(6);
            put_varint(buf, src.0 as u64);
            put_varint(buf, chan.0 as u64);
            put_varint(buf, *cum);
            put_varint(buf, *seq);
        }
        Wire::Beat { from, epoch } => {
            buf.put_u8(7);
            put_varint(buf, from.0 as u64);
            put_varint(buf, *epoch);
        }
        Wire::Evict { victim, epoch, floor } => {
            buf.put_u8(8);
            put_varint(buf, victim.0 as u64);
            put_varint(buf, *epoch);
            put_vt(buf, *floor);
        }
        Wire::Batch(frames) => {
            buf.put_u8(9);
            put_varint(buf, frames.len() as u64);
            for f in frames {
                put_frame(buf, f);
            }
        }
        Wire::Ctrl { from, msg } => {
            buf.put_u8(10);
            put_varint(buf, from.0 as u64);
            put_ctrl_payload(buf, |out| msgr_ctrl::codec::put_paxos(out, msg));
        }
        Wire::Gossip { from, reply, digest } => {
            buf.put_u8(11);
            put_varint(buf, from.0 as u64);
            buf.put_u8(*reply as u8);
            put_ctrl_payload(buf, |out| msgr_ctrl::codec::put_digest(out, digest));
        }
        Wire::CkptPush { owner, ver, snapshot } => {
            buf.put_u8(12);
            put_varint(buf, owner.0 as u64);
            put_varint(buf, *ver as u64);
            put_varint(buf, snapshot.len() as u64);
            buf.put_slice(snapshot);
        }
        Wire::CkptAck { owner, holder, ver } => {
            buf.put_u8(13);
            put_varint(buf, owner.0 as u64);
            put_varint(buf, holder.0 as u64);
            put_varint(buf, *ver as u64);
        }
    }
}

/// Where in the frame tree the decoder currently sits — transport frames
/// nest one level at most: `Data(Batch(payload*))` is the deepest legal
/// shape.
#[derive(Clone, Copy, PartialEq)]
enum Ctx {
    /// Top-level frame: anything goes.
    Top,
    /// Inside a `Data` envelope: no `Data`, no `Ack`.
    InData,
    /// Inside a `Batch`: no `Data`, no `Ack`, no `Batch`.
    InBatch,
}

fn get_frame(buf: &mut Bytes, ctx: Ctx) -> Result<Wire, VmError> {
    Ok(match get_u8(buf, "frame tag")? {
        0 => Wire::Migrate(get_migration(buf)?),
        1 => {
            let gid = get_node_ref(buf)?;
            let name = get_value(buf)?;
            let origin = get_endpoint(buf)?;
            let origin_name = get_value(buf)?;
            let inst = LinkInstance(get_varint(buf)?);
            let link_name = get_value(buf)?;
            let orient_at_new = get_orient(buf)?;
            let messenger = get_migration(buf)?;
            Wire::Create(Box::new(CreateNode {
                gid,
                name,
                origin,
                origin_name,
                inst,
                link_name,
                orient_at_new,
                messenger,
            }))
        }
        2 => {
            let node = get_node_ref(buf)?;
            let inst = LinkInstance(get_varint(buf)?);
            Wire::Unlink { node, inst }
        }
        3 => Wire::Gvt(get_ctrl(buf)?),
        4 => Wire::GvtKick,
        5 => {
            if ctx != Ctx::Top {
                return Err(err("nested transport envelope"));
            }
            let src = DaemonId(get_u16_varint(buf, "frame src")?);
            let chan = DaemonId(get_u16_varint(buf, "frame chan")?);
            let seq = get_varint(buf)?;
            let frame = Box::new(get_frame(buf, Ctx::InData)?);
            Wire::Data { src, chan, seq, frame }
        }
        6 => {
            if ctx != Ctx::Top {
                return Err(err("ack inside transport envelope"));
            }
            let src = DaemonId(get_u16_varint(buf, "frame src")?);
            let chan = DaemonId(get_u16_varint(buf, "frame chan")?);
            let cum = get_varint(buf)?;
            let seq = get_varint(buf)?;
            Wire::Ack { src, chan, cum, seq }
        }
        7 => {
            let from = DaemonId(get_u16_varint(buf, "beat origin")?);
            let epoch = get_varint(buf)?;
            Wire::Beat { from, epoch }
        }
        8 => {
            let victim = DaemonId(get_u16_varint(buf, "evict victim")?);
            let epoch = get_varint(buf)?;
            let floor = get_vt(buf)?;
            Wire::Evict { victim, epoch, floor }
        }
        9 => {
            if ctx == Ctx::InBatch {
                return Err(err("batch inside batch"));
            }
            let n = get_varint(buf)? as usize;
            if n < 2 {
                return Err(err("batch of fewer than two frames"));
            }
            let mut frames = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                frames.push(get_frame(buf, Ctx::InBatch)?);
            }
            Wire::Batch(frames)
        }
        10 => {
            let from = DaemonId(get_u16_varint(buf, "ctrl origin")?);
            let msg = get_ctrl_payload(buf, "ctrl", msgr_ctrl::codec::get_paxos)?;
            Wire::Ctrl { from, msg }
        }
        11 => {
            let from = DaemonId(get_u16_varint(buf, "gossip origin")?);
            let reply = match get_u8(buf, "gossip reply flag")? {
                0 => false,
                1 => true,
                t => return Err(err(&format!("bad gossip reply flag {t}"))),
            };
            let digest = get_ctrl_payload(buf, "gossip", msgr_ctrl::codec::get_digest)?;
            Wire::Gossip { from, reply, digest }
        }
        12 => {
            let owner = DaemonId(get_u16_varint(buf, "ckpt owner")?);
            let ver = get_u32_varint(buf, "ckpt version")?;
            let n = get_varint(buf)? as usize;
            if buf.remaining() < n {
                return Err(err("truncated checkpoint snapshot"));
            }
            let snapshot = buf.copy_to_bytes(n);
            Wire::CkptPush { owner, ver, snapshot }
        }
        13 => {
            let owner = DaemonId(get_u16_varint(buf, "ckpt owner")?);
            let holder = DaemonId(get_u16_varint(buf, "ckpt holder")?);
            let ver = get_u32_varint(buf, "ckpt version")?;
            Wire::CkptAck { owner, holder, ver }
        }
        t => return Err(err(&format!("unknown frame tag {t}"))),
    })
}

/// Serialize a frame.
pub fn encode_frame(w: &Wire) -> Bytes {
    let mut buf = BytesMut::with_capacity(32);
    put_frame(&mut buf, w);
    buf.freeze()
}

/// Decode a frame.
///
/// # Errors
///
/// [`VmError::Decode`] on any malformed input, including trailing bytes,
/// transport frames nested inside a [`Wire::Data`] envelope, and
/// `Data`/`Ack`/`Batch` frames inside a [`Wire::Batch`].
pub fn decode_frame(mut buf: Bytes) -> Result<Wire, VmError> {
    let w = get_frame(&mut buf, Ctx::Top)?;
    if buf.has_remaining() {
        return Err(err("trailing bytes after frame"));
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mig(payload: usize, code: u64) -> Migration {
        Migration {
            id: MessengerId(1),
            vtime: Vt::ZERO,
            epoch: 0,
            anti: false,
            to: (DaemonId(1), NodeRef::new(0, 0)),
            via: None,
            bytes: Bytes::from(vec![0u8; payload]),
            code_bytes: code,
        }
    }

    #[test]
    fn migrate_bytes_include_payload_and_code() {
        assert_eq!(Wire::Migrate(mig(100, 0)).wire_bytes(64), 164);
        assert_eq!(Wire::Migrate(mig(100, 500)).wire_bytes(64), 664);
    }

    #[test]
    fn kind_labels_name_the_payload() {
        assert_eq!(Wire::Migrate(mig(1, 0)).kind(), "migrate");
        assert_eq!(Wire::GvtKick.kind(), "gvt_kick");
        let data = Wire::Data {
            src: DaemonId(0),
            chan: DaemonId(1),
            seq: 1,
            frame: Box::new(Wire::Migrate(mig(1, 0))),
        };
        assert_eq!(data.kind(), "data:migrate");
        let ack = Wire::Ack { src: DaemonId(0), chan: DaemonId(1), cum: 1, seq: 1 };
        assert_eq!(ack.kind(), "ack");
    }

    #[test]
    fn control_frames_are_small() {
        let unlink = Wire::Unlink { node: NodeRef::new(0, 0), inst: LinkInstance(1) };
        assert!(unlink.wire_bytes(64) < 128);
        let gvt = Wire::Gvt(CtrlMsg::Cut { round: 3 });
        assert!(gvt.wire_bytes(64) < 128);
    }

    #[test]
    fn create_bytes_include_messenger() {
        let c = CreateNode {
            gid: NodeRef::new(0, 1),
            name: Value::str("a"),
            origin: (DaemonId(0), NodeRef::new(0, 0)),
            origin_name: Value::str("init"),
            inst: LinkInstance(9),
            link_name: Value::Null,
            orient_at_new: Orient::In,
            messenger: mig(200, 0),
        };
        assert_eq!(Wire::Create(Box::new(c)).wire_bytes(64), 64 + 48 + 200);
    }

    fn sample_frames() -> Vec<Wire> {
        let mut m = mig(5, 7);
        m.via = Some(LinkInstance(99));
        m.anti = true;
        vec![
            Wire::Migrate(mig(0, 0)),
            Wire::Migrate(m),
            Wire::Create(Box::new(CreateNode {
                gid: NodeRef::new(3, 11),
                name: Value::str("worker"),
                origin: (DaemonId(2), NodeRef::new(2, 4)),
                origin_name: Value::Null,
                inst: LinkInstance(17),
                link_name: Value::str("ring"),
                orient_at_new: Orient::Undirected,
                messenger: mig(32, 100),
            })),
            Wire::Unlink { node: NodeRef::new(1, 2), inst: LinkInstance(u64::MAX) },
            Wire::Gvt(CtrlMsg::Cut { round: 9 }),
            Wire::Gvt(CtrlMsg::CutAck {
                round: 9,
                daemon: 3,
                lmin: Vt::new(1.5),
                prev_sent: 10,
                prev_recv: 8,
                late_min: Vt::new(f64::INFINITY),
                cur_sent_min: Vt::new(2.25),
            }),
            Wire::Gvt(CtrlMsg::Poll { round: 10 }),
            Wire::Gvt(CtrlMsg::PollAck {
                round: 10,
                daemon: 0,
                lmin: Vt::new(0.0),
                prev_recv: 10,
                late_min: Vt::new(3.0),
                cur_sent_min: Vt::new(f64::INFINITY),
            }),
            Wire::Gvt(CtrlMsg::Advance { gvt: Vt::new(4.125) }),
            Wire::GvtKick,
            Wire::Data {
                src: DaemonId(3),
                chan: DaemonId(5),
                seq: 1,
                frame: Box::new(Wire::Migrate(mig(16, 0))),
            },
            Wire::Data {
                src: DaemonId(0),
                chan: DaemonId(0),
                seq: u64::MAX,
                frame: Box::new(Wire::Gvt(CtrlMsg::Poll { round: 2 })),
            },
            Wire::Ack { src: DaemonId(7), chan: DaemonId(7), cum: 41, seq: 44 },
            Wire::Beat { from: DaemonId(4), epoch: 2 },
            Wire::Evict { victim: DaemonId(1), epoch: 3, floor: Vt::new(7.5) },
            Wire::Evict { victim: DaemonId(6), epoch: 1, floor: Vt::INFINITY },
            Wire::Batch(vec![
                Wire::Migrate(mig(16, 0)),
                Wire::Unlink { node: NodeRef::new(1, 2), inst: LinkInstance(3) },
                Wire::Gvt(CtrlMsg::Cut { round: 1 }),
            ]),
            Wire::Data {
                src: DaemonId(2),
                chan: DaemonId(3),
                seq: 7,
                frame: Box::new(Wire::Batch(vec![
                    Wire::Migrate(mig(8, 0)),
                    Wire::Migrate(mig(9, 0)),
                ])),
            },
            Wire::Ctrl {
                from: DaemonId(1),
                msg: msgr_ctrl::PaxosMsg::Prepare {
                    inst: msgr_ctrl::InstanceId { victim: 2, seq: 0 },
                    ballot: msgr_ctrl::ballot(1, 1),
                },
            },
            Wire::Ctrl {
                from: DaemonId(3),
                msg: msgr_ctrl::PaxosMsg::Promise {
                    inst: msgr_ctrl::InstanceId { victim: 2, seq: 1 },
                    ballot: msgr_ctrl::ballot(4, 0),
                    accepted: Some((
                        msgr_ctrl::ballot(2, 3),
                        msgr_ctrl::Decree { victim: 2, successor: 3, epoch: 5 },
                    )),
                },
            },
            Wire::Ctrl {
                from: DaemonId(0),
                msg: msgr_ctrl::PaxosMsg::Learn {
                    inst: msgr_ctrl::InstanceId { victim: 5, seq: 0 },
                    decree: msgr_ctrl::Decree { victim: 5, successor: 6, epoch: 1 },
                },
            },
            Wire::Gossip {
                from: DaemonId(2),
                reply: false,
                digest: msgr_ctrl::Digest {
                    mem_epoch: 0,
                    evictions: vec![],
                    code_hash: 0x9E37_79B9,
                    gvt: 0.0,
                },
            },
            Wire::Gossip {
                from: DaemonId(6),
                reply: true,
                digest: msgr_ctrl::Digest {
                    mem_epoch: 2,
                    evictions: vec![(1, 3.5), (4, f64::INFINITY)],
                    code_hash: u64::MAX,
                    gvt: 12.25,
                },
            },
            Wire::CkptPush { owner: DaemonId(3), ver: 7, snapshot: Bytes::from(vec![9u8; 40]) },
            Wire::CkptPush { owner: DaemonId(0), ver: 0, snapshot: Bytes::new() },
            Wire::CkptAck { owner: DaemonId(3), holder: DaemonId(4), ver: 7 },
        ]
    }

    #[test]
    fn data_envelope_adds_fixed_overhead() {
        let inner = Wire::Migrate(mig(100, 0));
        let enveloped = Wire::Data {
            src: DaemonId(0),
            chan: DaemonId(1),
            seq: 9,
            frame: Box::new(inner.clone()),
        };
        assert_eq!(enveloped.wire_bytes(64), inner.wire_bytes(64) + 14);
        let ack = Wire::Ack { src: DaemonId(0), chan: DaemonId(0), cum: 1, seq: 1 };
        assert!(ack.wire_bytes(64) < 128, "acks must stay cheap");
        let beat = Wire::Beat { from: DaemonId(0), epoch: 0 };
        assert!(beat.wire_bytes(64) < 128, "heartbeats must stay cheap");
    }

    #[test]
    fn nested_transport_frames_rejected() {
        let inner = Wire::Data {
            src: DaemonId(0),
            chan: DaemonId(1),
            seq: 1,
            frame: Box::new(Wire::GvtKick),
        };
        let outer =
            Wire::Data { src: DaemonId(1), chan: DaemonId(0), seq: 2, frame: Box::new(inner) };
        assert!(decode_frame(encode_frame(&outer)).is_err(), "Data in Data must not decode");
        let ack_in_data = Wire::Data {
            src: DaemonId(1),
            chan: DaemonId(0),
            seq: 2,
            frame: Box::new(Wire::Ack { src: DaemonId(0), chan: DaemonId(1), cum: 0, seq: 0 }),
        };
        assert!(decode_frame(encode_frame(&ack_in_data)).is_err(), "Ack in Data must not decode");
    }

    #[test]
    fn batch_shares_one_header() {
        let a = Wire::Migrate(mig(100, 0));
        let b = Wire::Unlink { node: NodeRef::new(0, 0), inst: LinkInstance(1) };
        let batch = Wire::Batch(vec![a.clone(), b.clone()]);
        let separate = a.wire_bytes(64) + b.wire_bytes(64);
        assert!(batch.wire_bytes(64) < separate, "a batch must save header bytes");
        assert_eq!(batch.kind(), "batch");
        let data =
            Wire::Data { src: DaemonId(0), chan: DaemonId(1), seq: 1, frame: Box::new(batch) };
        assert_eq!(data.kind(), "data:batch");
    }

    #[test]
    fn batch_nesting_rejected() {
        let leaf = Wire::Migrate(mig(1, 0));
        for bad in [
            Wire::Batch(vec![leaf.clone(), Wire::Batch(vec![leaf.clone(), leaf.clone()])]),
            Wire::Batch(vec![
                leaf.clone(),
                Wire::Data {
                    src: DaemonId(0),
                    chan: DaemonId(1),
                    seq: 1,
                    frame: Box::new(leaf.clone()),
                },
            ]),
            Wire::Batch(vec![
                leaf.clone(),
                Wire::Ack { src: DaemonId(0), chan: DaemonId(1), cum: 0, seq: 0 },
            ]),
        ] {
            assert!(decode_frame(encode_frame(&bad)).is_err(), "{bad:?} must not decode");
        }
        // Undersized batches are malformed too: the coalescer never emits
        // a batch that saves nothing.
        let single = Wire::Batch(vec![leaf.clone()]);
        assert!(decode_frame(encode_frame(&single)).is_err(), "1-frame batch must not decode");
    }

    #[test]
    fn frame_codec_round_trips_every_variant() {
        for w in sample_frames() {
            let bytes = encode_frame(&w);
            let back = decode_frame(bytes).unwrap();
            assert_eq!(back, w, "round trip failed for {w:?}");
        }
    }

    #[test]
    fn frame_truncation_never_panics() {
        for w in sample_frames() {
            let full = encode_frame(&w);
            for cut in 0..full.len() {
                assert!(decode_frame(full.slice(..cut)).is_err(), "cut {cut} of {w:?} decoded");
            }
        }
    }

    #[test]
    fn control_plane_frames_stay_cheap() {
        let ctrl = Wire::Ctrl {
            from: DaemonId(1),
            msg: msgr_ctrl::PaxosMsg::Prepare {
                inst: msgr_ctrl::InstanceId { victim: 2, seq: 0 },
                ballot: msgr_ctrl::ballot(1, 1),
            },
        };
        assert!(ctrl.wire_bytes(64) < 128, "consensus frames must stay cheap");
        let gossip = Wire::Gossip {
            from: DaemonId(0),
            reply: false,
            digest: msgr_ctrl::Digest {
                mem_epoch: 1,
                evictions: vec![(1, 0.5)],
                code_hash: 1,
                gvt: 0.0,
            },
        };
        assert!(gossip.wire_bytes(64) < 128, "gossip digests must stay cheap");
        let ack = Wire::CkptAck { owner: DaemonId(0), holder: DaemonId(1), ver: 1 };
        assert!(ack.wire_bytes(64) < 128, "replica acks must stay cheap");
        let push =
            Wire::CkptPush { owner: DaemonId(0), ver: 1, snapshot: Bytes::from(vec![0; 100]) };
        assert!(push.wire_bytes(64) >= 164, "pushes account the snapshot bytes");
    }

    #[test]
    fn ctrl_payload_trailing_bytes_rejected() {
        let msg = msgr_ctrl::PaxosMsg::Learn {
            inst: msgr_ctrl::InstanceId { victim: 1, seq: 0 },
            decree: msgr_ctrl::Decree { victim: 1, successor: 2, epoch: 1 },
        };
        let mut payload = Vec::new();
        msgr_ctrl::codec::put_paxos(&mut payload, &msg);
        let mut raw = BytesMut::new();
        raw.put_u8(10);
        put_varint(&mut raw, 1); // from
        put_varint(&mut raw, payload.len() as u64 + 1);
        raw.put_slice(&payload);
        raw.put_u8(0); // a byte the ctrl codec cannot account for
        assert!(decode_frame(raw.freeze()).is_err(), "slack inside the payload must not decode");
    }

    #[test]
    fn frame_trailing_garbage_rejected() {
        let mut raw = encode_frame(&Wire::GvtKick).to_vec();
        raw.push(0);
        assert!(decode_frame(Bytes::from(raw)).is_err());
    }
}
