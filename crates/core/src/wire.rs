//! Inter-daemon wire protocol.
//!
//! Everything daemons exchange travels as one of these frames. Messenger
//! state is genuinely serialized (`msgr_vm::wire`) — the header fields
//! are carried alongside for routing without re-decoding. The simulation
//! platform charges network time for [`Wire::wire_bytes`]; the threaded
//! platform moves frames over channels.

use bytes::Bytes;

use msgr_gvt::CtrlMsg;
use msgr_vm::{LinkInstance, MessengerId, Value, Vt};

use crate::ids::{DaemonId, NodeRef};
use crate::logical::Orient;

/// A migrating messenger's routing header + payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Migration {
    /// The messenger's id.
    pub id: MessengerId,
    /// Its virtual time (for GVT accounting and Time-Warp keys).
    pub vtime: Vt,
    /// The sender's GVT epoch (Mattern color).
    pub epoch: u64,
    /// True for an anti-messenger (cancels `id`; carries no payload).
    pub anti: bool,
    /// Destination logical node.
    pub to: (DaemonId, NodeRef),
    /// The link instance traversed (sets `$last`); `None` for virtual
    /// hops and injections.
    pub via: Option<LinkInstance>,
    /// Encoded [`msgr_vm::MessengerState`] (empty for anti-messengers).
    pub bytes: Bytes,
    /// Extra payload accounted on the wire when the cluster runs in
    /// carry-code mode (the WAVE-style ablation): the serialized program
    /// size.
    pub code_bytes: u64,
}

/// A remote `create`: instantiate a node (id pre-allocated by the
/// origin), install the connecting link's far half, and deliver the
/// creating messenger into the new node.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateNode {
    /// Pre-allocated id for the new node.
    pub gid: NodeRef,
    /// New node's name (`Value::Null` = unnamed).
    pub name: Value,
    /// The origin endpoint (current node of the creating messenger).
    pub origin: (DaemonId, NodeRef),
    /// Cached name of the origin node.
    pub origin_name: Value,
    /// Shared link instance id.
    pub inst: LinkInstance,
    /// Link name (`Value::Null` = unnamed).
    pub link_name: Value,
    /// Orientation of the link *as stored at the new node*.
    pub orient_at_new: Orient,
    /// The messenger replica that continues in the new node.
    pub messenger: Migration,
}

/// One wire frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Wire {
    /// A messenger migration (or anti-messenger).
    Migrate(Migration),
    /// A remote node creation.
    Create(Box<CreateNode>),
    /// Remove the far half of a link (from a `delete` traversal).
    Unlink {
        /// Node holding the half to remove.
        node: NodeRef,
        /// Link instance.
        inst: LinkInstance,
    },
    /// GVT protocol traffic.
    Gvt(CtrlMsg),
    /// Local prod for the coordinator daemon to begin a GVT round
    /// (issued by the platform's interval timer; never crosses the
    /// network).
    GvtKick,
}

impl Wire {
    /// Bytes this frame occupies on the network, given the per-message
    /// header overhead from the cost model.
    pub fn wire_bytes(&self, header: u64) -> u64 {
        match self {
            Wire::Migrate(m) => header + m.bytes.len() as u64 + m.code_bytes,
            Wire::Create(c) => {
                header + 48 + c.messenger.bytes.len() as u64 + c.messenger.code_bytes
            }
            Wire::Unlink { .. } => header + 16,
            Wire::Gvt(msg) => header + msg.wire_bytes(),
            Wire::GvtKick => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mig(payload: usize, code: u64) -> Migration {
        Migration {
            id: MessengerId(1),
            vtime: Vt::ZERO,
            epoch: 0,
            anti: false,
            to: (DaemonId(1), NodeRef::new(0, 0)),
            via: None,
            bytes: Bytes::from(vec![0u8; payload]),
            code_bytes: code,
        }
    }

    #[test]
    fn migrate_bytes_include_payload_and_code() {
        assert_eq!(Wire::Migrate(mig(100, 0)).wire_bytes(64), 164);
        assert_eq!(Wire::Migrate(mig(100, 500)).wire_bytes(64), 664);
    }

    #[test]
    fn control_frames_are_small() {
        let unlink = Wire::Unlink { node: NodeRef::new(0, 0), inst: LinkInstance(1) };
        assert!(unlink.wire_bytes(64) < 128);
        let gvt = Wire::Gvt(CtrlMsg::Cut { round: 3 });
        assert!(gvt.wire_bytes(64) < 128);
    }

    #[test]
    fn create_bytes_include_messenger() {
        let c = CreateNode {
            gid: NodeRef::new(0, 1),
            name: Value::str("a"),
            origin: (DaemonId(0), NodeRef::new(0, 0)),
            origin_name: Value::str("init"),
            inst: LinkInstance(9),
            link_name: Value::Null,
            orient_at_new: Orient::In,
            messenger: mig(200, 0),
        };
        assert_eq!(Wire::Create(Box::new(c)).wire_bytes(64), 64 + 48 + 200);
    }
}
