//! The MESSENGERS daemon: receives messengers, interprets them, and
//! forwards them — platform-independent core logic.
//!
//! A daemon owns the logical nodes mapped to its host, a ready queue of
//! arrived messengers, and a virtual-time queue of suspended ones. The
//! platform (simulated or threaded) feeds it [`Wire`] frames via
//! [`Daemon::on_wire`] and asks it to execute one non-preemptive segment
//! at a time via [`Daemon::run_segment`]; both return the reference-CPU
//! cost of the work so the simulation can charge it to the host.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use msgr_vm::bytes::Bytes;
use std::sync::RwLock;

use std::collections::BTreeMap;

use msgr_gvt::{
    Coordinator, CoordinatorAction, CtrlMsg, Participant, PendingQueue, SentRef, TwEntry, TwNode,
};
use msgr_sim::{DetRng, SimTime, Stats};
use msgr_vm::{
    interp, wire as vmwire, Dir, EvalCreate, EvalHop, EvalLink, LinkInstance, MessengerId,
    MessengerState, NativeCtx, NativeRegistry, NetVar, Program, ProgramId, Value, VmError, Vt,
    Yield,
};

use crate::config::{ClusterConfig, RetransmitPolicy, VtMode};
use crate::ids::{DaemonId, NodeRef};
use crate::logical::{LinkRec, LogicalNode, Orient};
use crate::topology::DaemonTopology;
use crate::wire::{CreateNode, Migration, Wire};

/// The cluster-wide code registry — the paper's shared file system: "code
/// does not need to be carried between nodes but can be loaded as
/// necessary" (§4).
///
/// This is also the trust boundary for mobile code: every program runs
/// through the `msgr-analyze` bytecode verifier at registration.
/// Programs that fail are *quarantined* — they keep their content id
/// (so a messenger referencing one can exist, and its refusal is
/// observable in-run), but no daemon will ever execute them.
#[derive(Clone, Default)]
pub struct CodeCache {
    map: Arc<RwLock<HashMap<ProgramId, Arc<Program>>>>,
    rejected: Arc<RwLock<HashMap<ProgramId, Quarantined>>>,
}

/// A program the verifier refused, kept for inspection alongside the
/// reason it was refused.
#[derive(Clone)]
struct Quarantined {
    program: Arc<Program>,
    reason: String,
}

impl std::fmt::Debug for CodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CodeCache({} programs, {} quarantined)",
            self.map.read().unwrap().len(),
            self.rejected.read().unwrap().len()
        )
    }
}

impl CodeCache {
    /// An empty cache.
    pub fn new() -> Self {
        CodeCache::default()
    }

    /// Register a program; returns its content id.
    ///
    /// The program is verified first. An unverifiable program is
    /// quarantined rather than stored: its id is still returned (ids
    /// are content hashes; refusing to mint one hides nothing), but
    /// [`CodeCache::get`] will never hand it out and daemons fault any
    /// messenger that tries to run it.
    pub fn register(&self, program: &Program) -> ProgramId {
        let id = program.id();
        if self.map.read().unwrap().contains_key(&id) {
            return id;
        }
        match msgr_analyze::verify(program) {
            Ok(_) => {
                self.map.write().unwrap().entry(id).or_insert_with(|| Arc::new(program.clone()));
            }
            Err(diags) => {
                let reason = diags.iter().map(|d| d.render(program)).collect::<Vec<_>>().join("; ");
                self.rejected
                    .write()
                    .unwrap()
                    .entry(id)
                    .or_insert_with(|| Quarantined { program: Arc::new(program.clone()), reason });
            }
        }
        id
    }

    /// Look up a *verified* program. Quarantined programs are invisible
    /// here — use [`CodeCache::rejection`] to see why one was refused.
    pub fn get(&self, id: ProgramId) -> Option<Arc<Program>> {
        self.map.read().unwrap().get(&id).cloned()
    }

    /// Why `id` was quarantined, if it was.
    pub fn rejection(&self, id: ProgramId) -> Option<String> {
        self.rejected.read().unwrap().get(&id).map(|q| q.reason.clone())
    }

    /// Look up a program *even if quarantined*. Injection paths use
    /// this so a refusal surfaces as an in-run fault (with the
    /// `verify_rejected` counter bumped) instead of a registration
    /// error — the daemon, not the shell, is the trust boundary.
    pub fn get_any(&self, id: ProgramId) -> Option<Arc<Program>> {
        self.get(id).or_else(|| self.rejected.read().unwrap().get(&id).map(|q| q.program.clone()))
    }

    /// Whether any registered program suspends on virtual time.
    pub fn any_uses_virtual_time(&self) -> bool {
        self.map.read().unwrap().values().any(|p| {
            p.funcs.iter().any(|f| {
                f.code.iter().any(|op| matches!(op, msgr_vm::Op::SchedAbs | msgr_vm::Op::SchedDlt))
            })
        })
    }
}

/// A messenger queued for execution at a node of this daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct Runnable {
    /// The messenger.
    pub state: MessengerState,
    /// The node it is at.
    pub at: NodeRef,
    /// The link it arrived on (`$last`).
    pub last: Option<LinkInstance>,
}

/// Side effects a daemon hands back to its platform.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Transmit a frame (possibly to this daemon itself — the platform
    /// loops it back, preserving uniform accounting).
    Send {
        /// Destination daemon.
        dst: DaemonId,
        /// The frame.
        wire: Wire,
    },
    /// The live-messenger population changed (replications, deaths).
    LiveDelta(i64),
    /// A messenger died with a runtime error.
    Fault {
        /// Which messenger.
        messenger: MessengerId,
        /// What went wrong.
        error: String,
    },
    /// A named node came into existence (directory update).
    DirectoryAdd {
        /// Node name.
        name: Value,
        /// Placement.
        daemon: DaemonId,
        /// Reference.
        node: NodeRef,
    },
    /// A named node was deleted.
    DirectoryRemove {
        /// Node name.
        name: Value,
    },
    /// (Reliable transport only.) Ask the platform to call
    /// [`Daemon::on_timer`] for `(peer, seq)` after `delay` has elapsed,
    /// so an unacknowledged frame can be retransmitted. Harmless if the
    /// ack arrives first: the timer callback finds nothing to resend.
    Timer {
        /// Peer daemon the frame was sent to.
        peer: DaemonId,
        /// Transport sequence number of the frame.
        seq: u64,
        /// Delay from now until the timer fires.
        delay: SimTime,
    },
}

// ---- reliable transport ----------------------------------------------------

/// An unacknowledged [`Wire::Data`] frame held for retransmission. The
/// envelope keeps the fully serialized payload — for a migrating
/// messenger this *is* its last snapshot, so a crash of the receiving
/// daemon merely delays the retransmit that re-injects the messenger.
#[derive(Debug, Clone)]
struct Unacked {
    frame: Wire,
    attempts: u32,
    first_sent: SimTime,
    /// Backed-off delay to arm on the *next* retransmission.
    rto: SimTime,
}

#[derive(Debug, Default)]
struct PeerSend {
    next_seq: u64,
    unacked: BTreeMap<u64, Unacked>,
}

#[derive(Debug, Default)]
struct PeerRecv {
    /// Highest sequence delivered with no gaps.
    cum: u64,
    /// Out-of-order frames held back until the gap below them fills, so
    /// delivery stays FIFO per pair even when the network reorders.
    /// Anything `<= cum` or currently held here is a duplicate.
    held: BTreeMap<u64, Wire>,
}

/// Per-daemon reliable-delivery state: sequence numbers, retransmission
/// buffers, and receive-side resequencing. Exists only when the cluster
/// config has an active fault plan; otherwise frames travel bare exactly
/// as they always did.
#[derive(Debug)]
struct Xport {
    policy: RetransmitPolicy,
    rng: DetRng,
    send: BTreeMap<u16, PeerSend>,
    recv: BTreeMap<u16, PeerRecv>,
}

impl Xport {
    fn new(policy: RetransmitPolicy, rng: DetRng) -> Self {
        Xport { policy, rng, send: BTreeMap::new(), recv: BTreeMap::new() }
    }

    fn jitter(&mut self) -> SimTime {
        if self.policy.jitter > 0 {
            self.rng.below(self.policy.jitter)
        } else {
            0
        }
    }

    /// Accept an incoming data frame. Returns `true` if it is fresh
    /// (never seen before), stashing it for in-order delivery.
    fn accept(&mut self, peer: DaemonId, seq: u64, frame: Wire) -> bool {
        let r = self.recv.entry(peer.0).or_default();
        if seq <= r.cum || r.held.contains_key(&seq) {
            return false;
        }
        r.held.insert(seq, frame);
        true
    }

    /// Pop the next in-order frame from `peer`, if the sequence has no
    /// gap below it.
    fn next_ready(&mut self, peer: DaemonId) -> Option<Wire> {
        let r = self.recv.get_mut(&peer.0)?;
        let frame = r.held.remove(&(r.cum + 1))?;
        r.cum += 1;
        Some(frame)
    }

    fn recv_cum(&self, peer: DaemonId) -> u64 {
        self.recv.get(&peer.0).map_or(0, |r| r.cum)
    }

    /// Process an ack: drop everything `<= cum` plus the specific `seq`.
    /// Returns the first-send times of newly acknowledged frames.
    fn ack(&mut self, peer: DaemonId, cum: u64, seq: u64) -> Vec<SimTime> {
        let Some(p) = self.send.get_mut(&peer.0) else {
            return Vec::new();
        };
        let mut acked = Vec::new();
        while let Some((&s, _)) = p.unacked.first_key_value() {
            if s > cum {
                break;
            }
            acked.push(p.unacked.remove(&s).expect("key just observed").first_sent);
        }
        if seq > cum {
            if let Some(u) = p.unacked.remove(&seq) {
                acked.push(u.first_sent);
            }
        }
        acked
    }

    fn outstanding(&self) -> u64 {
        self.send.values().map(|p| p.unacked.len() as u64).sum()
    }
}

/// Name → location resolution for virtual hops, provided by the
/// platform.
pub trait Directory {
    /// Where the named node lives, if anywhere.
    fn lookup(&self, name: &Value) -> Option<(DaemonId, NodeRef)>;
}

impl Directory for HashMap<Value, (DaemonId, NodeRef)> {
    fn lookup(&self, name: &Value) -> Option<(DaemonId, NodeRef)> {
        self.get(name).copied()
    }
}

type NodeVars = HashMap<Arc<str>, Value>;

/// One MESSENGERS daemon.
pub struct Daemon {
    id: DaemonId,
    cfg: Arc<ClusterConfig>,
    topo: Arc<DaemonTopology>,
    codes: CodeCache,
    natives: Arc<RwLock<NativeRegistry>>,
    nodes: HashMap<NodeRef, LogicalNode>,
    init: NodeRef,
    node_seq: u64,
    link_seq: u64,
    msgr_seq: u64,
    rr: usize,
    ready: VecDeque<Runnable>,
    pending: PendingQueue<Runnable>,
    // Optimistic-mode queue, ordered by the Time-Warp event key
    // (vtime, messenger id) so tie-breaking matches straggler detection.
    opt_queue: std::collections::BTreeMap<(Vt, u64), Runnable>,
    part: Participant,
    coord: Option<Coordinator>,
    tw: HashMap<NodeRef, TwNode<NodeVars, Runnable>>,
    anti_pending: HashSet<MessengerId>,
    xport: Option<Xport>,
    stats: Stats,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("id", &self.id)
            .field("nodes", &self.nodes.len())
            .field("ready", &self.ready.len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl Daemon {
    /// Create daemon `id` of a cluster of `cfg.daemons`, with its `init`
    /// node. Daemon 0 hosts the GVT coordinator.
    pub fn new(
        id: DaemonId,
        cfg: Arc<ClusterConfig>,
        topo: Arc<DaemonTopology>,
        codes: CodeCache,
        natives: Arc<RwLock<NativeRegistry>>,
    ) -> Self {
        let coord = (id.0 == 0).then(|| Coordinator::new(cfg.daemons));
        // One independent jitter stream per daemon, forked off the run
        // seed so transport randomness never perturbs other draws.
        let xport = cfg
            .reliable()
            .then(|| Xport::new(cfg.retransmit, DetRng::new(cfg.seed).fork(0xACC + id.0 as u64)));
        let mut d = Daemon {
            id,
            cfg,
            topo,
            codes,
            natives,
            nodes: HashMap::new(),
            init: NodeRef::new(id.0, 0),
            node_seq: 0,
            link_seq: 0,
            msgr_seq: 0,
            rr: 0,
            ready: VecDeque::new(),
            pending: PendingQueue::new(),
            opt_queue: std::collections::BTreeMap::new(),
            part: Participant::new(id.0),
            coord,
            tw: HashMap::new(),
            anti_pending: HashSet::new(),
            xport,
            stats: Stats::new(),
        };
        let init = d.build_node(Value::str("init"));
        d.init = init;
        d
    }

    /// This daemon's id.
    pub fn id(&self) -> DaemonId {
        self.id
    }

    /// The daemon's `init` node.
    pub fn init_node(&self) -> NodeRef {
        self.init
    }

    /// Counters collected so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Whether any messenger is ready to execute right now.
    pub fn has_work(&self) -> bool {
        match self.cfg.vt_mode {
            VtMode::Conservative => !self.ready.is_empty(),
            VtMode::Optimistic => !self.opt_queue.is_empty() || !self.ready.is_empty(),
        }
    }

    /// Whether anything (ready or suspended) exists on this daemon.
    pub fn has_any_messengers(&self) -> bool {
        !self.ready.is_empty() || !self.pending.is_empty() || !self.opt_queue.is_empty()
    }

    /// The minimum virtual time over all local messengers — this
    /// daemon's contribution to GVT.
    pub fn local_min(&self) -> Vt {
        let ready_min = self.ready.iter().map(|r| r.state.vtime).fold(Vt::INFINITY, Vt::min);
        let pending_min = self.pending.min_wake().unwrap_or(Vt::INFINITY);
        let opt_min = self.opt_queue.keys().next().map(|(t, _)| *t).unwrap_or(Vt::INFINITY);
        ready_min.min(pending_min).min(opt_min)
    }

    /// The GVT this daemon currently knows.
    pub fn known_gvt(&self) -> Vt {
        self.part.gvt()
    }

    /// Total Time-Warp rollbacks performed here.
    pub fn rollbacks(&self) -> u64 {
        self.stats.counter("rollbacks")
    }

    // ---- identifiers -------------------------------------------------------

    fn alloc_node(&mut self) -> NodeRef {
        self.node_seq += 1;
        NodeRef::new(self.id.0, self.node_seq)
    }

    /// Allocate a cluster-unique link instance id.
    pub fn alloc_link(&mut self) -> LinkInstance {
        self.link_seq += 1;
        LinkInstance(((self.id.0 as u64) << 48) | self.link_seq)
    }

    fn alloc_mid(&mut self) -> MessengerId {
        self.msgr_seq += 1;
        MessengerId::compose(self.id.0, self.msgr_seq)
    }

    // ---- platform-facing construction ---------------------------------------

    /// Create a logical node directly (initial topology construction and
    /// the `init` node). Named nodes should be announced to the
    /// directory by the caller.
    pub fn build_node(&mut self, name: Value) -> NodeRef {
        let gid = self.alloc_node();
        self.nodes.insert(gid, LogicalNode::new(gid, name));
        gid
    }

    /// Install one half of a link on an existing node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist (construction-time bug).
    pub fn install_link(&mut self, node: NodeRef, rec: LinkRec) {
        self.nodes.get_mut(&node).expect("install_link on missing node").links.push(rec);
    }

    /// Look up a program in the shared code registry (platform helper).
    /// Quarantined programs *are* returned — launching one is allowed;
    /// the refusal happens (and is counted) when a daemon executes it.
    pub fn codes_get(&self, id: ProgramId) -> Option<Arc<Program>> {
        self.codes.get_any(id)
    }

    /// Iterate this daemon's logical nodes (diagnostics, dumps).
    pub fn nodes(&self) -> impl Iterator<Item = &LogicalNode> {
        let mut v: Vec<&LogicalNode> = self.nodes.values().collect();
        v.sort_by_key(|n| n.gid);
        v.into_iter()
    }

    /// Find a local node by name.
    pub fn find_node(&self, name: &Value) -> Option<NodeRef> {
        self.nodes.values().find(|n| n.name.loose_eq(name)).map(|n| n.gid)
    }

    /// Access a node.
    pub fn node(&self, gid: NodeRef) -> Option<&LogicalNode> {
        self.nodes.get(&gid)
    }

    /// Read a node variable.
    pub fn node_var(&self, gid: NodeRef, var: &str) -> Option<Value> {
        self.nodes.get(&gid).map(|n| n.var(var))
    }

    /// Write a node variable (topology/setup phase).
    pub fn set_node_var(&mut self, gid: NodeRef, var: &str, v: Value) {
        if let Some(n) = self.nodes.get_mut(&gid) {
            n.set_var(var, v);
        }
    }

    /// Launch a fresh messenger at `at` (injection). Returns its id.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError::Arity`] if `args` do not match the entry
    /// function.
    pub fn launch(
        &mut self,
        program: &Program,
        args: &[Value],
        at: NodeRef,
    ) -> Result<MessengerId, VmError> {
        let id = self.alloc_mid();
        let state = MessengerState::launch(program, id, args)?;
        self.enqueue(Runnable { state, at, last: None });
        Ok(id)
    }

    fn enqueue(&mut self, r: Runnable) {
        match self.cfg.vt_mode {
            VtMode::Conservative => {
                if r.state.vtime <= self.part.gvt() {
                    self.ready.push_back(r);
                } else {
                    self.pending.push(r.state.vtime, r);
                }
            }
            VtMode::Optimistic => {
                self.opt_queue.insert((r.state.vtime, r.state.id.0), r);
            }
        }
    }

    // ---- wire handling -------------------------------------------------------

    /// Process an incoming frame; returns the CPU cost of accepting it.
    ///
    /// Equivalent to [`Daemon::on_wire_at`] at platform time 0; platforms
    /// that track a clock (the simulator) should prefer `on_wire_at` so
    /// the transport can measure delivery latency.
    pub fn on_wire(&mut self, wire: Wire, fx: &mut Vec<Effect>) -> u64 {
        self.on_wire_at(0, wire, fx)
    }

    /// Process an incoming frame at platform time `now`; returns the CPU
    /// cost of accepting it.
    pub fn on_wire_at(&mut self, now: SimTime, wire: Wire, fx: &mut Vec<Effect>) -> u64 {
        let c = self.cfg.costs;
        match wire {
            Wire::Data { src, seq, frame } => {
                let mut cost = c.gvt_msg_ns;
                let Some(x) = self.xport.as_mut() else {
                    // Transport disabled: treat the envelope as transparent
                    // (only reachable by hand-fed frames in tests).
                    return cost + self.on_wire_at(now, *frame, fx);
                };
                let fresh = x.accept(src, seq, *frame);
                // Resequence: everything deliverable in order comes out now.
                let mut ready = Vec::new();
                if fresh {
                    while let Some(f) = x.next_ready(src) {
                        ready.push(f);
                    }
                } else {
                    self.stats.bump("xport_dup_dropped");
                }
                // Ack every copy — the ack for an earlier copy may itself
                // have been lost.
                let ack = Wire::Ack { src: self.id, cum: x.recv_cum(src), seq };
                fx.push(Effect::Send { dst: src, wire: ack });
                for f in ready {
                    cost += self.on_wire_at(now, f, fx);
                }
                cost
            }
            Wire::Ack { src, cum, seq } => {
                if let Some(x) = self.xport.as_mut() {
                    for first_sent in x.ack(src, cum, seq) {
                        self.stats.bump("xport_acked");
                        self.stats.record("xport_delivery_ns", now.saturating_sub(first_sent));
                    }
                }
                c.gvt_msg_ns
            }
            Wire::Migrate(m) => {
                self.part.on_receive(m.epoch, m.vtime);
                self.stats.bump("migrations_in");
                if m.anti {
                    self.annihilate(m.id, fx);
                    return c.gvt_msg_ns;
                }
                let cost = c.hop_recv_ns + m.bytes.len() as u64 * c.per_byte_copy_ns;
                match vmwire::decode_messenger(m.bytes) {
                    Ok(state) => {
                        if self.anti_pending.remove(&m.id) {
                            // The anti-messenger got here first.
                            fx.push(Effect::LiveDelta(-1));
                            self.stats.bump("annihilations");
                        } else if let Some(reason) = self.codes.rejection(state.program) {
                            // Refuse quarantined code at the door — a
                            // migrating messenger never even enqueues.
                            self.stats.bump("verify_rejected");
                            fx.push(Effect::Fault {
                                messenger: m.id,
                                error: format!(
                                    "program {} failed verification: {reason}",
                                    state.program
                                ),
                            });
                            fx.push(Effect::LiveDelta(-1));
                        } else if self.nodes.contains_key(&m.to.1) {
                            self.enqueue(Runnable { state, at: m.to.1, last: m.via });
                        } else {
                            // Destination node was deleted in flight.
                            fx.push(Effect::LiveDelta(-1));
                            self.stats.bump("dead_letters");
                        }
                    }
                    Err(e) => {
                        fx.push(Effect::Fault { messenger: m.id, error: e.to_string() });
                        fx.push(Effect::LiveDelta(-1));
                    }
                }
                cost
            }
            Wire::Create(cn) => {
                self.part.on_receive(cn.messenger.epoch, cn.messenger.vtime);
                self.stats.bump("remote_creates");
                let mut node = LogicalNode::new(cn.gid, cn.name.clone());
                node.links.push(LinkRec {
                    inst: cn.inst,
                    name: cn.link_name.clone(),
                    orient: cn.orient_at_new,
                    peer: cn.origin,
                    peer_name: cn.origin_name.clone(),
                });
                self.nodes.insert(cn.gid, node);
                if cn.name != Value::Null {
                    fx.push(Effect::DirectoryAdd {
                        name: cn.name.clone(),
                        daemon: self.id,
                        node: cn.gid,
                    });
                }
                let cost = c.create_node_ns
                    + c.hop_recv_ns
                    + cn.messenger.bytes.len() as u64 * c.per_byte_copy_ns;
                match vmwire::decode_messenger(cn.messenger.bytes.clone()) {
                    Ok(state) => {
                        if let Some(reason) = self.codes.rejection(state.program) {
                            self.stats.bump("verify_rejected");
                            fx.push(Effect::Fault {
                                messenger: cn.messenger.id,
                                error: format!(
                                    "program {} failed verification: {reason}",
                                    state.program
                                ),
                            });
                            fx.push(Effect::LiveDelta(-1));
                        } else {
                            self.enqueue(Runnable { state, at: cn.gid, last: Some(cn.inst) });
                        }
                    }
                    Err(e) => {
                        fx.push(Effect::Fault { messenger: cn.messenger.id, error: e.to_string() });
                        fx.push(Effect::LiveDelta(-1));
                    }
                }
                cost
            }
            Wire::Unlink { node, inst } => {
                if let Some(n) = self.nodes.get_mut(&node) {
                    n.unlink(inst);
                    // Singleton collection is deferred while messengers
                    // are present (e.g. the deleting messenger itself has
                    // just arrived over the link being torn down).
                    if n.is_singleton() && node != self.init && !self.node_occupied(node) {
                        self.delete_node(node, fx);
                    }
                }
                c.gvt_msg_ns
            }
            Wire::Gvt(msg) => {
                self.on_gvt(msg, fx);
                c.gvt_msg_ns
            }
            Wire::GvtKick => {
                self.gvt_begin(fx);
                0
            }
        }
    }

    // ---- reliable transport (sender side) ----------------------------------

    /// Wrap this daemon's outgoing payload frames in [`Wire::Data`]
    /// envelopes and arm their retransmission timers. Platforms call
    /// this on every effect batch before applying it; with the default
    /// benign fault plan it is a no-op.
    ///
    /// Loopback sends, acks, and frames that are already envelopes (a
    /// retransmission from [`Daemon::on_timer`]) pass through untouched.
    pub fn seal_effects(&mut self, now: SimTime, fx: &mut Vec<Effect>) {
        if self.xport.is_none() {
            return;
        }
        let mut timers = Vec::new();
        for e in fx.iter_mut() {
            let Effect::Send { dst, wire } = e else {
                continue;
            };
            if *dst == self.id
                || matches!(wire, Wire::Data { .. } | Wire::Ack { .. } | Wire::GvtKick)
            {
                continue;
            }
            let x = self.xport.as_mut().expect("checked above");
            let p = x.send.entry(dst.0).or_default();
            p.next_seq += 1;
            let seq = p.next_seq;
            let inner = std::mem::replace(wire, Wire::GvtKick);
            let data = Wire::Data { src: self.id, seq, frame: Box::new(inner) };
            let rto = x.policy.rto;
            let delay = rto + x.jitter();
            let p = x.send.entry(dst.0).or_default();
            p.unacked
                .insert(seq, Unacked { frame: data.clone(), attempts: 1, first_sent: now, rto });
            *wire = data;
            timers.push(Effect::Timer { peer: *dst, seq, delay });
            self.stats.bump("xport_sent");
        }
        fx.extend(timers);
    }

    /// A retransmission timer fired for `(peer, seq)`. If the frame is
    /// still unacknowledged, resend it with doubled timeout (plus
    /// deterministic jitter) or — after `max_attempts` transmissions —
    /// give up and account the loss. Returns the CPU cost.
    pub fn on_timer(
        &mut self,
        now: SimTime,
        peer: DaemonId,
        seq: u64,
        fx: &mut Vec<Effect>,
    ) -> u64 {
        let _ = now;
        let Some(x) = self.xport.as_mut() else {
            return 0;
        };
        let policy = x.policy;
        if !x.send.get(&peer.0).is_some_and(|p| p.unacked.contains_key(&seq)) {
            return 0; // acked in the meantime: stale timer, no work
        }
        let jitter = x.jitter();
        let p = x.send.get_mut(&peer.0).expect("checked above");
        let u = p.unacked.get_mut(&seq).expect("checked above");
        if u.attempts >= policy.max_attempts {
            let u = p.unacked.remove(&seq).expect("present");
            self.stats.bump("xport_gave_up");
            // If the frame carried a live messenger, it is now lost for
            // good: keep the population ledger honest and surface a
            // fault so no run under a sane policy silently passes.
            let lost = match &u.frame {
                Wire::Data { frame, .. } => match frame.as_ref() {
                    Wire::Migrate(m) if !m.anti => Some(m.id),
                    Wire::Create(cn) => Some(cn.messenger.id),
                    _ => None,
                },
                _ => None,
            };
            if let Some(id) = lost {
                fx.push(Effect::Fault {
                    messenger: id,
                    error: format!(
                        "delivery to d{} abandoned after {} attempts",
                        peer.0, u.attempts
                    ),
                });
                fx.push(Effect::LiveDelta(-1));
            }
            return self.cfg.costs.gvt_msg_ns;
        }
        u.attempts += 1;
        let delay = u.rto + jitter;
        u.rto = (u.rto * 2).min(policy.max_rto);
        let frame = u.frame.clone();
        self.stats.bump("xport_retransmits");
        fx.push(Effect::Send { dst: peer, wire: frame });
        fx.push(Effect::Timer { peer, seq, delay });
        self.cfg.costs.gvt_msg_ns
    }

    /// Number of sent frames not yet acknowledged (0 when the transport
    /// is off). Platforms count these as outstanding work: the run is
    /// not quiescent while a retransmit buffer is non-empty.
    pub fn unacked_frames(&self) -> u64 {
        self.xport.as_ref().map_or(0, Xport::outstanding)
    }

    /// Whether any queued messenger currently sits at `gid`.
    fn node_occupied(&self, gid: NodeRef) -> bool {
        self.ready.iter().any(|r| r.at == gid) || self.opt_queue.values().any(|r| r.at == gid)
    }

    fn delete_node(&mut self, gid: NodeRef, fx: &mut Vec<Effect>) {
        if let Some(n) = self.nodes.remove(&gid) {
            if n.name != Value::Null {
                fx.push(Effect::DirectoryRemove { name: n.name.clone() });
            }
            self.stats.bump("nodes_deleted");
            // Messengers stranded at the node die.
            let before = self.ready.len();
            self.ready.retain(|r| r.at != gid);
            let killed_ready = before - self.ready.len();
            let killed_pending = self.pending.drain_matching(|r| r.at == gid).len();
            let opt_keys: Vec<(Vt, u64)> =
                self.opt_queue.iter().filter(|(_, r)| r.at == gid).map(|(k, _)| *k).collect();
            for k in &opt_keys {
                self.opt_queue.remove(k);
            }
            let killed = (killed_ready + killed_pending + opt_keys.len()) as i64;
            if killed > 0 {
                fx.push(Effect::LiveDelta(-killed));
                self.stats.add("stranded_killed", killed as u64);
            }
        }
    }

    // ---- GVT ------------------------------------------------------------------

    fn on_gvt(&mut self, msg: CtrlMsg, fx: &mut Vec<Effect>) {
        match msg {
            CtrlMsg::Cut { round } => {
                let lm = self.local_min();
                let ack = self.part.on_cut(round, lm);
                fx.push(Effect::Send { dst: DaemonId(0), wire: Wire::Gvt(ack) });
            }
            CtrlMsg::Poll { round } => {
                let lm = self.local_min();
                let ack = self.part.on_poll(round, lm);
                fx.push(Effect::Send { dst: DaemonId(0), wire: Wire::Gvt(ack) });
            }
            CtrlMsg::Advance { gvt } => {
                self.part.on_advance(gvt);
                if self.cfg.vt_mode == VtMode::Conservative {
                    while let Some((_, r)) = self.pending.pop_runnable(gvt) {
                        self.ready.push_back(r);
                    }
                } else {
                    for node in self.tw.values_mut() {
                        node.fossil_collect(gvt);
                    }
                }
            }
            ack @ (CtrlMsg::CutAck { .. } | CtrlMsg::PollAck { .. }) => {
                let Some(coord) = self.coord.as_mut() else {
                    return;
                };
                match coord.on_ack(&ack) {
                    CoordinatorAction::Wait => {}
                    CoordinatorAction::PollAll { round } => {
                        self.broadcast_gvt(CtrlMsg::Poll { round }, fx);
                    }
                    CoordinatorAction::Advance { gvt } => {
                        self.stats.bump("gvt_rounds");
                        self.broadcast_gvt(CtrlMsg::Advance { gvt }, fx);
                    }
                }
            }
        }
    }

    fn broadcast_gvt(&mut self, msg: CtrlMsg, fx: &mut Vec<Effect>) {
        for d in 0..self.cfg.daemons as u16 {
            fx.push(Effect::Send { dst: DaemonId(d), wire: Wire::Gvt(msg.clone()) });
        }
    }

    /// (Coordinator only.) Start a GVT round; returns `false` if this
    /// daemon is not the coordinator or a round is already running.
    pub fn gvt_begin(&mut self, fx: &mut Vec<Effect>) -> bool {
        let Some(coord) = self.coord.as_mut() else {
            return false;
        };
        let Some(cut) = coord.begin_round() else {
            return false;
        };
        self.broadcast_gvt(cut, fx);
        true
    }

    // ---- annihilation (optimistic) -----------------------------------------------

    fn annihilate(&mut self, id: MessengerId, fx: &mut Vec<Effect>) {
        // 1. Still suspended here?
        let hit = self.pending.drain_matching(|r| r.state.id == id);
        if !hit.is_empty() {
            fx.push(Effect::LiveDelta(-1));
            self.stats.bump("annihilations");
            return;
        }
        let opt_key = self.opt_queue.keys().find(|(_, i)| *i == id.0).copied();
        if let Some(k) = opt_key {
            self.opt_queue.remove(&k);
            fx.push(Effect::LiveDelta(-1));
            self.stats.bump("annihilations");
            return;
        }
        // 1b. In the ready queue?
        let before = self.ready.len();
        self.ready.retain(|r| r.state.id != id);
        if self.ready.len() < before {
            fx.push(Effect::LiveDelta(-1));
            self.stats.bump("annihilations");
            return;
        }
        // 2. Already processed at one of our nodes? Roll it back.
        let found = self.tw.iter().find(|(_, log)| log.contains_input(id.0)).map(|(gid, _)| *gid);
        if let Some(gid) = found {
            let rb = self.tw.get_mut(&gid).and_then(|log| log.annihilate_processed(id.0));
            if let Some(rb) = rb {
                self.apply_rollback(gid, rb, fx);
                fx.push(Effect::LiveDelta(-1));
                self.stats.bump("annihilations");
                return;
            }
        }
        // 3. The anti-messenger overtook its positive: stash it.
        self.anti_pending.insert(id);
    }

    fn apply_rollback(
        &mut self,
        gid: NodeRef,
        rb: msgr_gvt::Rollback<NodeVars, Runnable>,
        fx: &mut Vec<Effect>,
    ) {
        self.stats.bump("rollbacks");
        self.stats.add("rolled_back_events", rb.reexecute.len() as u64);
        if let Some(n) = self.nodes.get_mut(&gid) {
            n.vars = rb.restore;
        }
        for (key, input) in rb.reexecute {
            self.opt_queue.insert(key, input);
        }
        for cancel in rb.cancel {
            let dst = DaemonId(cancel.dest);
            if dst == self.id {
                self.annihilate(MessengerId(cancel.id), fx);
            } else {
                self.part.on_send(cancel.ts);
                self.stats.bump("anti_sent");
                fx.push(Effect::Send {
                    dst,
                    wire: Wire::Migrate(Migration {
                        id: MessengerId(cancel.id),
                        vtime: cancel.ts,
                        epoch: self.part.stamp(),
                        anti: true,
                        to: (dst, NodeRef::new(0, 0)),
                        via: None,
                        bytes: Bytes::new(),
                        code_bytes: 0,
                    }),
                });
            }
        }
    }

    // ---- execution ---------------------------------------------------------------

    /// Execute one non-preemptive segment. Returns its reference-CPU
    /// cost, or `None` if nothing is runnable.
    pub fn run_segment(&mut self, dir: &dyn Directory, fx: &mut Vec<Effect>) -> Option<u64> {
        match self.cfg.vt_mode {
            VtMode::Conservative => {
                let run = self.ready.pop_front()?;
                Some(self.execute(run, dir, fx, false))
            }
            VtMode::Optimistic => {
                // Drain any conservative-path leftovers first (ready is
                // unused in optimistic mode except via injection races).
                if let Some(run) = self.ready.pop_front() {
                    return Some(self.execute(run, dir, fx, true));
                }
                let (&key0, _) = self.opt_queue.iter().next()?;
                let run = self.opt_queue.remove(&key0).expect("key just observed");
                // Straggler?
                let key = (run.state.vtime, run.state.id.0);
                let straggler = self.tw.get(&run.at).is_some_and(|log| log.is_straggler(key));
                if straggler {
                    let rb = self.tw.get_mut(&run.at).unwrap().rollback(key).unwrap();
                    let undone = rb.reexecute.len() as u64;
                    self.apply_rollback(run.at, rb, fx);
                    self.opt_queue.insert((run.state.vtime, run.state.id.0), run);
                    return Some(undone * self.cfg.costs.rollback_per_event_ns);
                }
                Some(self.execute(run, dir, fx, true))
            }
        }
    }

    fn execute(
        &mut self,
        mut run: Runnable,
        dir: &dyn Directory,
        fx: &mut Vec<Effect>,
        optimistic: bool,
    ) -> u64 {
        let c = self.cfg.costs;
        let Some(node) = self.nodes.get(&run.at) else {
            fx.push(Effect::LiveDelta(-1));
            self.stats.bump("dead_letters");
            return c.gvt_msg_ns;
        };
        let Some(program) = self.codes.get(run.state.program) else {
            let error = match self.codes.rejection(run.state.program) {
                Some(reason) => {
                    self.stats.bump("verify_rejected");
                    format!("program {} failed verification: {reason}", run.state.program)
                }
                None => format!("program {} not in code registry", run.state.program),
            };
            fx.push(Effect::Fault { messenger: run.state.id, error });
            fx.push(Effect::LiveDelta(-1));
            return c.gvt_msg_ns;
        };

        // Time-Warp bookkeeping: snapshot before execution.
        let key = (run.state.vtime, run.state.id.0);
        let (snapshot, input_copy) =
            if optimistic { (Some(node.vars.clone()), Some(run.clone())) } else { (None, None) };

        let node_name = node.name.clone();
        let fuel = self.cfg.segment_fuel;
        let natives = self.natives.read().unwrap().clone();
        let address = self.id.0;
        // Scoped mutable borrow of the node's variables for the VM.
        let (yielded, ops, native_ns) = {
            let node = self.nodes.get_mut(&run.at).expect("checked above");
            let mut env = SegEnv {
                vars: &mut node.vars,
                natives: &natives,
                address,
                node_name: node_name.clone(),
                last: run.last,
                mid: run.state.id,
                vtime: run.state.vtime,
                ops: 0,
                native_ns: 0,
            };
            let y = interp::run(&program, &mut run.state, &mut env, fuel);
            (y, env.ops, env.native_ns)
        };
        let mut cost = ops * c.per_op_ns + native_ns;
        self.stats.bump("segments");
        self.stats.add("ops", ops);

        let mut sent: Vec<SentRef> = Vec::new();
        match yielded {
            Ok(y) => {
                cost += self.handle_yield(run.clone(), y, &program, dir, fx, &mut sent);
            }
            Err(e) => {
                fx.push(Effect::Fault { messenger: run.state.id, error: e.to_string() });
                fx.push(Effect::LiveDelta(-1));
                self.stats.bump("faults");
            }
        }

        if let (Some(pre_state), Some(input)) = (snapshot, input_copy) {
            let log = self.tw.entry(run.at).or_default();
            log.record(TwEntry { key, pre_state, input, sent });
        }
        cost
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_yield(
        &mut self,
        run: Runnable,
        y: Yield,
        program: &Program,
        dir: &dyn Directory,
        fx: &mut Vec<Effect>,
        sent: &mut Vec<SentRef>,
    ) -> u64 {
        match y {
            Yield::Terminated(_) => {
                fx.push(Effect::LiveDelta(-1));
                self.stats.bump("terminated");
                0
            }
            Yield::SchedAbs(t) => {
                let mut next = run;
                next.state.vtime = next.state.vtime.max(t);
                self.resuspend(next, fx, sent);
                0
            }
            Yield::SchedDlt(dt) => {
                if dt < 0.0 {
                    fx.push(Effect::Fault {
                        messenger: run.state.id,
                        error: "negative virtual-time delta".to_string(),
                    });
                    fx.push(Effect::LiveDelta(-1));
                    return 0;
                }
                let mut next = run;
                next.state.vtime = next.state.vtime.plus(dt);
                self.resuspend(next, fx, sent);
                0
            }
            Yield::Hop(eh) => self.do_hop(run, &eh, false, program, dir, fx, sent),
            Yield::Delete(eh) => self.do_hop(run, &eh, true, program, dir, fx, sent),
            Yield::Create(ec) => {
                if self.cfg.vt_mode == VtMode::Optimistic {
                    fx.push(Effect::Fault {
                        messenger: run.state.id,
                        error: "optimistic mode requires a static logical network (create)"
                            .to_string(),
                    });
                    fx.push(Effect::LiveDelta(-1));
                    return 0;
                }
                self.do_create(run, &ec, program, fx)
            }
        }
    }

    /// Re-enqueue a suspended continuation under a fresh id (so that a
    /// Time-Warp rollback can cancel it like any other send).
    fn resuspend(&mut self, mut next: Runnable, _fx: &mut [Effect], sent: &mut Vec<SentRef>) {
        next.state.id = self.alloc_mid();
        sent.push(SentRef { id: next.state.id.0, dest: self.id.0, ts: next.state.vtime });
        self.stats.bump("suspensions");
        self.enqueue(next);
    }

    #[allow(clippy::too_many_arguments)]
    fn do_hop(
        &mut self,
        run: Runnable,
        eh: &EvalHop,
        delete: bool,
        program: &Program,
        dir: &dyn Directory,
        fx: &mut Vec<Effect>,
        sent: &mut Vec<SentRef>,
    ) -> u64 {
        let c = self.cfg.costs;
        let mut cost = 0u64;
        self.stats.bump(if delete { "deletes" } else { "hops" });

        if delete && self.cfg.vt_mode == VtMode::Optimistic {
            fx.push(Effect::Fault {
                messenger: run.state.id,
                error: "optimistic mode requires a static logical network (delete)".to_string(),
            });
            fx.push(Effect::LiveDelta(-1));
            return 0;
        }

        // Resolve destinations.
        let mut dests: Vec<(Option<LinkInstance>, DaemonId, NodeRef)> = Vec::new();
        if eh.ll == EvalLink::Virtual {
            let name = eh.ln.as_ref().expect("compiler enforces ln on virtual hops");
            if let Some((d, n)) = dir.lookup(name) {
                dests.push((None, d, n));
            }
            self.stats.bump("virtual_hops");
        } else if let Some(node) = self.nodes.get(&run.at) {
            for l in node.matching_links(eh) {
                dests.push((Some(l.inst), l.peer.0, l.peer.1));
            }
        }

        // Delete: tear down traversed links. The local halves go now;
        // the far halves go by wire, queued AFTER the migrations so the
        // traveling messenger (FIFO per pair) reaches the peer node
        // before any singleton collection can remove it.
        let mut deferred_unlinks: Vec<Effect> = Vec::new();
        if delete {
            let insts: Vec<LinkInstance> = dests.iter().filter_map(|d| d.0).collect();
            if let Some(node) = self.nodes.get_mut(&run.at) {
                for inst in &insts {
                    node.unlink(*inst);
                }
            }
            for (inst, daemon, peer) in dests.iter().filter_map(|(i, d, n)| i.map(|i| (i, *d, *n)))
            {
                deferred_unlinks
                    .push(Effect::Send { dst: daemon, wire: Wire::Unlink { node: peer, inst } });
            }
            // The current node may have become an empty singleton.
            let now_singleton = self.nodes.get(&run.at).is_some_and(|n| n.is_singleton());
            if now_singleton && run.at != self.init && !self.node_occupied(run.at) {
                self.delete_node(run.at, fx);
            }
        }

        if dests.is_empty() {
            fx.append(&mut deferred_unlinks);
            // Replicate to zero destinations: the messenger ceases to
            // exist (§2.1 hop semantics).
            fx.push(Effect::LiveDelta(-1));
            self.stats.bump("hop_no_match");
            return cost;
        }

        fx.push(Effect::LiveDelta(dests.len() as i64 - 1));
        let code_bytes = if self.cfg.carry_code { program.wire_bytes() } else { 0 };
        for (via, daemon, node) in dests {
            let mut replica = run.state.clone();
            replica.id = self.alloc_mid();
            let bytes = vmwire::encode_messenger(&replica);
            cost += c.hop_send_ns + bytes.len() as u64 * c.per_byte_copy_ns;
            self.part.on_send(replica.vtime);
            self.stats.bump("migrations_out");
            self.stats.add("migration_bytes", bytes.len() as u64 + code_bytes);
            sent.push(SentRef { id: replica.id.0, dest: daemon.0, ts: replica.vtime });
            fx.push(Effect::Send {
                dst: daemon,
                wire: Wire::Migrate(Migration {
                    id: replica.id,
                    vtime: replica.vtime,
                    epoch: self.part.stamp(),
                    anti: false,
                    to: (daemon, node),
                    via,
                    bytes,
                    code_bytes,
                }),
            });
        }
        fx.extend(deferred_unlinks);
        cost
    }

    fn do_create(
        &mut self,
        run: Runnable,
        ec: &EvalCreate,
        program: &Program,
        fx: &mut Vec<Effect>,
    ) -> u64 {
        let c = self.cfg.costs;
        let mut cost = 0u64;
        self.stats.bump("creates");
        let origin_name = match self.nodes.get(&run.at) {
            Some(n) => n.name.clone(),
            None => {
                fx.push(Effect::LiveDelta(-1));
                return cost;
            }
        };
        let code_bytes = if self.cfg.carry_code { program.wire_bytes() } else { 0 };
        let mut replicas = 0i64;

        for item in &ec.items {
            let matches = self.topo.matches(self.id, &item.dn, &item.dl, item.ddir);
            if matches.is_empty() {
                continue;
            }
            let chosen: Vec<DaemonId> = if ec.all {
                matches
            } else {
                // Deterministic round-robin among the matching daemons
                // (the paper defers the selection rule to [FBDM98]).
                let pick = matches[self.rr % matches.len()];
                self.rr += 1;
                vec![pick]
            };
            for daemon in chosen {
                replicas += 1;
                let gid = self.alloc_node();
                let inst = self.alloc_link();
                let node_name = item.ln.clone().unwrap_or(Value::Null);
                let link_name = item.ll.clone().unwrap_or(Value::Null);
                // Orientation at the origin: `+` points origin → new.
                let orient_origin = match item.ldir {
                    Dir::Forward => Orient::Out,
                    Dir::Backward => Orient::In,
                    Dir::Any => Orient::Undirected,
                };
                if let Some(n) = self.nodes.get_mut(&run.at) {
                    n.links.push(LinkRec {
                        inst,
                        name: link_name.clone(),
                        orient: orient_origin,
                        peer: (daemon, gid),
                        peer_name: node_name.clone(),
                    });
                }
                let mut replica = run.state.clone();
                replica.id = self.alloc_mid();
                let bytes = vmwire::encode_messenger(&replica);
                cost += c.create_node_ns + c.hop_send_ns + bytes.len() as u64 * c.per_byte_copy_ns;
                self.part.on_send(replica.vtime);
                self.stats.bump("migrations_out");
                self.stats.add("migration_bytes", bytes.len() as u64 + code_bytes);
                fx.push(Effect::Send {
                    dst: daemon,
                    wire: Wire::Create(Box::new(CreateNode {
                        gid,
                        name: node_name,
                        origin: (self.id, run.at),
                        origin_name: origin_name.clone(),
                        inst,
                        link_name,
                        orient_at_new: orient_origin.reversed(),
                        messenger: Migration {
                            id: replica.id,
                            vtime: replica.vtime,
                            epoch: self.part.stamp(),
                            anti: false,
                            to: (daemon, gid),
                            via: Some(inst),
                            bytes,
                            code_bytes,
                        },
                    })),
                });
            }
        }
        fx.push(Effect::LiveDelta(replicas - 1));
        if replicas == 0 {
            self.stats.bump("create_no_match");
        }
        cost
    }
}

/// The VM environment for one execution segment: the current node's
/// variables plus cost metering. Also the [`NativeCtx`] handed to native
/// functions.
struct SegEnv<'a> {
    vars: &'a mut NodeVars,
    natives: &'a NativeRegistry,
    address: u16,
    node_name: Value,
    last: Option<LinkInstance>,
    mid: MessengerId,
    vtime: Vt,
    ops: u64,
    native_ns: u64,
}

impl interp::Env for SegEnv<'_> {
    fn node_var(&mut self, name: &str) -> Value {
        self.vars.get(name).cloned().unwrap_or(Value::Null)
    }
    fn set_node_var(&mut self, name: &str, v: Value) {
        self.vars.insert(Arc::from(name), v);
    }
    fn net_var(&mut self, var: NetVar) -> Value {
        match var {
            NetVar::Address => Value::Int(self.address as i64),
            NetVar::Last => self.last.map(Value::Link).unwrap_or(Value::Null),
            NetVar::Node => self.node_name.clone(),
            NetVar::Time => Value::Float(self.vtime.as_f64()),
        }
    }
    fn call_native(&mut self, name: &str, args: &[Value]) -> Result<Value, VmError> {
        let natives = self.natives;
        natives.call(self, name, args)
    }
    fn charge_ops(&mut self, ops: u64) {
        self.ops += ops;
    }
}

impl NativeCtx for SegEnv<'_> {
    fn node_var(&mut self, name: &str) -> Value {
        self.vars.get(name).cloned().unwrap_or(Value::Null)
    }
    fn set_node_var(&mut self, name: &str, v: Value) {
        self.vars.insert(Arc::from(name), v);
    }
    fn charge(&mut self, ref_ns: u64) {
        self.native_ns += ref_ns;
    }
    fn daemon(&self) -> u16 {
        self.address
    }
    fn node_name(&self) -> Value {
        self.node_name.clone()
    }
    fn messenger(&self) -> MessengerId {
        self.mid
    }
    fn vtime(&self) -> Vt {
        self.vtime
    }
}
