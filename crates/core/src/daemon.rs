//! The MESSENGERS daemon: receives messengers, interprets them, and
//! forwards them — platform-independent core logic.
//!
//! A daemon owns the logical nodes mapped to its host, a ready queue of
//! arrived messengers, and a virtual-time queue of suspended ones. The
//! platform (simulated or threaded) feeds it [`Wire`] frames via
//! [`Daemon::on_wire`] and asks it to execute one non-preemptive segment
//! at a time via [`Daemon::run_segment`]; both return the reference-CPU
//! cost of the work so the simulation can charge it to the host.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use msgr_vm::bytes::{Bytes, BytesMut};
use std::sync::RwLock;

use std::collections::BTreeMap;

use msgr_gvt::{
    Coordinator, CoordinatorAction, CtrlMsg, Participant, PendingQueue, SentRef, TwEntry, TwNode,
};
use msgr_sim::{DetRng, SimTime, Stats};
use msgr_trace::{EventKind, FlightRecorder, Metric, TraceEvent};
use msgr_vm::{
    interp, wire as vmwire, Dir, EvalCreate, EvalHop, EvalLink, LinkInstance, MessengerId,
    MessengerState, NativeCtx, NativeRegistry, NetVar, Program, ProgramId, Value, VmError, Vt,
    Yield,
};

use crate::config::{ClusterConfig, RetransmitPolicy, Succession, VtMode};
use crate::ids::{DaemonId, NodeRef};
use crate::logical::{LinkRec, LogicalNode, Orient};
use crate::profiling::Prof;
use crate::topology::DaemonTopology;
use crate::wire::{self as wirecodec, CreateNode, Migration, Wire};

/// The cluster-wide code registry — the paper's shared file system: "code
/// does not need to be carried between nodes but can be loaded as
/// necessary" (§4).
///
/// This is also the trust boundary for mobile code: every program runs
/// through the `msgr-analyze` bytecode verifier at registration.
/// Programs that fail are *quarantined* — they keep their content id
/// (so a messenger referencing one can exist, and its refusal is
/// observable in-run), but no daemon will ever execute them.
#[derive(Clone)]
pub struct CodeCache {
    map: Arc<RwLock<HashMap<ProgramId, Arc<Program>>>>,
    compiled: Arc<RwLock<HashMap<ProgramId, Arc<msgr_vm::CompiledProgram>>>>,
    summaries: Arc<RwLock<HashMap<ProgramId, Arc<msgr_vm::SummaryTable>>>>,
    rejected: Arc<RwLock<HashMap<ProgramId, Quarantined>>>,
    stats: Arc<RwLock<Stats>>,
    /// Whether registration runs the interprocedural effect analysis
    /// and compiles with its summaries (`ClusterConfig::analysis`).
    analysis: bool,
}

impl Default for CodeCache {
    fn default() -> Self {
        CodeCache {
            map: Arc::default(),
            compiled: Arc::default(),
            summaries: Arc::default(),
            rejected: Arc::default(),
            stats: Arc::default(),
            analysis: true,
        }
    }
}

/// What [`CodeCache::register_outcome`] did with a program — platforms
/// turn this into `compile` / `code_hit` trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterOutcome {
    /// Verified and compiled into closures (first sighting of the body).
    Compiled {
        /// Functions compiled.
        funcs: u64,
        /// Superinstructions fused across all functions.
        superinsts: u64,
        /// Headline facts from the interprocedural effect analysis;
        /// `None` when the cluster registered with analysis disabled.
        analysis: Option<AnalysisFacts>,
    },
    /// The content hash was already compiled (cache hit).
    CacheHit,
    /// Refused by the verifier or the compiler.
    Quarantined,
}

/// What the whole-program analysis proved about a freshly registered
/// body — surfaced in the `code_analysis` trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisFacts {
    /// Functions proven hop-free.
    pub hop_free: u64,
    /// Fused loops licensed for the typed register file.
    pub typed_loops: u64,
}

impl RegisterOutcome {
    /// The trace events this outcome corresponds to (quarantines surface
    /// later, as in-run faults, not at registration).
    pub fn trace_events(self, prog: ProgramId) -> Vec<EventKind> {
        match self {
            RegisterOutcome::Compiled { funcs, superinsts, analysis } => {
                let mut out = vec![EventKind::CodeCompile { prog: prog.0, funcs, superinsts }];
                if let Some(a) = analysis {
                    out.push(EventKind::CodeAnalysis {
                        prog: prog.0,
                        hop_free: a.hop_free,
                        typed_loops: a.typed_loops,
                    });
                }
                out
            }
            RegisterOutcome::CacheHit => vec![EventKind::CodeCacheHit { prog: prog.0 }],
            RegisterOutcome::Quarantined => Vec::new(),
        }
    }
}

/// A program the verifier refused, kept for inspection alongside the
/// reason it was refused.
#[derive(Clone)]
struct Quarantined {
    program: Arc<Program>,
    reason: String,
}

impl std::fmt::Debug for CodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CodeCache({} programs, {} quarantined)",
            self.map.read().unwrap().len(),
            self.rejected.read().unwrap().len()
        )
    }
}

impl CodeCache {
    /// An empty cache (interprocedural analysis enabled).
    pub fn new() -> Self {
        CodeCache::default()
    }

    /// An empty cache with the effect analysis switched on or off —
    /// platforms pass `ClusterConfig::analysis` here.
    pub fn with_analysis(analysis: bool) -> Self {
        CodeCache { analysis, ..CodeCache::default() }
    }

    /// Register a program; returns its content id.
    ///
    /// The program is verified first, then — verification is exactly the
    /// precondition the closure compiler assumes — compiled into
    /// closures, once per content hash no matter how many messengers
    /// carry the body or which [`crate::config::ExecMode`] the cluster
    /// runs (compiling unconditionally keeps `compile_*` metrics and
    /// trace events mode-invariant). An unverifiable or uncompilable
    /// program is quarantined rather than stored: its id is still
    /// returned (ids are content hashes; refusing to mint one hides
    /// nothing), but [`CodeCache::get`] will never hand it out and
    /// daemons fault any messenger that tries to run it.
    pub fn register(&self, program: &Program) -> ProgramId {
        self.register_outcome(program).0
    }

    /// [`CodeCache::register`], also reporting what happened.
    pub fn register_outcome(&self, program: &Program) -> (ProgramId, RegisterOutcome) {
        let id = program.id();
        if self.map.read().unwrap().contains_key(&id) {
            self.stats.write().unwrap().bump(Metric::CompileCacheHits);
            return (id, RegisterOutcome::CacheHit);
        }
        let quarantine = |reason: String| {
            self.rejected
                .write()
                .unwrap()
                .entry(id)
                .or_insert_with(|| Quarantined { program: Arc::new(program.clone()), reason });
        };
        match msgr_analyze::verify(program) {
            Ok(_) => {
                // Whole-program effect summaries: computed once per
                // content hash, handed to the compiler (call fusion,
                // typed loops) and kept for the daemons (snapshot
                // elision). The table lives *outside* the program, so
                // content ids are analysis-invariant.
                let summaries = self.analysis.then(|| Arc::new(msgr_analyze::summarize(program)));
                match msgr_vm::compile::compile_with_summaries(program, summaries.as_deref()) {
                    Ok(cp) => {
                        let funcs = cp.func_count() as u64;
                        let superinsts = cp.superinstructions();
                        let analysis = summaries.as_ref().map(|t| AnalysisFacts {
                            hop_free: t.hop_free_funcs(),
                            typed_loops: cp.typed_loops(),
                        });
                        {
                            let mut s = self.stats.write().unwrap();
                            s.bump(Metric::CompilePrograms);
                            s.add(Metric::CompileSuperinsts, superinsts);
                            s.add(Metric::CompileSteps, cp.steps());
                            if summaries.is_some() {
                                s.bump(Metric::AnalysisSummaries);
                                s.add(Metric::AnalysisInlinedCalls, cp.inlined_calls());
                                s.add(Metric::AnalysisTypedLoops, cp.typed_loops());
                            }
                        }
                        if let Some(t) = summaries {
                            self.summaries.write().unwrap().insert(id, t);
                        }
                        self.compiled.write().unwrap().insert(id, Arc::new(cp));
                        self.map
                            .write()
                            .unwrap()
                            .entry(id)
                            .or_insert_with(|| Arc::new(program.clone()));
                        (id, RegisterOutcome::Compiled { funcs, superinsts, analysis })
                    }
                    Err(e) => {
                        quarantine(format!("compile failed: {e}"));
                        (id, RegisterOutcome::Quarantined)
                    }
                }
            }
            Err(diags) => {
                let reason = diags.iter().map(|d| d.render(program)).collect::<Vec<_>>().join("; ");
                quarantine(reason);
                (id, RegisterOutcome::Quarantined)
            }
        }
    }

    /// The closure-compiled form of a verified program.
    pub fn get_compiled(&self, id: ProgramId) -> Option<Arc<msgr_vm::CompiledProgram>> {
        self.compiled.read().unwrap().get(&id).cloned()
    }

    /// The interprocedural effect summaries of a verified program
    /// (`None` when the registry runs with analysis disabled).
    pub fn get_summary(&self, id: ProgramId) -> Option<Arc<msgr_vm::SummaryTable>> {
        self.summaries.read().unwrap().get(&id).cloned()
    }

    /// Snapshot of the registry's `compile_*` counters, merged into
    /// platform reports alongside the per-daemon stats.
    pub fn stats(&self) -> Stats {
        self.stats.read().unwrap().clone()
    }

    /// Look up a *verified* program. Quarantined programs are invisible
    /// here — use [`CodeCache::rejection`] to see why one was refused.
    pub fn get(&self, id: ProgramId) -> Option<Arc<Program>> {
        self.map.read().unwrap().get(&id).cloned()
    }

    /// Order-independent fingerprint of every verified program body —
    /// the code-registry hash carried in anti-entropy gossip digests, so
    /// daemons can detect registry divergence without shipping code.
    pub fn content_hash(&self) -> u64 {
        self.map
            .read()
            .unwrap()
            .keys()
            .fold(0u64, |h, id| h ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Why `id` was quarantined, if it was.
    pub fn rejection(&self, id: ProgramId) -> Option<String> {
        self.rejected.read().unwrap().get(&id).map(|q| q.reason.clone())
    }

    /// Look up a program *even if quarantined*. Injection paths use
    /// this so a refusal surfaces as an in-run fault (with the
    /// `verify_rejected` counter bumped) instead of a registration
    /// error — the daemon, not the shell, is the trust boundary.
    pub fn get_any(&self, id: ProgramId) -> Option<Arc<Program>> {
        self.get(id).or_else(|| self.rejected.read().unwrap().get(&id).map(|q| q.program.clone()))
    }

    /// Whether any registered program suspends on virtual time.
    pub fn any_uses_virtual_time(&self) -> bool {
        self.map.read().unwrap().values().any(|p| {
            p.funcs.iter().any(|f| {
                f.code.iter().any(|op| matches!(op, msgr_vm::Op::SchedAbs | msgr_vm::Op::SchedDlt))
            })
        })
    }
}

/// A messenger queued for execution at a node of this daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct Runnable {
    /// The messenger.
    pub state: MessengerState,
    /// The node it is at.
    pub at: NodeRef,
    /// The link it arrived on (`$last`).
    pub last: Option<LinkInstance>,
}

/// Side effects a daemon hands back to its platform.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Transmit a frame (possibly to this daemon itself — the platform
    /// loops it back, preserving uniform accounting).
    Send {
        /// Destination daemon.
        dst: DaemonId,
        /// The frame.
        wire: Wire,
    },
    /// The live-messenger population changed (replications, deaths).
    LiveDelta(i64),
    /// A messenger died with a runtime error.
    Fault {
        /// Which messenger.
        messenger: MessengerId,
        /// What went wrong.
        error: String,
    },
    /// A named node came into existence (directory update).
    DirectoryAdd {
        /// Node name.
        name: Value,
        /// Placement.
        daemon: DaemonId,
        /// Reference.
        node: NodeRef,
    },
    /// A named node was deleted.
    DirectoryRemove {
        /// Node name.
        name: Value,
    },
    /// (Reliable transport only.) Ask the platform to call
    /// [`Daemon::on_timer`] for the channel `(src, chan)` and sequence
    /// `seq` after `delay` has elapsed, so an unacknowledged frame can be
    /// retransmitted. Harmless if the ack arrives first: the timer
    /// callback finds nothing to resend.
    Timer {
        /// The channel's original sender ([`Wire::Data::src`]) — this
        /// daemon itself except for channels adopted during a failover.
        src: DaemonId,
        /// The channel's original receiver ([`Wire::Data::chan`]).
        chan: DaemonId,
        /// Transport sequence number of the frame.
        seq: u64,
        /// Delay from now until the timer fires.
        delay: SimTime,
    },
    /// (Crash recovery only.) This daemon has declared `victim`
    /// permanently dead and elected itself the successor: the platform
    /// must load the victim's last checkpoint, feed it to
    /// [`Daemon::restore_from`], and then checkpoint this daemon again so
    /// a chained failure cannot lose the adopted state.
    Recover {
        /// The dead daemon whose checkpoint must be restored here.
        victim: DaemonId,
    },
}

// ---- reliable transport ----------------------------------------------------

/// An unacknowledged [`Wire::Data`] frame held for retransmission. The
/// envelope keeps the fully serialized payload — for a migrating
/// messenger this *is* its last snapshot, so a crash of the receiving
/// daemon merely delays the retransmit that re-injects the messenger.
#[derive(Debug, Clone)]
struct Unacked {
    frame: Wire,
    attempts: u32,
    first_sent: SimTime,
    /// Backed-off delay to arm on the *next* retransmission.
    rto: SimTime,
}

#[derive(Debug, Default)]
struct PeerSend {
    next_seq: u64,
    unacked: BTreeMap<u64, Unacked>,
}

#[derive(Debug, Default)]
struct PeerRecv {
    /// Highest sequence delivered with no gaps.
    cum: u64,
    /// Out-of-order frames held back until the gap below them fills, so
    /// delivery stays FIFO per pair even when the network reorders.
    /// Anything `<= cum` or currently held here is a duplicate.
    held: BTreeMap<u64, Wire>,
}

/// Per-daemon reliable-delivery state: sequence numbers, retransmission
/// buffers, and receive-side resequencing. Exists only when the cluster
/// config has an active fault plan; otherwise frames travel bare exactly
/// as they always did.
///
/// Both maps are keyed by the *channel* — the original `(sender,
/// receiver)` pair — not by the physical peer. At steady state the two
/// coincide; after a failover the successor adopts the dead daemon's
/// channels under their original keys, so sequencing (and therefore
/// exactly-once delivery) survives re-homing.
#[derive(Debug)]
struct Xport {
    policy: RetransmitPolicy,
    rng: DetRng,
    send: BTreeMap<(u16, u16), PeerSend>,
    recv: BTreeMap<(u16, u16), PeerRecv>,
}

impl Xport {
    fn new(policy: RetransmitPolicy, rng: DetRng) -> Self {
        Xport { policy, rng, send: BTreeMap::new(), recv: BTreeMap::new() }
    }

    fn jitter(&mut self) -> SimTime {
        if self.policy.jitter > 0 {
            self.rng.below(self.policy.jitter)
        } else {
            0
        }
    }

    /// Accept an incoming data frame. Returns `true` if it is fresh
    /// (never seen before), stashing it for in-order delivery.
    fn accept(&mut self, src: DaemonId, chan: DaemonId, seq: u64, frame: Wire) -> bool {
        let r = self.recv.entry((src.0, chan.0)).or_default();
        if seq <= r.cum || r.held.contains_key(&seq) {
            return false;
        }
        r.held.insert(seq, frame);
        true
    }

    /// Pop the next in-order frame on channel `(src, chan)`, if the
    /// sequence has no gap below it.
    fn next_ready(&mut self, src: DaemonId, chan: DaemonId) -> Option<Wire> {
        let r = self.recv.get_mut(&(src.0, chan.0))?;
        let frame = r.held.remove(&(r.cum + 1))?;
        r.cum += 1;
        Some(frame)
    }

    fn recv_cum(&self, src: DaemonId, chan: DaemonId) -> u64 {
        self.recv.get(&(src.0, chan.0)).map_or(0, |r| r.cum)
    }

    /// Process an ack: drop everything `<= cum` plus the specific `seq`.
    /// Returns the first-send times of newly acknowledged frames.
    fn ack(&mut self, src: DaemonId, chan: DaemonId, cum: u64, seq: u64) -> Vec<SimTime> {
        let Some(p) = self.send.get_mut(&(src.0, chan.0)) else {
            return Vec::new();
        };
        let mut acked = Vec::new();
        while let Some((&s, _)) = p.unacked.first_key_value() {
            if s > cum {
                break;
            }
            acked.push(p.unacked.remove(&s).expect("key just observed").first_sent);
        }
        if seq > cum {
            if let Some(u) = p.unacked.remove(&seq) {
                acked.push(u.first_sent);
            }
        }
        acked
    }

    fn outstanding(&self) -> u64 {
        self.send.values().map(|p| p.unacked.len() as u64).sum()
    }
}

/// Name → location resolution for virtual hops, provided by the
/// platform.
pub trait Directory {
    /// Where the named node lives, if anywhere.
    fn lookup(&self, name: &Value) -> Option<(DaemonId, NodeRef)>;
}

impl Directory for HashMap<Value, (DaemonId, NodeRef)> {
    fn lookup(&self, name: &Value) -> Option<(DaemonId, NodeRef)> {
        self.get(name).copied()
    }
}

type NodeVars = HashMap<Arc<str>, Value>;

/// The virtual-time floor a payload frame pins: losing or resurrecting
/// it (via retransmit or checkpoint restore) re-injects work at this
/// virtual time. Control frames and anti-messengers pin nothing.
fn frame_vtime(w: &Wire) -> Vt {
    match w {
        Wire::Migrate(m) if !m.anti => m.vtime,
        Wire::Create(cn) => cn.messenger.vtime,
        Wire::Batch(frames) => frames.iter().map(frame_vtime).fold(Vt::INFINITY, Vt::min),
        _ => Vt::INFINITY,
    }
}

/// The lane a logical node is pinned to: a pure function of the node id,
/// the cluster seed, and the lane count (splitmix64 finalizer). Every
/// runnable at one node always lands in the same lane, so per-node FIFO
/// and non-preemption survive sharding; different seeds shuffle the
/// node → lane map so no fixed placement is baked into programs.
pub fn lane_of(gid: NodeRef, seed: u64, lanes: usize) -> usize {
    if lanes <= 1 {
        return 0;
    }
    let mut x = seed
        ^ (gid.creator as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ gid.seq.wrapping_mul(0xD1B5_4A32_D192_ED03);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % lanes as u64) as usize
}

/// The daemon's sharded run queues: one FIFO per lane, with every push
/// stamped by a global arrival counter.
///
/// Two dispatch orders are offered (see DESIGN.md §9):
/// * [`LaneSet::pop_global`] serves the *globally oldest* runnable (the
///   minimum arrival stamp over all lane heads). Because stamps are
///   assigned at push time and lane assignment never delays a head past
///   a younger stamp in another lane, this order is identical to a
///   single FIFO queue for **every** lane count — which is what makes
///   `sim` traces byte-identical between `lanes=1` and `lanes=4`.
/// * [`LaneSet::pop_rotating`] drains lanes round-robin, taking from the
///   next non-empty lane when the preferred one is dry (a "steal"). The
///   threads platform uses it so each wakeup sweeps lane-by-lane.
struct LaneSet {
    lanes: Vec<VecDeque<(u64, Runnable)>>,
    seed: u64,
    arrivals: u64,
    len: usize,
}

impl LaneSet {
    fn new(lanes: usize, seed: u64) -> Self {
        LaneSet {
            lanes: (0..lanes.max(1)).map(|_| VecDeque::new()).collect(),
            seed,
            arrivals: 0,
            len: 0,
        }
    }

    fn push(&mut self, r: Runnable) {
        let l = lane_of(r.at, self.seed, self.lanes.len());
        self.arrivals += 1;
        self.lanes[l].push_back((self.arrivals, r));
        self.len += 1;
    }

    fn pop_global(&mut self) -> Option<Runnable> {
        let mut best: Option<(u64, usize)> = None;
        for (i, lane) in self.lanes.iter().enumerate() {
            if let Some(&(stamp, _)) = lane.front() {
                if best.is_none_or(|(s, _)| stamp < s) {
                    best = Some((stamp, i));
                }
            }
        }
        let (_, i) = best?;
        self.len -= 1;
        self.lanes[i].pop_front().map(|(_, r)| r)
    }

    /// Pop the head of the lane at `*cursor`, falling through to the
    /// next non-empty lane. Returns the runnable and whether it was
    /// stolen from a lane other than the preferred one.
    fn pop_rotating(&mut self, cursor: &mut usize) -> Option<(Runnable, bool)> {
        let n = self.lanes.len();
        for k in 0..n {
            let i = (*cursor + k) % n;
            if let Some((_, r)) = self.lanes[i].pop_front() {
                *cursor = (i + 1) % n;
                self.len -= 1;
                return Some((r, k != 0));
            }
        }
        None
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn len(&self) -> usize {
        self.len
    }

    fn iter(&self) -> impl Iterator<Item = &Runnable> {
        self.lanes.iter().flatten().map(|(_, r)| r)
    }

    /// Every queued runnable in global arrival order — the canonical
    /// (lane-count-independent) order checkpoints serialize in.
    fn iter_arrival(&self) -> Vec<&Runnable> {
        let mut v: Vec<&(u64, Runnable)> = self.lanes.iter().flatten().collect();
        v.sort_by_key(|(stamp, _)| *stamp);
        v.into_iter().map(|(_, r)| r).collect()
    }

    /// Keep only runnables matching `f`; returns how many were removed.
    fn retain(&mut self, mut f: impl FnMut(&Runnable) -> bool) -> usize {
        let before = self.len;
        for lane in &mut self.lanes {
            lane.retain(|(_, r)| f(r));
        }
        self.len = self.lanes.iter().map(VecDeque::len).sum();
        before - self.len
    }

    fn clear(&mut self) {
        for lane in &mut self.lanes {
            lane.clear();
        }
        self.len = 0;
    }
}

/// One MESSENGERS daemon.
pub struct Daemon {
    id: DaemonId,
    cfg: Arc<ClusterConfig>,
    topo: Arc<DaemonTopology>,
    codes: CodeCache,
    natives: Arc<RwLock<NativeRegistry>>,
    nodes: HashMap<NodeRef, LogicalNode>,
    init: NodeRef,
    node_seq: u64,
    link_seq: u64,
    msgr_seq: u64,
    rr: usize,
    lanes: LaneSet,
    /// Round-robin cursor for [`LaneSet::pop_rotating`] (threads drain).
    lane_cursor: usize,
    pending: PendingQueue<Runnable>,
    // Optimistic-mode queue, ordered by the Time-Warp event key
    // (vtime, messenger id) so tie-breaking matches straggler detection.
    opt_queue: std::collections::BTreeMap<(Vt, u64), Runnable>,
    part: Participant,
    coord: Option<Coordinator>,
    tw: HashMap<NodeRef, TwNode<Option<NodeVars>, Runnable>>,
    anti_pending: HashSet<MessengerId>,
    xport: Option<Xport>,
    // ---- crash recovery (active only when `cfg.recovery_armed()`) ----
    /// Recovery armed: the fault plan can kill a daemon permanently.
    recovery: bool,
    /// Monotone membership view: `alive[d]` flips to `false` exactly once.
    alive: Vec<bool>,
    /// Failure-detector soft state (reset whenever the peer is heard).
    suspect: Vec<bool>,
    /// When each peer was last heard from (any frame, incl. heartbeats).
    last_heard: Vec<SimTime>,
    /// Membership epoch: number of evictions this daemon knows of.
    mem_epoch: u64,
    /// Quorum control plane: one single-decree Paxos instance per
    /// `(victim, seq)`. `Some` only when recovery is armed on a cluster
    /// of at least two (a singleton has no quorum to consult).
    ctrl: Option<msgr_ctrl::Quorum>,
    /// Seeded peer-pick stream for the anti-entropy gossip schedule.
    gossip_rng: DetRng,
    /// Every eviction this daemon knows of, as `(victim, floor)` — the
    /// gossip digest's membership payload.
    evictions: Vec<(u16, f64)>,
    /// Highest GVT estimate seen (via the coordinator or gossip hints).
    gvt_hint: f64,
    /// Output-commit stage: durable effects held back until the next
    /// checkpoint flush, so a death between checkpoints rolls back
    /// cleanly (the work re-executes from the snapshot, exactly once).
    stage: Vec<Effect>,
    /// Deferred transport acks `(src, chan, seq)`: sent only at the
    /// checkpoint flush, so a sender drops a frame from its retransmit
    /// buffer only once the delivery is pinned in a snapshot here.
    pending_acks: Vec<(DaemonId, DaemonId, u64)>,
    /// Minimum virtual time pinned in this daemon's last checkpoint —
    /// the floor a restore can resurrect; GVT must never pass it.
    last_ckpt_min: Vt,
    stats: Stats,
    /// Flight recorder; a no-op unless `cfg.trace.enabled`. Deliberately
    /// NOT volatile state: a kill (`gut`) keeps it so the last window of
    /// events before the crash survives into the merged trace.
    rec: FlightRecorder,
    /// Cost-attribution profiler; `None` unless `cfg.profile`. Pure
    /// bookkeeping — charges nothing to the simulation cost model.
    prof: Option<Box<Prof>>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("id", &self.id)
            .field("nodes", &self.nodes.len())
            .field("ready", &self.lanes.len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl Daemon {
    /// Create daemon `id` of a cluster of `cfg.daemons`, with its `init`
    /// node. Daemon 0 hosts the GVT coordinator.
    pub fn new(
        id: DaemonId,
        cfg: Arc<ClusterConfig>,
        topo: Arc<DaemonTopology>,
        codes: CodeCache,
        natives: Arc<RwLock<NativeRegistry>>,
    ) -> Self {
        let coord = (id.0 == 0).then(|| Coordinator::new(cfg.daemons));
        // One independent jitter stream per daemon, forked off the run
        // seed so transport randomness never perturbs other draws.
        let xport = cfg
            .reliable()
            .then(|| Xport::new(cfg.retransmit, DetRng::new(cfg.seed).fork(0xACC + id.0 as u64)));
        let recovery = cfg.recovery_armed();
        let n = cfg.daemons;
        let trace_cfg = cfg.trace.clone();
        let lanes = LaneSet::new(cfg.lane_count(), cfg.seed);
        let ctrl = (recovery && n >= 2).then(|| msgr_ctrl::Quorum::new(id.0, n as u16));
        // Gossip peer picks get their own fork so adding an exchange
        // never perturbs transport jitter or lane sharding.
        let gossip_rng = DetRng::new(cfg.seed).fork(0x605_5190 ^ u64::from(id.0));
        let prof = cfg.profile.then(|| Box::new(Prof::new(cfg.profile_interval)));
        let mut d = Daemon {
            id,
            cfg,
            topo,
            codes,
            natives,
            nodes: HashMap::new(),
            init: NodeRef::new(id.0, 0),
            node_seq: 0,
            link_seq: 0,
            msgr_seq: 0,
            rr: 0,
            lanes,
            lane_cursor: 0,
            pending: PendingQueue::new(),
            opt_queue: std::collections::BTreeMap::new(),
            part: Participant::new(id.0),
            coord,
            tw: HashMap::new(),
            anti_pending: HashSet::new(),
            xport,
            recovery,
            alive: vec![true; n],
            suspect: vec![false; n],
            last_heard: vec![0; n],
            mem_epoch: 0,
            ctrl,
            gossip_rng,
            evictions: Vec::new(),
            gvt_hint: 0.0,
            stage: Vec::new(),
            pending_acks: Vec::new(),
            last_ckpt_min: Vt::INFINITY,
            stats: Stats::new(),
            rec: FlightRecorder::new(id.0, &trace_cfg),
            prof,
        };
        let init = d.build_node(Value::str("init"));
        d.init = init;
        d
    }

    /// This daemon's id.
    pub fn id(&self) -> DaemonId {
        self.id
    }

    /// The daemon's `init` node.
    pub fn init_node(&self) -> NodeRef {
        self.init
    }

    /// Counters collected so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The flight recorder (platform stamps the clock through this).
    pub fn recorder_mut(&mut self) -> &mut FlightRecorder {
        &mut self.rec
    }

    /// Drain the flight recorder: this daemon's id, its buffered events,
    /// plus the count lost to the ring bound. Called by the platform at
    /// the end of a run; the recorder stays armed, and survives kills
    /// (see [`Daemon::gut`]).
    pub fn take_trace(&mut self) -> (u16, Vec<TraceEvent>, u64) {
        let (evs, dropped) = self.rec.drain();
        (self.id.0, evs, dropped)
    }

    // ---- cost-attribution profiling hooks ---------------------------------
    //
    // All of these are single-branch no-ops with profiling off; none of
    // them touches the simulation cost model or the flight recorder's
    // event stream shape (ledgers/samples are *extra* events).

    /// A messenger became runnable in a lane.
    fn prof_enqueue(&mut self, mid: u64) {
        let rt = self.rec.now();
        if let Some(p) = self.prof.as_mut() {
            let now = p.now(rt);
            p.on_enqueue(mid, now);
        }
    }

    /// A messenger parked on virtual time (pending queue).
    fn prof_park(&mut self, mid: u64) {
        let rt = self.rec.now();
        if let Some(p) = self.prof.as_mut() {
            let now = p.now(rt);
            p.on_park(mid, now);
        }
    }

    /// A messenger was popped from a lane for execution.
    fn prof_dequeue(&mut self, mid: u64) {
        let rt = self.rec.now();
        if let Some(p) = self.prof.as_mut() {
            let now = p.now(rt);
            p.on_dequeue(mid, now);
        }
    }

    /// Emit the finished ledger for `mid` as a `phase_ledger` event and
    /// drop it. `parent` is 0 except for sender-side partial ledgers.
    fn prof_retire(&mut self, mid: u64, vt: f64) {
        if self.prof.is_none() {
            return;
        }
        let taken = self.prof.as_mut().and_then(|p| {
            let credit = p.transport.remove(&mid).unwrap_or(0);
            p.take(mid).map(|mut l| {
                l.xport += credit;
                l
            })
        });
        if let Some(l) = taken {
            self.stats.bump(Metric::ProfLedgers);
            self.rec.emit(
                vt,
                EventKind::PhaseLedger {
                    mid,
                    born: l.born,
                    parent: 0,
                    queue: l.queue,
                    verify: l.verify,
                    exec: l.exec,
                    enc: l.enc,
                    xport: l.xport,
                    park: l.park,
                    stall: l.stall,
                    total: l.total(),
                },
            );
        }
    }

    /// Emit a sender-side partial ledger for an outgoing replica: only
    /// the encode cost is known here; `parent` ties it to the ledger of
    /// the messenger that forked it so `msgr profile` can stitch the
    /// cross-daemon critical path.
    fn prof_fork(&mut self, mid: u64, parent: u64, enc: u64, vt: f64) {
        if self.prof.is_none() {
            return;
        }
        self.stats.bump(Metric::ProfLedgers);
        self.rec.emit(
            vt,
            EventKind::PhaseLedger {
                mid,
                born: mid,
                parent,
                queue: 0,
                verify: 0,
                exec: 0,
                enc,
                xport: 0,
                park: 0,
                stall: 0,
                total: enc,
            },
        );
    }

    /// Charge receive-side work (`verify` or `enc`) to `mid`'s ledger.
    fn prof_charge_recv(&mut self, mid: u64, verify: u64, enc: u64) {
        if let Some(p) = self.prof.as_mut() {
            let l = p.ledger(mid);
            l.verify += verify;
            l.enc += enc;
        }
    }

    /// Platform hook (threads): switch the profiler onto wall-clock time
    /// (the recorder `rt` is pinned to 0 there).
    pub fn profile_wallclock(&mut self) {
        if let Some(p) = self.prof.as_mut() {
            p.start_wallclock();
        }
    }

    /// Platform hook (sim): credit `ns` of in-flight transport time to
    /// every messenger carried inside `wire`, before the frame is
    /// processed. Anti-messengers carry no ledger.
    pub fn profile_transport(&mut self, wire: &Wire, ns: u64) {
        fn walk(p: &mut Prof, w: &Wire, ns: u64) {
            match w {
                Wire::Migrate(m) if !m.anti => p.credit_transport(m.id.0, ns),
                Wire::Create(c) => p.credit_transport(c.messenger.id.0, ns),
                Wire::Batch(ws) => {
                    for w in ws {
                        walk(p, w, ns);
                    }
                }
                Wire::Data { frame, .. } => walk(p, frame, ns),
                _ => {}
            }
        }
        if ns == 0 {
            return;
        }
        if let Some(p) = self.prof.as_mut() {
            walk(p, wire, ns);
        }
    }

    /// Platform hook (sim): attribute `ns` of recovery stall to every
    /// messenger the latest checkpoint restore revived.
    pub fn profile_recovery_stall(&mut self, ns: u64) {
        if let Some(p) = self.prof.as_mut() {
            p.charge_recovery_stall(ns);
        }
    }

    /// Whether any messenger is ready to execute right now.
    pub fn has_work(&self) -> bool {
        match self.cfg.vt_mode {
            VtMode::Conservative => !self.lanes.is_empty(),
            VtMode::Optimistic => !self.opt_queue.is_empty() || !self.lanes.is_empty(),
        }
    }

    /// Whether anything (ready or suspended) exists on this daemon.
    pub fn has_any_messengers(&self) -> bool {
        !self.lanes.is_empty() || !self.pending.is_empty() || !self.opt_queue.is_empty()
    }

    /// The minimum virtual time over all local messengers — this
    /// daemon's contribution to GVT.
    pub fn local_min(&self) -> Vt {
        let ready_min = self.lanes.iter().map(|r| r.state.vtime).fold(Vt::INFINITY, Vt::min);
        let pending_min = self.pending.min_wake().unwrap_or(Vt::INFINITY);
        let opt_min = self.opt_queue.keys().next().map(|(t, _)| *t).unwrap_or(Vt::INFINITY);
        ready_min.min(pending_min).min(opt_min)
    }

    /// The GVT this daemon currently knows.
    pub fn known_gvt(&self) -> Vt {
        self.part.gvt()
    }

    /// Total Time-Warp rollbacks performed here.
    pub fn rollbacks(&self) -> u64 {
        self.stats.counter("rollbacks")
    }

    // ---- identifiers -------------------------------------------------------

    fn alloc_node(&mut self) -> NodeRef {
        self.node_seq += 1;
        NodeRef::new(self.id.0, self.node_seq)
    }

    /// Allocate a cluster-unique link instance id.
    pub fn alloc_link(&mut self) -> LinkInstance {
        self.link_seq += 1;
        LinkInstance(((self.id.0 as u64) << 48) | self.link_seq)
    }

    fn alloc_mid(&mut self) -> MessengerId {
        self.msgr_seq += 1;
        MessengerId::compose(self.id.0, self.msgr_seq)
    }

    // ---- platform-facing construction ---------------------------------------

    /// Create a logical node directly (initial topology construction and
    /// the `init` node). Named nodes should be announced to the
    /// directory by the caller.
    pub fn build_node(&mut self, name: Value) -> NodeRef {
        let gid = self.alloc_node();
        self.nodes.insert(gid, LogicalNode::new(gid, name));
        gid
    }

    /// Install one half of a link on an existing node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist (construction-time bug).
    pub fn install_link(&mut self, node: NodeRef, rec: LinkRec) {
        self.nodes.get_mut(&node).expect("install_link on missing node").links.push(rec);
    }

    /// Look up a program in the shared code registry (platform helper).
    /// Quarantined programs *are* returned — launching one is allowed;
    /// the refusal happens (and is counted) when a daemon executes it.
    pub fn codes_get(&self, id: ProgramId) -> Option<Arc<Program>> {
        self.codes.get_any(id)
    }

    /// Iterate this daemon's logical nodes (diagnostics, dumps).
    pub fn nodes(&self) -> impl Iterator<Item = &LogicalNode> {
        let mut v: Vec<&LogicalNode> = self.nodes.values().collect();
        v.sort_by_key(|n| n.gid);
        v.into_iter()
    }

    /// Find a local node by name.
    pub fn find_node(&self, name: &Value) -> Option<NodeRef> {
        self.nodes.values().find(|n| n.name.loose_eq(name)).map(|n| n.gid)
    }

    /// Access a node.
    pub fn node(&self, gid: NodeRef) -> Option<&LogicalNode> {
        self.nodes.get(&gid)
    }

    /// Read a node variable.
    pub fn node_var(&self, gid: NodeRef, var: &str) -> Option<Value> {
        self.nodes.get(&gid).map(|n| n.var(var))
    }

    /// Write a node variable (topology/setup phase).
    pub fn set_node_var(&mut self, gid: NodeRef, var: &str, v: Value) {
        if let Some(n) = self.nodes.get_mut(&gid) {
            n.set_var(var, v);
        }
    }

    /// Launch a fresh messenger at `at` (injection). Returns its id.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError::Arity`] if `args` do not match the entry
    /// function.
    pub fn launch(
        &mut self,
        program: &Program,
        args: &[Value],
        at: NodeRef,
    ) -> Result<MessengerId, VmError> {
        let id = self.alloc_mid();
        let state = MessengerState::launch(program, id, args)?;
        self.rec.emit(state.vtime.as_f64(), EventKind::MsgrInject { mid: id.0 });
        self.enqueue(Runnable { state, at, last: None });
        Ok(id)
    }

    fn enqueue(&mut self, r: Runnable) {
        match self.cfg.vt_mode {
            VtMode::Conservative => {
                if r.state.vtime <= self.part.gvt() {
                    self.prof_enqueue(r.state.id.0);
                    self.lanes.push(r);
                } else {
                    self.prof_park(r.state.id.0);
                    self.pending.push(r.state.vtime, r);
                }
            }
            VtMode::Optimistic => {
                self.prof_enqueue(r.state.id.0);
                self.opt_queue.insert((r.state.vtime, r.state.id.0), r);
            }
        }
    }

    // ---- wire handling -------------------------------------------------------

    /// Process an incoming frame; returns the CPU cost of accepting it.
    ///
    /// Equivalent to [`Daemon::on_wire_at`] at platform time 0; platforms
    /// that track a clock (the simulator) should prefer `on_wire_at` so
    /// the transport can measure delivery latency.
    pub fn on_wire(&mut self, wire: Wire, fx: &mut Vec<Effect>) -> u64 {
        self.on_wire_at(0, wire, fx)
    }

    /// Process an incoming frame at platform time `now`; returns the CPU
    /// cost of accepting it.
    pub fn on_wire_at(&mut self, now: SimTime, wire: Wire, fx: &mut Vec<Effect>) -> u64 {
        self.rec.set_now(now);
        let cost = self.on_wire_inner(now, wire, fx);
        self.stage_durable(fx);
        cost
    }

    fn on_wire_inner(&mut self, now: SimTime, wire: Wire, fx: &mut Vec<Effect>) -> u64 {
        let c = self.cfg.costs;
        match wire {
            Wire::Data { src, chan, seq, frame } => {
                let mut cost = c.gvt_msg_ns;
                // The physical transmitter is whoever owns the channel's
                // sender slot (the sender itself at steady state).
                let from = self.owner(src);
                self.heard_from(now, from);
                let mut ready = Vec::new();
                let cum;
                {
                    let Some(x) = self.xport.as_mut() else {
                        // Transport disabled: treat the envelope as
                        // transparent (only reachable by hand-fed frames
                        // in tests).
                        return cost + self.on_wire_inner(now, *frame, fx);
                    };
                    let fresh = x.accept(src, chan, seq, *frame);
                    // Resequence: everything deliverable in order comes
                    // out now.
                    if fresh {
                        while let Some(f) = x.next_ready(src, chan) {
                            ready.push(f);
                        }
                    } else {
                        self.stats.bump(Metric::XportDupDropped);
                    }
                    cum = x.recv_cum(src, chan);
                }
                if self.recovery {
                    // Output commit: the ack goes out only once the
                    // delivery is pinned in a checkpoint, so the sender's
                    // retransmit buffer stays the log of every frame not
                    // yet durable here.
                    self.stats.bump(Metric::AcksDeferred);
                    self.pending_acks.push((src, chan, seq));
                } else {
                    // Ack every copy — the ack for an earlier copy may
                    // itself have been lost.
                    fx.push(Effect::Send { dst: from, wire: Wire::Ack { src, chan, cum, seq } });
                }
                for f in ready {
                    cost += self.on_wire_inner(now, f, fx);
                }
                cost
            }
            Wire::Ack { src, chan, cum, seq } => {
                let from = self.owner(chan);
                self.heard_from(now, from);
                if let Some(x) = self.xport.as_mut() {
                    let mut acked = 0;
                    for first_sent in x.ack(src, chan, cum, seq) {
                        self.stats.bump(Metric::XportAcked);
                        self.stats.record(Metric::XportDeliveryNs, now.saturating_sub(first_sent));
                        acked += 1;
                    }
                    if acked > 0 {
                        self.rec.emit_sys(EventKind::FrameAck { chan: chan.0, seq });
                    }
                }
                c.gvt_msg_ns
            }
            Wire::Beat { from, epoch: _ } => {
                self.heard_from(now, from);
                c.gvt_msg_ns
            }
            Wire::Evict { victim, epoch, floor } => {
                self.apply_evict(victim, epoch, floor, fx);
                c.gvt_msg_ns
            }
            Wire::Ctrl { from, msg } => {
                self.heard_from(now, from);
                let step = self.ctrl.as_mut().map(|q| q.deliver(from.0, msg));
                if let Some(step) = step {
                    self.dispatch_ctrl(step, fx);
                }
                c.gvt_msg_ns
            }
            Wire::Gossip { from, reply, digest } => {
                self.heard_from(now, from);
                let mine = self.digest();
                // Pull half of push-pull: reply with our digest iff we
                // know something the sender doesn't. Replies are never
                // replied to, so one exchange is at most two frames.
                if !reply && mine.knows_more_than(&digest) {
                    self.stats.bump(Metric::GossipReplies);
                    fx.push(Effect::Send {
                        dst: from,
                        wire: Wire::Gossip { from: self.id, reply: true, digest: mine.clone() },
                    });
                }
                if digest.knows_more_than(&mine) {
                    self.merge_digest(&digest, from, fx);
                }
                c.gvt_msg_ns
            }
            Wire::CkptPush { owner, ver, snapshot } => {
                // Durable-write path: the platform installed the replica
                // before delivery; the daemon accounts it and acks the
                // owner so the write-ahead barrier can release.
                self.heard_from(now, owner);
                self.stats.bump(Metric::CkptReplicas);
                self.stats.add(Metric::CkptReplicaBytes, snapshot.len() as u64);
                self.rec.emit_sys(EventKind::CkptReplica { owner: owner.0, ver });
                fx.push(Effect::Send {
                    dst: owner,
                    wire: Wire::CkptAck { owner, holder: self.id, ver },
                });
                c.gvt_msg_ns + snapshot.len() as u64 * c.per_byte_copy_ns
            }
            Wire::CkptAck { owner: _, holder, ver: _ } => {
                self.heard_from(now, holder);
                self.stats.bump(Metric::CkptReplicaAcks);
                c.gvt_msg_ns
            }
            Wire::Migrate(m) => {
                self.part.on_receive(m.epoch, m.vtime);
                self.stats.bump(Metric::MigrationsIn);
                if m.anti {
                    self.annihilate(m.id, fx);
                    return c.gvt_msg_ns;
                }
                let cost = c.hop_recv_ns + m.bytes.len() as u64 * c.per_byte_copy_ns;
                // Receive-side attribution: fixed accept/verify overhead
                // vs byte-proportional decode.
                self.prof_charge_recv(
                    m.id.0,
                    c.hop_recv_ns,
                    m.bytes.len() as u64 * c.per_byte_copy_ns,
                );
                let vt = m.vtime.as_f64();
                match vmwire::decode_messenger(m.bytes) {
                    Ok(state) => {
                        if self.anti_pending.remove(&m.id) {
                            // The anti-messenger got here first.
                            fx.push(Effect::LiveDelta(-1));
                            self.stats.bump(Metric::Annihilations);
                            self.prof_retire(m.id.0, vt);
                        } else if let Some(reason) = self.codes.rejection(state.program) {
                            // Refuse quarantined code at the door — a
                            // migrating messenger never even enqueues.
                            self.stats.bump(Metric::VerifyRejected);
                            fx.push(Effect::Fault {
                                messenger: m.id,
                                error: format!(
                                    "program {} failed verification: {reason}",
                                    state.program
                                ),
                            });
                            fx.push(Effect::LiveDelta(-1));
                            self.prof_retire(m.id.0, vt);
                        } else if self.nodes.contains_key(&m.to.1) {
                            self.rec
                                .emit(state.vtime.as_f64(), EventKind::MsgrArrive { mid: m.id.0 });
                            self.enqueue(Runnable { state, at: m.to.1, last: m.via });
                        } else {
                            // Destination node was deleted in flight.
                            fx.push(Effect::LiveDelta(-1));
                            self.stats.bump(Metric::DeadLetters);
                            self.prof_retire(m.id.0, vt);
                        }
                    }
                    Err(e) => {
                        fx.push(Effect::Fault { messenger: m.id, error: e.to_string() });
                        fx.push(Effect::LiveDelta(-1));
                        self.prof_retire(m.id.0, vt);
                    }
                }
                cost
            }
            Wire::Create(cn) => {
                self.part.on_receive(cn.messenger.epoch, cn.messenger.vtime);
                self.stats.bump(Metric::RemoteCreates);
                let mut node = LogicalNode::new(cn.gid, cn.name.clone());
                node.links.push(LinkRec {
                    inst: cn.inst,
                    name: cn.link_name.clone(),
                    orient: cn.orient_at_new,
                    peer: cn.origin,
                    peer_name: cn.origin_name.clone(),
                });
                self.nodes.insert(cn.gid, node);
                if cn.name != Value::Null {
                    fx.push(Effect::DirectoryAdd {
                        name: cn.name.clone(),
                        daemon: self.id,
                        node: cn.gid,
                    });
                }
                let cost = c.create_node_ns
                    + c.hop_recv_ns
                    + cn.messenger.bytes.len() as u64 * c.per_byte_copy_ns;
                self.prof_charge_recv(
                    cn.messenger.id.0,
                    c.create_node_ns + c.hop_recv_ns,
                    cn.messenger.bytes.len() as u64 * c.per_byte_copy_ns,
                );
                let vt = cn.messenger.vtime.as_f64();
                match vmwire::decode_messenger(cn.messenger.bytes.clone()) {
                    Ok(state) => {
                        if let Some(reason) = self.codes.rejection(state.program) {
                            self.stats.bump(Metric::VerifyRejected);
                            fx.push(Effect::Fault {
                                messenger: cn.messenger.id,
                                error: format!(
                                    "program {} failed verification: {reason}",
                                    state.program
                                ),
                            });
                            fx.push(Effect::LiveDelta(-1));
                            self.prof_retire(cn.messenger.id.0, vt);
                        } else {
                            self.enqueue(Runnable { state, at: cn.gid, last: Some(cn.inst) });
                        }
                    }
                    Err(e) => {
                        fx.push(Effect::Fault { messenger: cn.messenger.id, error: e.to_string() });
                        fx.push(Effect::LiveDelta(-1));
                        self.prof_retire(cn.messenger.id.0, vt);
                    }
                }
                cost
            }
            Wire::Unlink { node, inst } => {
                if let Some(n) = self.nodes.get_mut(&node) {
                    n.unlink(inst);
                    // Singleton collection is deferred while messengers
                    // are present (e.g. the deleting messenger itself has
                    // just arrived over the link being torn down).
                    if n.is_singleton() && node != self.init && !self.node_occupied(node) {
                        self.delete_node(node, fx);
                    }
                }
                c.gvt_msg_ns
            }
            Wire::Gvt(msg) => {
                self.on_gvt(msg, fx);
                c.gvt_msg_ns
            }
            Wire::GvtKick => {
                self.gvt_begin(fx);
                0
            }
            Wire::Batch(frames) => {
                // One unwrap cost for the shared envelope, then the
                // inner frames are processed in coalescing order —
                // exactly what would have happened had they arrived as
                // individual frames back-to-back.
                let mut cost = c.gvt_msg_ns;
                for f in frames {
                    cost += self.on_wire_inner(now, f, fx);
                }
                cost
            }
        }
    }

    // ---- reliable transport (sender side) ----------------------------------

    /// Wrap this daemon's outgoing payload frames in [`Wire::Data`]
    /// envelopes and arm their retransmission timers. Platforms call
    /// this on every effect batch before applying it; with the default
    /// benign fault plan it is a no-op.
    ///
    /// Acks, heartbeats, and frames that are already envelopes (a
    /// retransmission from [`Daemon::on_timer`]) pass through untouched.
    /// A lost heartbeat *is* the failure detector's signal, so sealing
    /// one would defeat it. Loopback sends also pass through — except
    /// under recovery, where a frame in flight to *this* daemon must
    /// survive this daemon's own death (it sits in the checkpointed
    /// Coalesce this effect batch's payload sends: consecutive-per-peer
    /// `Migrate`/`Create`/`Unlink` frames headed for the same destination
    /// collapse into one [`Wire::Batch`] envelope, within the configured
    /// [`crate::BatchPolicy`] budget. Control traffic (GVT, acks,
    /// heartbeats, evictions) passes through untouched, and a batch is
    /// only formed when it actually merges two or more frames. A no-op
    /// unless `cfg.batching()`.
    ///
    /// Runs *before* [`Daemon::seal_effects`]: under the reliable
    /// transport the whole batch is then sealed into a single
    /// [`Wire::Data`] envelope with one sequence number, so exactly-once
    /// delivery of every inner frame follows from exactly-once delivery
    /// of the envelope (the batch retransmits and acks as a unit).
    pub fn coalesce_sends(&mut self, fx: &mut Vec<Effect>) {
        if !self.cfg.batching() {
            return;
        }
        let pol = self.cfg.batch;
        let header = self.cfg.costs.wire_header_bytes;
        enum Slot {
            Done(Effect),
            // dst, frames, summed inner bytes, summed stand-alone bytes
            Open(DaemonId, Vec<Wire>, u64, u64),
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(fx.len());
        let mut open: std::collections::BTreeMap<u16, usize> = std::collections::BTreeMap::new();
        for e in fx.drain(..) {
            let batchable = matches!(
                &e,
                Effect::Send { wire: Wire::Migrate(_) | Wire::Create(_) | Wire::Unlink { .. }, .. }
            );
            if !batchable {
                slots.push(Slot::Done(e));
                continue;
            }
            let Effect::Send { dst, wire } = e else { unreachable!() };
            let inner = wire.wire_bytes(4);
            let alone = wire.wire_bytes(header);
            if let Some(&i) = open.get(&dst.0) {
                if let Slot::Open(_, frames, inner_sum, alone_sum) = &mut slots[i] {
                    if frames.len() < pol.max_frames && *inner_sum + inner <= pol.max_bytes {
                        frames.push(wire);
                        *inner_sum += inner;
                        *alone_sum += alone;
                        continue;
                    }
                }
                // Budget exhausted: close the running batch and start a
                // fresh one at this frame's position.
                open.remove(&dst.0);
            }
            let i = slots.len();
            slots.push(Slot::Open(dst, vec![wire], inner, alone));
            open.insert(dst.0, i);
        }
        for slot in slots {
            match slot {
                Slot::Done(e) => fx.push(e),
                Slot::Open(dst, mut frames, _, alone_sum) => {
                    if frames.len() < 2 {
                        let wire = frames.pop().expect("open slot holds one frame");
                        fx.push(Effect::Send { dst, wire });
                        continue;
                    }
                    let n = frames.len() as u64;
                    let batch = Wire::Batch(frames);
                    let saved = alone_sum.saturating_sub(batch.wire_bytes(header));
                    self.stats.bump(Metric::BatchFlushes);
                    self.stats.add(Metric::BatchFrames, n);
                    self.stats.add(Metric::BatchBytesSaved, saved);
                    fx.push(Effect::Send { dst, wire: batch });
                }
            }
        }
    }

    /// retransmit buffer like any other frame).
    pub fn seal_effects(&mut self, now: SimTime, fx: &mut Vec<Effect>) {
        self.coalesce_sends(fx);
        if self.xport.is_none() {
            return;
        }
        self.rec.set_now(now);
        let mut timers = Vec::new();
        for e in fx.iter_mut() {
            let Effect::Send { dst, wire } = e else {
                continue;
            };
            if matches!(
                wire,
                Wire::Data { .. }
                    | Wire::Ack { .. }
                    | Wire::GvtKick
                    | Wire::Beat { .. }
                    | Wire::Ctrl { .. }
                    | Wire::Gossip { .. }
                    | Wire::CkptPush { .. }
                    | Wire::CkptAck { .. }
            ) {
                continue;
            }
            if *dst == self.id && !self.recovery {
                continue;
            }
            let chan = *dst;
            let route = self.owner(chan);
            let x = self.xport.as_mut().expect("checked above");
            let p = x.send.entry((self.id.0, chan.0)).or_default();
            p.next_seq += 1;
            let seq = p.next_seq;
            let inner = std::mem::replace(wire, Wire::GvtKick);
            let data = Wire::Data { src: self.id, chan, seq, frame: Box::new(inner) };
            let frame_bytes = data.wire_bytes(self.cfg.costs.wire_header_bytes);
            let rto = x.policy.rto;
            let delay = rto + x.jitter();
            let p = x.send.entry((self.id.0, chan.0)).or_default();
            p.unacked
                .insert(seq, Unacked { frame: data.clone(), attempts: 1, first_sent: now, rto });
            *wire = data;
            *dst = route;
            timers.push(Effect::Timer { src: self.id, chan, seq, delay });
            self.stats.bump(Metric::XportSent);
            self.rec.emit_sys(EventKind::FrameSend { chan: chan.0, seq, bytes: frame_bytes });
        }
        fx.extend(timers);
    }

    /// A retransmission timer fired for sequence `seq` on channel
    /// `(src, chan)`. If the frame is still unacknowledged, resend it
    /// with doubled timeout (plus deterministic jitter) or — after
    /// `max_attempts` transmissions — give up and account the loss.
    /// Every retry re-resolves the channel's current owner, so frames
    /// addressed to a daemon that has since died follow it to its
    /// successor. Returns the CPU cost.
    pub fn on_timer(
        &mut self,
        now: SimTime,
        src: DaemonId,
        chan: DaemonId,
        seq: u64,
        fx: &mut Vec<Effect>,
    ) -> u64 {
        self.rec.set_now(now);
        let route = self.owner(chan);
        let key = (src.0, chan.0);
        let Some(x) = self.xport.as_mut() else {
            return 0;
        };
        let policy = x.policy;
        if !x.send.get(&key).is_some_and(|p| p.unacked.contains_key(&seq)) {
            return 0; // acked in the meantime: stale timer, no work
        }
        let jitter = x.jitter();
        let p = x.send.get_mut(&key).expect("checked above");
        let u = p.unacked.get_mut(&seq).expect("checked above");
        if u.attempts >= policy.max_attempts {
            let u = p.unacked.remove(&seq).expect("present");
            self.stats.bump(Metric::XportGaveUp);
            // If the frame carried live messengers (possibly several,
            // when a batch was sealed into one envelope), they are now
            // lost for good: keep the population ledger honest and
            // surface faults so no run under a sane policy silently
            // passes.
            fn collect_lost(w: &Wire, out: &mut Vec<MessengerId>) {
                match w {
                    Wire::Migrate(m) if !m.anti => out.push(m.id),
                    Wire::Create(cn) => out.push(cn.messenger.id),
                    Wire::Batch(frames) => {
                        for f in frames {
                            collect_lost(f, out);
                        }
                    }
                    _ => {}
                }
            }
            let mut lost = Vec::new();
            if let Wire::Data { frame, .. } = &u.frame {
                collect_lost(frame, &mut lost);
            }
            for id in lost {
                fx.push(Effect::Fault {
                    messenger: id,
                    error: format!(
                        "delivery to d{} abandoned after {} attempts",
                        chan.0, u.attempts
                    ),
                });
                fx.push(Effect::LiveDelta(-1));
            }
            self.stage_durable(fx);
            return self.cfg.costs.gvt_msg_ns;
        }
        u.attempts += 1;
        let attempt = u.attempts;
        let delay = u.rto + jitter;
        u.rto = (u.rto * 2).min(policy.max_rto);
        let frame = u.frame.clone();
        self.stats.bump(Metric::XportRetransmits);
        self.rec.emit_sys(EventKind::FrameRetransmit { chan: chan.0, seq, attempt });
        fx.push(Effect::Send { dst: route, wire: frame });
        fx.push(Effect::Timer { src, chan, seq, delay });
        self.cfg.costs.gvt_msg_ns
    }

    /// Number of sent frames not yet acknowledged (0 when the transport
    /// is off). Platforms count these as outstanding work: the run is
    /// not quiescent while a retransmit buffer is non-empty.
    pub fn unacked_frames(&self) -> u64 {
        self.xport.as_ref().map_or(0, Xport::outstanding)
    }

    // ---- crash recovery ------------------------------------------------------

    /// Durable effects and deferred acks awaiting the next checkpoint
    /// flush (0 when recovery is off). Platforms count these as
    /// outstanding work: the run is not quiescent while anything is
    /// staged.
    pub fn staged_work(&self) -> u64 {
        (self.stage.len() + self.pending_acks.len()) as u64
    }

    /// This daemon's membership epoch (number of evictions it knows of).
    pub fn mem_epoch(&self) -> u64 {
        self.mem_epoch
    }

    /// Whether this daemon's membership view considers `d` alive.
    pub fn is_peer_alive(&self, d: DaemonId) -> bool {
        self.alive.get(d.0 as usize).copied().unwrap_or(false)
    }

    /// The current owner of daemon id `d`: `d` itself while alive, else
    /// the next alive daemon by id (mod cluster size) — the deterministic
    /// successor rule every daemon agrees on once membership views
    /// converge.
    fn owner(&self, d: DaemonId) -> DaemonId {
        if self.alive.get(d.0 as usize).copied().unwrap_or(true) {
            return d;
        }
        let n = self.cfg.daemons as u16;
        for k in 1..n {
            let cand = (d.0 + k) % n;
            if self.alive[cand as usize] {
                return DaemonId(cand);
            }
        }
        d
    }

    /// The successor that must take over `victim`'s state if it dies
    /// *now* (ignores whether the view already has `victim` dead).
    fn successor_of(&self, victim: DaemonId) -> DaemonId {
        let n = self.cfg.daemons as u16;
        for k in 1..n {
            let cand = (victim.0 + k) % n;
            if self.alive[cand as usize] {
                return DaemonId(cand);
            }
        }
        victim
    }

    /// Refresh the failure detector: `d` was just heard from.
    fn heard_from(&mut self, now: SimTime, d: DaemonId) {
        if !self.recovery || d == self.id {
            return;
        }
        let i = d.0 as usize;
        if now > self.last_heard[i] {
            self.last_heard[i] = now;
        }
        self.suspect[i] = false;
    }

    /// Under recovery, divert durable effects (payload sends, census
    /// changes, faults, directory updates) into the output-commit stage;
    /// soft effects (GVT traffic, control frames, timers) stay in `fx`
    /// for immediate application. A no-op when recovery is off.
    fn stage_durable(&mut self, fx: &mut Vec<Effect>) {
        if !self.recovery {
            return;
        }
        let mut keep = Vec::with_capacity(fx.len());
        for e in fx.drain(..) {
            let durable = match &e {
                Effect::Send { wire, .. } => {
                    matches!(wire, Wire::Migrate(_) | Wire::Create(_) | Wire::Unlink { .. })
                }
                Effect::LiveDelta(_)
                | Effect::Fault { .. }
                | Effect::DirectoryAdd { .. }
                | Effect::DirectoryRemove { .. } => true,
                Effect::Timer { .. } | Effect::Recover { .. } => false,
            };
            if durable {
                self.stage.push(e);
            } else {
                keep.push(e);
            }
        }
        *fx = keep;
    }

    /// This daemon's contribution to GVT: the queue minimum plus — under
    /// recovery — everything a crash could roll back or resurrect: staged
    /// (uncommitted) sends, unacknowledged in-flight frames, and the
    /// floor of the last checkpoint a restore would reinstate. With the
    /// drain check disabled after an eviction, these floors are what
    /// keeps Mattern's estimate safe.
    fn gvt_min(&self) -> Vt {
        self.local_min().min(self.recovery_floor())
    }

    fn recovery_floor(&self) -> Vt {
        if !self.recovery {
            return Vt::INFINITY;
        }
        let mut m = self.last_ckpt_min;
        for e in &self.stage {
            if let Effect::Send { wire, .. } = e {
                m = m.min(frame_vtime(wire));
            }
        }
        if let Some(x) = &self.xport {
            for p in x.send.values() {
                for u in p.unacked.values() {
                    if let Wire::Data { frame, .. } = &u.frame {
                        m = m.min(frame_vtime(frame));
                    }
                }
            }
        }
        m
    }

    /// The minimum virtual time pinned by a snapshot taken right now:
    /// every queued messenger plus the payloads held out-of-order in the
    /// resequencing buffers (their senders drop them once our deferred
    /// acks go out, so after the flush this snapshot is their only copy).
    fn snapshot_floor(&self) -> Vt {
        let mut m = self.local_min();
        if let Some(x) = &self.xport {
            for r in x.recv.values() {
                for f in r.held.values() {
                    m = m.min(frame_vtime(f));
                }
            }
        }
        m
    }

    /// One failure-detector round: emit heartbeats to every peer still in
    /// the membership, then advance the suspicion state machine on peer
    /// silence. Alive → Suspect is soft (counted, reversible); Suspect →
    /// Dead is monotone and — on the victim's successor only — triggers
    /// failover via [`Effect::Recover`]. Platforms call this every
    /// [`crate::config::RecoveryPolicy::heartbeat_every`]; a no-op unless
    /// recovery is armed. Returns the CPU cost.
    pub fn on_beat_tick(&mut self, now: SimTime, fx: &mut Vec<Effect>) -> u64 {
        if !self.recovery {
            return 0;
        }
        self.rec.set_now(now);
        let pol = self.cfg.recovery;
        for d in 0..self.cfg.daemons as u16 {
            let i = d as usize;
            if d == self.id.0 || !self.alive[i] {
                continue;
            }
            fx.push(Effect::Send {
                dst: DaemonId(d),
                wire: Wire::Beat { from: self.id, epoch: self.mem_epoch },
            });
        }
        self.stats.bump(Metric::FdBeats);
        let mut verdicts = Vec::new();
        for d in 0..self.cfg.daemons as u16 {
            let i = d as usize;
            if d == self.id.0 || !self.alive[i] {
                continue;
            }
            let silence = now.saturating_sub(self.last_heard[i]);
            if silence >= pol.dead_after {
                verdicts.push(DaemonId(d));
            } else if silence >= pol.suspect_after && !self.suspect[i] {
                self.suspect[i] = true;
                self.stats.bump(Metric::FdSuspects);
            }
        }
        for v in verdicts {
            match self.cfg.succession {
                Succession::Deterministic => self.declare_dead(v, fx),
                Succession::Quorum => self.propose_eviction(v, fx),
            }
        }
        if self.cfg.succession == Succession::Quorum {
            // Anti-entropy: push our digest to one seeded-random alive
            // peer per tick. Epidemic push-pull converges a new fact to
            // every daemon in O(log n) ticks even if the originating
            // broadcast was lost.
            if let Some(peer) = msgr_ctrl::pick_peer(&mut self.gossip_rng, self.id.0, &self.alive) {
                self.stats.bump(Metric::GossipPushes);
                let digest = self.digest();
                fx.push(Effect::Send {
                    dst: DaemonId(peer),
                    wire: Wire::Gossip { from: self.id, reply: false, digest },
                });
            }
        }
        self.cfg.costs.gvt_msg_ns
    }

    /// Propose burying `victim` to the quorum (or nudge a decided but
    /// not-yet-enacted decree along). Called on every beat tick while the
    /// victim is dead-silent and still in the membership, so lost ctrl
    /// frames heal by re-proposal at a higher ballot rather than by
    /// retransmission.
    fn propose_eviction(&mut self, victim: DaemonId, fx: &mut Vec<Effect>) {
        if !self.alive[victim.0 as usize] {
            return;
        }
        let Some(ctrl) = self.ctrl.as_mut() else {
            return;
        };
        // Cascade: if an earlier decree named an heir that has itself
        // died before restoring, open the next instance; if the decree's
        // heir is alive, re-send `Learn` in case it never heard it.
        let seq = match ctrl.decided_for(victim.0) {
            Some((seq, d)) if self.alive[d.successor as usize] => {
                let inst = msgr_ctrl::InstanceId { victim: victim.0, seq };
                if let Some(learn) = ctrl.learn_msg(inst) {
                    self.stats.bump(Metric::CtrlFrames);
                    fx.push(Effect::Send {
                        dst: DaemonId(d.successor),
                        wire: Wire::Ctrl { from: self.id, msg: learn },
                    });
                }
                return;
            }
            Some((seq, _)) => seq + 1,
            None => 0,
        };
        let heir = self.successor_of(victim);
        if heir == victim {
            return; // no live successor: nothing a decree could order
        }
        let decree = msgr_ctrl::Decree {
            victim: victim.0,
            successor: heir.0,
            epoch: (self.mem_epoch + 1) as u32,
        };
        let inst = msgr_ctrl::InstanceId { victim: victim.0, seq };
        self.stats.bump(Metric::CtrlProposals);
        self.rec.emit_sys(EventKind::CtrlPropose { victim: victim.0, seq });
        let step = self.ctrl.as_mut().expect("checked above").propose(inst, decree);
        self.dispatch_ctrl(step, fx);
    }

    /// Turn a consensus [`msgr_ctrl::Step`] into wire traffic, and act on
    /// a freshly learned decree.
    fn dispatch_ctrl(&mut self, step: msgr_ctrl::Step, fx: &mut Vec<Effect>) {
        for (dst, msg) in step.send {
            self.stats.bump(Metric::CtrlFrames);
            fx.push(Effect::Send { dst: DaemonId(dst), wire: Wire::Ctrl { from: self.id, msg } });
        }
        if let Some((inst, decree)) = step.learned {
            self.on_decree(inst, decree, fx);
        }
    }

    /// A burial decree reached quorum. Only the decree-named heir acts
    /// (preserving the single-restorer invariant the deterministic rule
    /// had); everyone else waits for the heir's reliable `Evict`
    /// broadcast, which carries the checkpoint floor GVT must respect.
    fn on_decree(
        &mut self,
        inst: msgr_ctrl::InstanceId,
        decree: msgr_ctrl::Decree,
        fx: &mut Vec<Effect>,
    ) {
        self.stats.bump(Metric::CtrlDecrees);
        self.rec.emit_sys(EventKind::CtrlDecide {
            victim: decree.victim,
            successor: decree.successor,
            seq: inst.seq,
        });
        if !self.alive[decree.victim as usize] || decree.successor != self.id.0 {
            return;
        }
        self.stats.bump(Metric::FdDeaths);
        fx.push(Effect::Recover { victim: DaemonId(decree.victim) });
    }

    /// This daemon's current anti-entropy digest.
    fn digest(&self) -> msgr_ctrl::Digest {
        msgr_ctrl::Digest {
            mem_epoch: self.mem_epoch as u32,
            evictions: self.evictions.clone(),
            code_hash: self.codes.content_hash(),
            gvt: self.gvt_hint,
        }
    }

    /// Fold a peer's digest into local state: unknown evictions apply
    /// (with their floors), the membership epoch ratchets, a registry
    /// hash mismatch is surfaced as a metric, and a newer GVT hint runs
    /// the full advance path (parked messengers revive / fossils
    /// collect — a hint is as good as a coordinator broadcast).
    fn merge_digest(&mut self, d: &msgr_ctrl::Digest, from: DaemonId, fx: &mut Vec<Effect>) {
        self.stats.bump(Metric::GossipMerges);
        self.rec.emit_sys(EventKind::GossipMerge { from: from.0 });
        for &(victim, floor) in &d.evictions {
            if victim != self.id.0 && self.alive.get(victim as usize).copied().unwrap_or(false) {
                self.apply_evict(DaemonId(victim), u64::from(d.mem_epoch), Vt::new(floor), fx);
            }
        }
        self.mem_epoch = self.mem_epoch.max(u64::from(d.mem_epoch));
        if d.code_hash != self.codes.content_hash() {
            self.stats.bump(Metric::GossipCodeMismatch);
        }
        if d.gvt > self.gvt_hint {
            self.advance_gvt_local(Vt::new(d.gvt));
        }
    }

    /// The local failure detector reached a Dead verdict for `victim`.
    /// Only the deterministic successor acts on its own verdict: it asks
    /// the platform to run the failover ([`Effect::Recover`] →
    /// [`Daemon::restore_from`], which also evicts locally and broadcasts
    /// the eviction). Every other daemon — the GVT coordinator included —
    /// waits for the successor's `Evict` frame, because only the restore
    /// knows the checkpoint floor GVT must respect.
    fn declare_dead(&mut self, victim: DaemonId, fx: &mut Vec<Effect>) {
        if !self.alive[victim.0 as usize] {
            return;
        }
        if self.successor_of(victim) != self.id {
            return;
        }
        self.stats.bump(Metric::FdDeaths);
        fx.push(Effect::Recover { victim });
    }

    /// Apply a membership eviction: mark `victim` dead (monotone), rebind
    /// every link record pointing at it to its successor, and — on the
    /// coordinator — evict it from the GVT round with the restored
    /// checkpoint's `floor`.
    fn apply_evict(&mut self, victim: DaemonId, epoch: u64, floor: Vt, fx: &mut Vec<Effect>) {
        if !self.recovery || victim == self.id {
            return;
        }
        let i = victim.0 as usize;
        if !self.alive[i] {
            self.mem_epoch = self.mem_epoch.max(epoch);
            return;
        }
        self.alive[i] = false;
        self.suspect[i] = false;
        self.mem_epoch = (self.mem_epoch + 1).max(epoch);
        self.evictions.push((victim.0, floor.as_f64()));
        self.stats.bump(Metric::Evictions);
        self.rec.emit_sys(EventKind::GvtEvict { victim: victim.0, floor: floor.as_f64() });
        let heir = self.owner(victim);
        for n in self.nodes.values_mut() {
            for l in n.links.iter_mut() {
                if l.peer.0 == victim {
                    l.peer.0 = heir;
                }
            }
        }
        if self.coord.is_some() {
            let action = self.coord.as_mut().expect("checked above").evict(victim.0, floor);
            match action {
                CoordinatorAction::Wait => {}
                CoordinatorAction::PollAll { round } => {
                    self.broadcast_gvt(CtrlMsg::Poll { round }, fx);
                }
                CoordinatorAction::Advance { gvt } => {
                    self.stats.bump(Metric::GvtRounds);
                    self.broadcast_gvt(CtrlMsg::Advance { gvt }, fx);
                }
            }
        }
    }

    /// Phase 1 of a checkpoint: commit everything staged since the last
    /// one. Staged payload sends are sealed into the retransmit buffer
    /// (so the snapshot that follows contains them) and the deferred acks
    /// go out with the cumulative sequence numbers the snapshot pins.
    /// Must be immediately followed by [`Daemon::checkpoint_snapshot`] in
    /// the same platform event: flushing makes effects visible to the
    /// cluster, so the snapshot that backs them must not be lost.
    pub fn checkpoint_flush(&mut self, now: SimTime, fx: &mut Vec<Effect>) {
        if !self.recovery {
            return;
        }
        self.rec.set_now(now);
        let mut out = std::mem::take(&mut self.stage);
        for (src, chan, seq) in std::mem::take(&mut self.pending_acks) {
            let cum = self.xport.as_ref().map_or(0, |x| x.recv_cum(src, chan));
            let route = self.owner(src);
            out.push(Effect::Send { dst: route, wire: Wire::Ack { src, chan, cum, seq } });
        }
        self.seal_effects(now, &mut out);
        fx.append(&mut out);
    }

    /// Phase 2 of a checkpoint: serialize this daemon's durable state —
    /// logical nodes with their variables and links, every parked or
    /// queued messenger, id counters, and the transport channels
    /// (retransmit buffers and resequencing state) — into one snapshot
    /// the platform stores. [`Daemon::restore_from`] is the inverse.
    pub fn checkpoint_snapshot(&mut self) -> Bytes {
        debug_assert!(
            self.stage.is_empty() && self.pending_acks.is_empty(),
            "checkpoint_flush must precede checkpoint_snapshot"
        );
        let mut buf = BytesMut::with_capacity(1024);
        buf.put_u8(1); // snapshot format version
        vmwire::put_varint(&mut buf, self.node_seq);
        vmwire::put_varint(&mut buf, self.link_seq);
        vmwire::put_varint(&mut buf, self.msgr_seq);
        vmwire::put_varint(&mut buf, self.rr as u64);
        // Logical nodes, canonically ordered by id.
        let mut gids: Vec<NodeRef> = self.nodes.keys().copied().collect();
        gids.sort();
        vmwire::put_varint(&mut buf, gids.len() as u64);
        for gid in gids {
            let n = &self.nodes[&gid];
            wirecodec::put_node_ref(&mut buf, gid);
            vmwire::put_value(&mut buf, &n.name);
            let mut keys: Vec<&Arc<str>> = n.vars.keys().collect();
            keys.sort();
            vmwire::put_varint(&mut buf, keys.len() as u64);
            for k in keys {
                vmwire::put_str(&mut buf, k.as_ref());
                vmwire::put_value(&mut buf, &n.vars[k]);
            }
            vmwire::put_varint(&mut buf, n.links.len() as u64);
            for l in &n.links {
                vmwire::put_varint(&mut buf, l.inst.0);
                vmwire::put_value(&mut buf, &l.name);
                wirecodec::put_orient(&mut buf, l.orient);
                vmwire::put_varint(&mut buf, l.peer.0 .0 as u64);
                wirecodec::put_node_ref(&mut buf, l.peer.1);
                vmwire::put_value(&mut buf, &l.peer_name);
            }
        }
        // Every parked messenger, in deterministic dequeue order. Lanes
        // serialize in global arrival order, so the snapshot bytes are
        // independent of the lane count.
        let mut parked: Vec<(NodeRef, Option<LinkInstance>, Bytes)> = Vec::new();
        for r in self.lanes.iter_arrival() {
            parked.push((r.at, r.last, vmwire::encode_messenger(&r.state)));
        }
        let mut pend = Vec::new();
        while let Some((wake, r)) = self.pending.pop_min() {
            parked.push((r.at, r.last, vmwire::encode_messenger(&r.state)));
            pend.push((wake, r));
        }
        for (wake, r) in pend {
            self.pending.push(wake, r);
        }
        for r in self.opt_queue.values() {
            parked.push((r.at, r.last, vmwire::encode_messenger(&r.state)));
        }
        vmwire::put_varint(&mut buf, parked.len() as u64);
        for (at, last, bytes) in parked {
            wirecodec::put_node_ref(&mut buf, at);
            match last {
                None => buf.put_u8(0),
                Some(i) => {
                    buf.put_u8(1);
                    vmwire::put_varint(&mut buf, i.0);
                }
            }
            vmwire::put_varint(&mut buf, bytes.len() as u64);
            buf.put_slice(&bytes);
        }
        // Transport channels: the retransmit buffers double as the redo
        // log of every send not yet durable at its receiver.
        match &self.xport {
            None => buf.put_u8(0),
            Some(x) => {
                buf.put_u8(1);
                vmwire::put_varint(&mut buf, x.send.len() as u64);
                for (&(s, c), p) in &x.send {
                    vmwire::put_varint(&mut buf, s as u64);
                    vmwire::put_varint(&mut buf, c as u64);
                    vmwire::put_varint(&mut buf, p.next_seq);
                    vmwire::put_varint(&mut buf, p.unacked.len() as u64);
                    for (&seq, u) in &p.unacked {
                        vmwire::put_varint(&mut buf, seq);
                        let fb = crate::wire::encode_frame(&u.frame);
                        vmwire::put_varint(&mut buf, fb.len() as u64);
                        buf.put_slice(&fb);
                    }
                }
                vmwire::put_varint(&mut buf, x.recv.len() as u64);
                for (&(s, c), r) in &x.recv {
                    vmwire::put_varint(&mut buf, s as u64);
                    vmwire::put_varint(&mut buf, c as u64);
                    vmwire::put_varint(&mut buf, r.cum);
                    vmwire::put_varint(&mut buf, r.held.len() as u64);
                    for (&seq, f) in &r.held {
                        vmwire::put_varint(&mut buf, seq);
                        let fb = crate::wire::encode_frame(f);
                        vmwire::put_varint(&mut buf, fb.len() as u64);
                        buf.put_slice(&fb);
                    }
                }
            }
        }
        self.last_ckpt_min = self.snapshot_floor();
        self.stats.bump(Metric::Checkpoints);
        let out = buf.freeze();
        self.stats.add(Metric::CheckpointBytes, out.len() as u64);
        self.rec.emit_sys(EventKind::Checkpoint { bytes: out.len() as u64 });
        out
    }

    /// Failover: this daemon (the successor) adopts everything in
    /// `victim`'s last checkpoint. Evicts the victim from the local
    /// membership, installs its logical nodes (rebinding link records per
    /// the new membership), re-enqueues its parked messengers, adopts its
    /// transport channels (re-arming and immediately redirecting every
    /// unacknowledged frame), and finally broadcasts the eviction —
    /// reliably, carrying the restored GVT floor — to the surviving
    /// peers. The platform must rebind its directory entries for the
    /// victim to this daemon, and checkpoint this daemon again right
    /// afterwards so a chained failure cannot lose the adopted state.
    ///
    /// # Errors
    ///
    /// [`VmError::Decode`] if the snapshot is malformed (a platform
    /// storage bug, not a recoverable condition).
    pub fn restore_from(
        &mut self,
        victim: DaemonId,
        bytes: Bytes,
        now: SimTime,
        fx: &mut Vec<Effect>,
    ) -> Result<(), VmError> {
        self.rec.set_now(now);
        let mut buf = bytes;
        if !buf.has_remaining() {
            return Err(VmError::Decode("empty checkpoint".to_string()));
        }
        let ver = buf.get_u8();
        if ver != 1 {
            return Err(VmError::Decode(format!("unknown checkpoint version {ver}")));
        }
        // The victim's id counters die with it: NodeRefs and messenger
        // ids embed their creator, so the successor keeps minting from
        // its own sequences without collision.
        for _ in 0..4 {
            vmwire::get_varint(&mut buf)?;
        }
        let n_nodes = vmwire::get_varint(&mut buf)? as usize;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let gid = wirecodec::get_node_ref(&mut buf)?;
            let name = vmwire::get_value(&mut buf)?;
            let mut node = LogicalNode::new(gid, name);
            let n_vars = vmwire::get_varint(&mut buf)? as usize;
            for _ in 0..n_vars {
                let k = vmwire::get_str(&mut buf)?;
                let v = vmwire::get_value(&mut buf)?;
                node.vars.insert(Arc::from(k.as_str()), v);
            }
            let n_links = vmwire::get_varint(&mut buf)? as usize;
            for _ in 0..n_links {
                let inst = LinkInstance(vmwire::get_varint(&mut buf)?);
                let lname = vmwire::get_value(&mut buf)?;
                let orient = wirecodec::get_orient(&mut buf)?;
                let peer_d = DaemonId(vmwire::get_varint(&mut buf)? as u16);
                let peer_n = wirecodec::get_node_ref(&mut buf)?;
                let peer_name = vmwire::get_value(&mut buf)?;
                node.links.push(LinkRec {
                    inst,
                    name: lname,
                    orient,
                    peer: (peer_d, peer_n),
                    peer_name,
                });
            }
            nodes.push(node);
        }
        let n_msgrs = vmwire::get_varint(&mut buf)? as usize;
        let mut msgrs = Vec::with_capacity(n_msgrs);
        for _ in 0..n_msgrs {
            let at = wirecodec::get_node_ref(&mut buf)?;
            let last = match buf.has_remaining().then(|| buf.get_u8()) {
                Some(0) => None,
                Some(1) => Some(LinkInstance(vmwire::get_varint(&mut buf)?)),
                _ => return Err(VmError::Decode("bad last flag".to_string())),
            };
            let n = vmwire::get_varint(&mut buf)? as usize;
            if buf.remaining() < n {
                return Err(VmError::Decode("truncated checkpointed messenger".to_string()));
            }
            let state = vmwire::decode_messenger(buf.copy_to_bytes(n))?;
            msgrs.push((at, last, state));
        }
        type Chan = ((u16, u16), u64, Vec<(u64, Wire)>);
        let mut send_chans: Vec<Chan> = Vec::new();
        let mut recv_chans: Vec<Chan> = Vec::new();
        if !buf.has_remaining() {
            return Err(VmError::Decode("truncated checkpoint".to_string()));
        }
        if buf.get_u8() == 1 {
            let n_send = vmwire::get_varint(&mut buf)? as usize;
            for _ in 0..n_send {
                let s = vmwire::get_varint(&mut buf)? as u16;
                let c = vmwire::get_varint(&mut buf)? as u16;
                let next_seq = vmwire::get_varint(&mut buf)?;
                let n_un = vmwire::get_varint(&mut buf)? as usize;
                let mut unacked = Vec::with_capacity(n_un);
                for _ in 0..n_un {
                    let seq = vmwire::get_varint(&mut buf)?;
                    let n = vmwire::get_varint(&mut buf)? as usize;
                    if buf.remaining() < n {
                        return Err(VmError::Decode("truncated checkpointed frame".to_string()));
                    }
                    unacked.push((seq, crate::wire::decode_frame(buf.copy_to_bytes(n))?));
                }
                send_chans.push(((s, c), next_seq, unacked));
            }
            let n_recv = vmwire::get_varint(&mut buf)? as usize;
            for _ in 0..n_recv {
                let s = vmwire::get_varint(&mut buf)? as u16;
                let c = vmwire::get_varint(&mut buf)? as u16;
                let cum = vmwire::get_varint(&mut buf)?;
                let n_held = vmwire::get_varint(&mut buf)? as usize;
                let mut held = Vec::with_capacity(n_held);
                for _ in 0..n_held {
                    let seq = vmwire::get_varint(&mut buf)?;
                    let n = vmwire::get_varint(&mut buf)? as usize;
                    if buf.remaining() < n {
                        return Err(VmError::Decode("truncated held frame".to_string()));
                    }
                    held.push((seq, crate::wire::decode_frame(buf.copy_to_bytes(n))?));
                }
                recv_chans.push(((s, c), cum, held));
            }
        }
        if buf.has_remaining() {
            return Err(VmError::Decode("trailing bytes after checkpoint".to_string()));
        }

        // The floor: everything this restore resurrects, whether queued,
        // held out-of-order, or waiting in a retransmit buffer.
        let mut floor = Vt::INFINITY;
        for (_, _, state) in &msgrs {
            floor = floor.min(state.vtime);
        }
        for (_, _, held) in &recv_chans {
            for (_, f) in held {
                floor = floor.min(frame_vtime(f));
            }
        }
        for (_, _, unacked) in &send_chans {
            for (_, f) in unacked {
                if let Wire::Data { frame, .. } = f {
                    floor = floor.min(frame_vtime(frame));
                }
            }
        }

        // Evict first so `owner()` sees the new membership for every
        // rebinding below (this also feeds the coordinator, if local).
        self.apply_evict(victim, self.mem_epoch + 1, floor, fx);

        // Restored nodes keep their gids, so the platform rebinds its
        // existing directory entries (victim → this daemon) rather than
        // this daemon republishing: a node the victim never published
        // (e.g. its `init` node) must not enter the directory now.
        let restored_nodes = nodes.len() as u64;
        let restored_msgrs = msgrs.len() as u64;
        for mut node in nodes {
            for l in node.links.iter_mut() {
                let o = self.owner(l.peer.0);
                l.peer.0 = o;
            }
            self.stats.bump(Metric::RestoredNodes);
            self.nodes.insert(node.gid, node);
        }
        for (at, last, state) in msgrs {
            self.stats.bump(Metric::RestoredMessengers);
            if let Some(p) = self.prof.as_mut() {
                // The platform charges the recovery latency to these
                // revived messengers once it is known (`profile_recovery_stall`).
                p.restored.push(state.id.0);
            }
            self.enqueue(Runnable { state, at, last });
        }
        if let Some(x) = self.xport.as_mut() {
            let policy = x.policy;
            let mut resend = Vec::new();
            for ((s, c), next_seq, unacked) in send_chans {
                let p = x.send.entry((s, c)).or_default();
                p.next_seq = p.next_seq.max(next_seq);
                for (seq, frame) in unacked {
                    let rto = policy.rto;
                    p.unacked.insert(
                        seq,
                        Unacked { frame: frame.clone(), attempts: 1, first_sent: now, rto },
                    );
                    resend.push((DaemonId(s), DaemonId(c), seq, frame));
                }
            }
            for ((s, c), cum, held) in recv_chans {
                let r = x.recv.entry((s, c)).or_default();
                r.cum = r.cum.max(cum);
                for (seq, frame) in held {
                    r.held.insert(seq, frame);
                }
            }
            for (src, chan, seq, frame) in resend {
                let jitter = self.xport.as_mut().expect("checked above").jitter();
                let delay = self.cfg.retransmit.rto + jitter;
                let route = self.owner(chan);
                self.stats.bump(Metric::XportRedirected);
                self.rec.emit_sys(EventKind::FrameRedirect { chan: chan.0, seq, to: route.0 });
                fx.push(Effect::Send { dst: route, wire: frame });
                fx.push(Effect::Timer { src, chan, seq, delay });
            }
        }
        self.last_ckpt_min = self.last_ckpt_min.min(floor);
        self.stats.bump(Metric::Restores);
        self.rec.emit_sys(EventKind::Restore {
            victim: victim.0,
            nodes: restored_nodes,
            messengers: restored_msgrs,
        });
        for d in 0..self.cfg.daemons as u16 {
            if d == self.id.0 || !self.alive[d as usize] {
                continue;
            }
            fx.push(Effect::Send {
                dst: DaemonId(d),
                wire: Wire::Evict { victim, epoch: self.mem_epoch, floor },
            });
        }
        Ok(())
    }

    /// Erase all volatile state of a permanently killed daemon, so the
    /// platform's quiescence accounting converges. Its last checkpoint
    /// (held by the platform) is now the only remnant; everything since
    /// was never acknowledged or committed, so the survivors' retransmit
    /// buffers and the checkpoint together reconstruct it exactly once.
    pub fn gut(&mut self) {
        self.lanes.clear();
        self.pending = PendingQueue::new();
        self.opt_queue.clear();
        self.tw.clear();
        self.nodes.clear();
        self.stage.clear();
        self.pending_acks.clear();
        self.anti_pending.clear();
        self.last_ckpt_min = Vt::INFINITY;
        if let Some(x) = self.xport.as_mut() {
            x.send.clear();
            x.recv.clear();
        }
        if let Some(q) = self.ctrl.as_mut() {
            q.reset();
        }
        self.evictions.clear();
        if let Some(p) = self.prof.as_mut() {
            // The dead daemon's live ledgers die with its messengers;
            // the restored copies start fresh on the successor.
            p.ledgers.clear();
            p.transport.clear();
            p.restored.clear();
        }
    }

    /// Whether any queued messenger currently sits at `gid`.
    fn node_occupied(&self, gid: NodeRef) -> bool {
        self.lanes.iter().any(|r| r.at == gid) || self.opt_queue.values().any(|r| r.at == gid)
    }

    fn delete_node(&mut self, gid: NodeRef, fx: &mut Vec<Effect>) {
        if let Some(n) = self.nodes.remove(&gid) {
            if n.name != Value::Null {
                fx.push(Effect::DirectoryRemove { name: n.name.clone() });
            }
            self.stats.bump(Metric::NodesDeleted);
            // Messengers stranded at the node die.
            let killed_ready = self.lanes.retain(|r| r.at != gid);
            let killed_pending = self.pending.drain_matching(|r| r.at == gid).len();
            let opt_keys: Vec<(Vt, u64)> =
                self.opt_queue.iter().filter(|(_, r)| r.at == gid).map(|(k, _)| *k).collect();
            for k in &opt_keys {
                self.opt_queue.remove(k);
            }
            let killed = (killed_ready + killed_pending + opt_keys.len()) as i64;
            if killed > 0 {
                fx.push(Effect::LiveDelta(-killed));
                self.stats.add(Metric::StrandedKilled, killed as u64);
            }
        }
    }

    // ---- GVT ------------------------------------------------------------------

    fn on_gvt(&mut self, msg: CtrlMsg, fx: &mut Vec<Effect>) {
        match msg {
            CtrlMsg::Cut { round } => {
                self.rec.emit_sys(EventKind::GvtRound { round });
                let lm = self.gvt_min();
                let ack = self.part.on_cut(round, lm);
                fx.push(Effect::Send { dst: DaemonId(0), wire: Wire::Gvt(ack) });
            }
            CtrlMsg::Poll { round } => {
                let lm = self.gvt_min();
                let ack = self.part.on_poll(round, lm);
                fx.push(Effect::Send { dst: DaemonId(0), wire: Wire::Gvt(ack) });
            }
            CtrlMsg::Advance { gvt } => self.advance_gvt_local(gvt),
            ack @ (CtrlMsg::CutAck { .. } | CtrlMsg::PollAck { .. }) => {
                let Some(coord) = self.coord.as_mut() else {
                    return;
                };
                match coord.on_ack(&ack) {
                    CoordinatorAction::Wait => {}
                    CoordinatorAction::PollAll { round } => {
                        self.broadcast_gvt(CtrlMsg::Poll { round }, fx);
                    }
                    CoordinatorAction::Advance { gvt } => {
                        self.stats.bump(Metric::GvtRounds);
                        self.broadcast_gvt(CtrlMsg::Advance { gvt }, fx);
                    }
                }
            }
        }
    }

    /// Adopt a GVT estimate — from the coordinator's `Advance` broadcast
    /// or from a gossip hint; both must run the same revive/fossil path.
    fn advance_gvt_local(&mut self, gvt: Vt) {
        self.part.on_advance(gvt);
        let g = gvt.as_f64();
        self.gvt_hint = self.gvt_hint.max(g);
        self.rec.set_gvt(g);
        self.rec.emit_sys(EventKind::GvtAdvance { gvt: g });
        if g.is_finite() && g > 0.0 {
            self.stats.gauge_set(Metric::GvtNs, (g * 1e9) as u64);
        }
        if self.cfg.vt_mode == VtMode::Conservative {
            while let Some((_, r)) = self.pending.pop_runnable(gvt) {
                self.rec.emit(r.state.vtime.as_f64(), EventKind::MsgrRevive { mid: r.state.id.0 });
                self.prof_enqueue(r.state.id.0);
                self.lanes.push(r);
            }
        } else {
            for node in self.tw.values_mut() {
                node.fossil_collect(gvt);
            }
        }
    }

    fn broadcast_gvt(&mut self, msg: CtrlMsg, fx: &mut Vec<Effect>) {
        for d in 0..self.cfg.daemons as u16 {
            if !self.alive[d as usize] {
                continue;
            }
            fx.push(Effect::Send { dst: DaemonId(d), wire: Wire::Gvt(msg.clone()) });
        }
    }

    /// (Coordinator only.) Start a GVT round; returns `false` if this
    /// daemon is not the coordinator or a round is already running.
    pub fn gvt_begin(&mut self, fx: &mut Vec<Effect>) -> bool {
        let Some(coord) = self.coord.as_mut() else {
            return false;
        };
        let Some(cut) = coord.begin_round() else {
            return false;
        };
        self.broadcast_gvt(cut, fx);
        true
    }

    // ---- annihilation (optimistic) -----------------------------------------------

    fn annihilate(&mut self, id: MessengerId, fx: &mut Vec<Effect>) {
        // 1. Still suspended here?
        let hit = self.pending.drain_matching(|r| r.state.id == id);
        if !hit.is_empty() {
            fx.push(Effect::LiveDelta(-1));
            self.stats.bump(Metric::Annihilations);
            return;
        }
        let opt_key = self.opt_queue.keys().find(|(_, i)| *i == id.0).copied();
        if let Some(k) = opt_key {
            self.opt_queue.remove(&k);
            fx.push(Effect::LiveDelta(-1));
            self.stats.bump(Metric::Annihilations);
            return;
        }
        // 1b. In the ready lanes?
        if self.lanes.retain(|r| r.state.id != id) > 0 {
            fx.push(Effect::LiveDelta(-1));
            self.stats.bump(Metric::Annihilations);
            return;
        }
        // 2. Already processed at one of our nodes? Roll it back.
        let found = self.tw.iter().find(|(_, log)| log.contains_input(id.0)).map(|(gid, _)| *gid);
        if let Some(gid) = found {
            let rb = self.tw.get_mut(&gid).and_then(|log| log.annihilate_processed(id.0));
            if let Some(rb) = rb {
                self.apply_rollback(gid, rb, fx);
                fx.push(Effect::LiveDelta(-1));
                self.stats.bump(Metric::Annihilations);
                return;
            }
        }
        // 3. The anti-messenger overtook its positive: stash it.
        self.anti_pending.insert(id);
    }

    fn apply_rollback(
        &mut self,
        gid: NodeRef,
        rb: msgr_gvt::Rollback<Option<NodeVars>, Runnable>,
        fx: &mut Vec<Effect>,
    ) {
        self.stats.bump(Metric::Rollbacks);
        self.stats.add(Metric::RolledBackEvents, rb.reexecute.len() as u64);
        // The earliest materialized snapshot among the undone events is
        // the pre-state of the rollback target: elided (`None`) entries
        // belong to write-free programs, which cannot have changed the
        // variables between it and the cut. All-`None` means none of the
        // undone events wrote — the current state is already correct.
        if let Some(vars) = rb.restores.into_iter().flatten().next() {
            if let Some(n) = self.nodes.get_mut(&gid) {
                n.vars = vars;
            }
        }
        for (key, input) in rb.reexecute {
            self.prof_enqueue(key.1);
            self.opt_queue.insert(key, input);
        }
        for cancel in rb.cancel {
            let dst = DaemonId(cancel.dest);
            if dst == self.id {
                self.annihilate(MessengerId(cancel.id), fx);
            } else {
                self.part.on_send(cancel.ts);
                self.stats.bump(Metric::AntiSent);
                fx.push(Effect::Send {
                    dst,
                    wire: Wire::Migrate(Migration {
                        id: MessengerId(cancel.id),
                        vtime: cancel.ts,
                        epoch: self.part.stamp(),
                        anti: true,
                        to: (dst, NodeRef::new(0, 0)),
                        via: None,
                        bytes: Bytes::new(),
                        code_bytes: 0,
                    }),
                });
            }
        }
    }

    // ---- execution ---------------------------------------------------------------

    /// Execute one non-preemptive segment. Returns its reference-CPU
    /// cost, or `None` if nothing is runnable.
    ///
    /// Dispatch across lanes is by global arrival order, so the
    /// execution order is independent of the lane count — the property
    /// the `sim` determinism gate checks.
    pub fn run_segment(&mut self, dir: &dyn Directory, fx: &mut Vec<Effect>) -> Option<u64> {
        let cost = self.run_segment_inner(dir, fx)?;
        self.stage_durable(fx);
        Some(cost)
    }

    /// Execute one non-preemptive segment, draining lanes round-robin
    /// instead of in global arrival order. Used by the threads platform,
    /// where each wakeup sweeps lane-by-lane; serving from a lane other
    /// than the rotation's preferred one counts as a `lane_steals`.
    /// Conservative mode only (the threads platform rejects optimistic
    /// configs); identical to [`Daemon::run_segment`] at `lanes = 1`.
    pub fn run_segment_rotating(
        &mut self,
        dir: &dyn Directory,
        fx: &mut Vec<Effect>,
    ) -> Option<u64> {
        debug_assert_eq!(self.cfg.vt_mode, VtMode::Conservative);
        let mut cursor = self.lane_cursor;
        let (run, stolen) = self.lanes.pop_rotating(&mut cursor)?;
        self.lane_cursor = cursor;
        if stolen {
            self.stats.bump(Metric::LaneSteals);
        }
        self.prof_dequeue(run.state.id.0);
        let cost = self.execute(run, dir, fx, false);
        self.stage_durable(fx);
        Some(cost)
    }

    fn run_segment_inner(&mut self, dir: &dyn Directory, fx: &mut Vec<Effect>) -> Option<u64> {
        match self.cfg.vt_mode {
            VtMode::Conservative => {
                let run = self.lanes.pop_global()?;
                self.prof_dequeue(run.state.id.0);
                Some(self.execute(run, dir, fx, false))
            }
            VtMode::Optimistic => {
                // Drain any conservative-path leftovers first (ready is
                // unused in optimistic mode except via injection races).
                if let Some(run) = self.lanes.pop_global() {
                    self.prof_dequeue(run.state.id.0);
                    return Some(self.execute(run, dir, fx, true));
                }
                let (&key0, _) = self.opt_queue.iter().next()?;
                let run = self.opt_queue.remove(&key0).expect("key just observed");
                self.prof_dequeue(run.state.id.0);
                // Straggler?
                let key = (run.state.vtime, run.state.id.0);
                let straggler = self.tw.get(&run.at).is_some_and(|log| log.is_straggler(key));
                if straggler {
                    let rb = self.tw.get_mut(&run.at).unwrap().rollback(key).unwrap();
                    let undone = rb.reexecute.len() as u64;
                    self.apply_rollback(run.at, rb, fx);
                    self.prof_enqueue(run.state.id.0);
                    self.opt_queue.insert((run.state.vtime, run.state.id.0), run);
                    return Some(undone * self.cfg.costs.rollback_per_event_ns);
                }
                Some(self.execute(run, dir, fx, true))
            }
        }
    }

    fn execute(
        &mut self,
        mut run: Runnable,
        dir: &dyn Directory,
        fx: &mut Vec<Effect>,
        optimistic: bool,
    ) -> u64 {
        let c = self.cfg.costs;
        let Some(node) = self.nodes.get(&run.at) else {
            fx.push(Effect::LiveDelta(-1));
            self.stats.bump(Metric::DeadLetters);
            self.prof_retire(run.state.id.0, run.state.vtime.as_f64());
            return c.gvt_msg_ns;
        };
        let Some(program) = self.codes.get(run.state.program) else {
            let error = match self.codes.rejection(run.state.program) {
                Some(reason) => {
                    self.stats.bump(Metric::VerifyRejected);
                    format!("program {} failed verification: {reason}", run.state.program)
                }
                None => format!("program {} not in code registry", run.state.program),
            };
            fx.push(Effect::Fault { messenger: run.state.id, error });
            fx.push(Effect::LiveDelta(-1));
            self.prof_retire(run.state.id.0, run.state.vtime.as_f64());
            return c.gvt_msg_ns;
        };
        // In compiled mode the closure form must exist for every
        // verified program (registration compiles unconditionally); a
        // hole here is a registry corruption, surfaced like unknown code.
        let compiled = match self.cfg.exec {
            crate::config::ExecMode::Interp => None,
            crate::config::ExecMode::Compiled => match self.codes.get_compiled(run.state.program) {
                Some(cp) => Some(cp),
                None => {
                    fx.push(Effect::Fault {
                        messenger: run.state.id,
                        error: format!("program {} has no compiled form", run.state.program),
                    });
                    fx.push(Effect::LiveDelta(-1));
                    self.prof_retire(run.state.id.0, run.state.vtime.as_f64());
                    return c.gvt_msg_ns;
                }
            },
        };

        // Time-Warp bookkeeping: snapshot before execution. A program
        // the effect analysis proved write-free (no node-variable
        // stores, no natives) cannot change `node.vars`, so its
        // pre-state snapshot is provably redundant and elided.
        let key = (run.state.vtime, run.state.id.0);
        let (snapshot, input_copy) = if optimistic {
            let pre =
                if self.codes.get_summary(run.state.program).is_some_and(|t| t.node_write_free()) {
                    self.stats.bump(Metric::AnalysisSnapshotsElided);
                    None
                } else {
                    Some(node.vars.clone())
                };
            (Some(pre), Some(run.clone()))
        } else {
            (None, None)
        };

        let node_name = node.name.clone();
        let fuel = self.cfg.segment_fuel;
        let natives = self.natives.read().unwrap().clone();
        let address = self.id.0;
        let prof_t0 = self.prof.as_ref().map(|p| p.now(self.rec.now()));
        // Scoped mutable borrow of the node's variables for the VM.
        let (yielded, ops, native_ns, nv_log, samples) = {
            let node = self.nodes.get_mut(&run.at).expect("checked above");
            let mut env = SegEnv {
                vars: &mut node.vars,
                natives: &natives,
                address,
                node_name: node_name.clone(),
                last: run.last,
                mid: run.state.id,
                vtime: run.state.vtime,
                ops: 0,
                native_ns: 0,
                nv_log: self.rec.node_vars().then(Vec::new),
                sample_every: self.prof.as_ref().map_or(0, |p| p.interval),
                samples: BTreeMap::new(),
            };
            let y = match &compiled {
                None => interp::run(&program, &mut run.state, &mut env, fuel),
                Some(cp) => msgr_vm::compile::run(cp, &program, &mut run.state, &mut env, fuel),
            };
            (y, env.ops, env.native_ns, env.nv_log, env.samples)
        };
        for (is_write, var) in nv_log.into_iter().flatten() {
            let kind = if is_write {
                EventKind::NodeVarWrite { var }
            } else {
                EventKind::NodeVarRead { var }
            };
            self.rec.emit(run.state.vtime.as_f64(), kind);
        }
        let mut cost = ops * c.per_op_ns + native_ns;
        self.stats.bump(Metric::Segments);
        self.stats.add(Metric::Ops, ops);

        // Charge the execute phase: wall time on threads, the cost-model
        // charge (same number the simulation bills) on sim. Then fold the
        // segment's pc hits to source lines and emit them, sorted, so the
        // event stream stays deterministic per seed.
        if let Some(t0) = prof_t0 {
            let rt = self.rec.now();
            let p = self.prof.as_mut().expect("prof_t0 implies profiler");
            let exec_ns = if p.wallclock() {
                p.now(rt).saturating_sub(t0)
            } else {
                ops * c.per_op_ns + native_ns
            };
            p.ledger(run.state.id.0).exec += exec_ns;
            if !samples.is_empty() {
                let mut by_line: BTreeMap<(u32, u32), u64> = BTreeMap::new();
                for ((func, pc), n) in samples {
                    let line = program
                        .funcs
                        .get(func as usize)
                        .and_then(|f| f.line_at(pc as usize))
                        .unwrap_or(0);
                    *by_line.entry((func, line)).or_insert(0) += n;
                }
                for ((func, line), count) in by_line {
                    self.stats.add(Metric::ProfSamples, count);
                    self.rec.emit(
                        run.state.vtime.as_f64(),
                        EventKind::PcSample { prog: run.state.program.0, func, line, count },
                    );
                }
            }
        }

        let mut sent: Vec<SentRef> = Vec::new();
        match yielded {
            Ok(y) => {
                cost += self.handle_yield(run.clone(), y, &program, dir, fx, &mut sent);
            }
            Err(e) => {
                fx.push(Effect::Fault { messenger: run.state.id, error: e.to_string() });
                fx.push(Effect::LiveDelta(-1));
                self.stats.bump(Metric::Faults);
                self.rec
                    .emit(run.state.vtime.as_f64(), EventKind::MsgrFault { mid: run.state.id.0 });
                self.prof_retire(run.state.id.0, run.state.vtime.as_f64());
            }
        }

        if let (Some(pre_state), Some(input)) = (snapshot, input_copy) {
            let log = self.tw.entry(run.at).or_default();
            log.record(TwEntry { key, pre_state, input, sent });
        }
        cost
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_yield(
        &mut self,
        run: Runnable,
        y: Yield,
        program: &Program,
        dir: &dyn Directory,
        fx: &mut Vec<Effect>,
        sent: &mut Vec<SentRef>,
    ) -> u64 {
        match y {
            Yield::Terminated(_) => {
                fx.push(Effect::LiveDelta(-1));
                self.stats.bump(Metric::Terminated);
                self.rec
                    .emit(run.state.vtime.as_f64(), EventKind::MsgrRetire { mid: run.state.id.0 });
                self.prof_retire(run.state.id.0, run.state.vtime.as_f64());
                0
            }
            Yield::SchedAbs(t) => {
                let mut next = run;
                next.state.vtime = next.state.vtime.max(t);
                self.resuspend(next, fx, sent);
                0
            }
            Yield::SchedDlt(dt) => {
                if dt < 0.0 {
                    fx.push(Effect::Fault {
                        messenger: run.state.id,
                        error: "negative virtual-time delta".to_string(),
                    });
                    fx.push(Effect::LiveDelta(-1));
                    self.prof_retire(run.state.id.0, run.state.vtime.as_f64());
                    return 0;
                }
                let mut next = run;
                next.state.vtime = next.state.vtime.plus(dt);
                self.resuspend(next, fx, sent);
                0
            }
            Yield::Hop(eh) => self.do_hop(run, &eh, false, program, dir, fx, sent),
            Yield::Delete(eh) => self.do_hop(run, &eh, true, program, dir, fx, sent),
            Yield::Create(ec) => {
                if self.cfg.vt_mode == VtMode::Optimistic {
                    fx.push(Effect::Fault {
                        messenger: run.state.id,
                        error: "optimistic mode requires a static logical network (create)"
                            .to_string(),
                    });
                    fx.push(Effect::LiveDelta(-1));
                    self.prof_retire(run.state.id.0, run.state.vtime.as_f64());
                    return 0;
                }
                self.do_create(run, &ec, program, fx)
            }
        }
    }

    /// Re-enqueue a suspended continuation under a fresh id (so that a
    /// Time-Warp rollback can cancel it like any other send).
    fn resuspend(&mut self, mut next: Runnable, _fx: &mut [Effect], sent: &mut Vec<SentRef>) {
        let old = next.state.id.0;
        next.state.id = self.alloc_mid();
        if let Some(p) = self.prof.as_mut() {
            // One ledger covers the whole local stay across the park's
            // re-identification.
            p.transfer(old, next.state.id.0);
        }
        sent.push(SentRef { id: next.state.id.0, dest: self.id.0, ts: next.state.vtime });
        self.stats.bump(Metric::Suspensions);
        self.rec.emit(
            next.state.vtime.as_f64(),
            EventKind::MsgrPark { mid: next.state.id.0, wake: next.state.vtime.as_f64() },
        );
        self.enqueue(next);
    }

    #[allow(clippy::too_many_arguments)]
    fn do_hop(
        &mut self,
        run: Runnable,
        eh: &EvalHop,
        delete: bool,
        program: &Program,
        dir: &dyn Directory,
        fx: &mut Vec<Effect>,
        sent: &mut Vec<SentRef>,
    ) -> u64 {
        let c = self.cfg.costs;
        let mut cost = 0u64;
        self.stats.bump(if delete { Metric::Deletes } else { Metric::Hops });

        if delete && self.cfg.vt_mode == VtMode::Optimistic {
            fx.push(Effect::Fault {
                messenger: run.state.id,
                error: "optimistic mode requires a static logical network (delete)".to_string(),
            });
            fx.push(Effect::LiveDelta(-1));
            self.prof_retire(run.state.id.0, run.state.vtime.as_f64());
            return 0;
        }

        // Resolve destinations.
        let mut dests: Vec<(Option<LinkInstance>, DaemonId, NodeRef)> = Vec::new();
        if eh.ll == EvalLink::Virtual {
            let name = eh.ln.as_ref().expect("compiler enforces ln on virtual hops");
            if let Some((d, n)) = dir.lookup(name) {
                dests.push((None, d, n));
            }
            self.stats.bump(Metric::VirtualHops);
        } else if let Some(node) = self.nodes.get(&run.at) {
            for l in node.matching_links(eh) {
                dests.push((Some(l.inst), l.peer.0, l.peer.1));
            }
        }

        // Delete: tear down traversed links. The local halves go now;
        // the far halves go by wire, queued AFTER the migrations so the
        // traveling messenger (FIFO per pair) reaches the peer node
        // before any singleton collection can remove it.
        let mut deferred_unlinks: Vec<Effect> = Vec::new();
        if delete {
            let insts: Vec<LinkInstance> = dests.iter().filter_map(|d| d.0).collect();
            if let Some(node) = self.nodes.get_mut(&run.at) {
                for inst in &insts {
                    node.unlink(*inst);
                }
            }
            for (inst, daemon, peer) in dests.iter().filter_map(|(i, d, n)| i.map(|i| (i, *d, *n)))
            {
                deferred_unlinks
                    .push(Effect::Send { dst: daemon, wire: Wire::Unlink { node: peer, inst } });
            }
            // The current node may have become an empty singleton.
            let now_singleton = self.nodes.get(&run.at).is_some_and(|n| n.is_singleton());
            if now_singleton && run.at != self.init && !self.node_occupied(run.at) {
                self.delete_node(run.at, fx);
            }
        }

        if dests.is_empty() {
            fx.append(&mut deferred_unlinks);
            // Replicate to zero destinations: the messenger ceases to
            // exist (§2.1 hop semantics).
            fx.push(Effect::LiveDelta(-1));
            self.stats.bump(Metric::HopNoMatch);
            self.prof_retire(run.state.id.0, run.state.vtime.as_f64());
            return cost;
        }

        fx.push(Effect::LiveDelta(dests.len() as i64 - 1));
        if dests.len() > 1 {
            self.rec.emit(
                run.state.vtime.as_f64(),
                EventKind::MsgrFork { mid: run.state.id.0, replicas: dests.len() as u64 },
            );
        }
        let code_bytes = if self.cfg.carry_code { program.wire_bytes() } else { 0 };
        for (via, daemon, node) in dests {
            let mut replica = run.state.clone();
            replica.id = self.alloc_mid();
            // Same-process hop: hand the state over by move instead of
            // encode → wire → decode. Only when the destination is this
            // daemon, transport is direct (no reliable-delivery seq to
            // burn), and we are in Conservative mode outside recovery —
            // the Mattern counters stay balanced because neither
            // on_send nor on_receive fires for a moved hop.
            if self.cfg.local_move
                && daemon == self.id
                && self.xport.is_none()
                && !self.recovery
                && self.cfg.vt_mode == VtMode::Conservative
            {
                cost += c.hop_send_ns;
                self.prof_fork(replica.id.0, run.state.id.0, c.hop_send_ns, replica.vtime.as_f64());
                self.rec.emit(
                    replica.vtime.as_f64(),
                    EventKind::MsgrHop { mid: replica.id.0, to: daemon.0, bytes: 0 },
                );
                sent.push(SentRef { id: replica.id.0, dest: daemon.0, ts: replica.vtime });
                if self.nodes.contains_key(&node) {
                    self.rec
                        .emit(replica.vtime.as_f64(), EventKind::MsgrArrive { mid: replica.id.0 });
                    self.enqueue(Runnable { state: replica, at: node, last: via });
                } else {
                    // Destination node vanished between match and move.
                    fx.push(Effect::LiveDelta(-1));
                    self.stats.bump(Metric::DeadLetters);
                }
                continue;
            }
            let bytes = vmwire::encode_messenger(&replica);
            cost += c.hop_send_ns + bytes.len() as u64 * c.per_byte_copy_ns;
            self.prof_fork(
                replica.id.0,
                run.state.id.0,
                c.hop_send_ns + bytes.len() as u64 * c.per_byte_copy_ns,
                replica.vtime.as_f64(),
            );
            self.rec.emit(
                replica.vtime.as_f64(),
                EventKind::MsgrHop {
                    mid: replica.id.0,
                    to: daemon.0,
                    bytes: bytes.len() as u64 + code_bytes,
                },
            );
            self.part.on_send(replica.vtime);
            self.stats.bump(Metric::MigrationsOut);
            self.stats.add(Metric::MigrationBytes, bytes.len() as u64 + code_bytes);
            sent.push(SentRef { id: replica.id.0, dest: daemon.0, ts: replica.vtime });
            fx.push(Effect::Send {
                dst: daemon,
                wire: Wire::Migrate(Migration {
                    id: replica.id,
                    vtime: replica.vtime,
                    epoch: self.part.stamp(),
                    anti: false,
                    to: (daemon, node),
                    via,
                    bytes,
                    code_bytes,
                }),
            });
        }
        fx.extend(deferred_unlinks);
        // The hopping messenger itself is gone from this daemon: its
        // local ledger is complete.
        self.prof_retire(run.state.id.0, run.state.vtime.as_f64());
        cost
    }

    fn do_create(
        &mut self,
        run: Runnable,
        ec: &EvalCreate,
        program: &Program,
        fx: &mut Vec<Effect>,
    ) -> u64 {
        let c = self.cfg.costs;
        let mut cost = 0u64;
        self.stats.bump(Metric::Creates);
        let origin_name = match self.nodes.get(&run.at) {
            Some(n) => n.name.clone(),
            None => {
                fx.push(Effect::LiveDelta(-1));
                self.prof_retire(run.state.id.0, run.state.vtime.as_f64());
                return cost;
            }
        };
        let code_bytes = if self.cfg.carry_code { program.wire_bytes() } else { 0 };
        let mut replicas = 0i64;

        for item in &ec.items {
            let matches = self.topo.matches(self.id, &item.dn, &item.dl, item.ddir);
            if matches.is_empty() {
                continue;
            }
            let chosen: Vec<DaemonId> = if ec.all {
                matches
            } else {
                // Deterministic round-robin among the matching daemons
                // (the paper defers the selection rule to [FBDM98]).
                let pick = matches[self.rr % matches.len()];
                self.rr += 1;
                vec![pick]
            };
            for daemon in chosen {
                replicas += 1;
                let gid = self.alloc_node();
                let inst = self.alloc_link();
                let node_name = item.ln.clone().unwrap_or(Value::Null);
                let link_name = item.ll.clone().unwrap_or(Value::Null);
                // Orientation at the origin: `+` points origin → new.
                let orient_origin = match item.ldir {
                    Dir::Forward => Orient::Out,
                    Dir::Backward => Orient::In,
                    Dir::Any => Orient::Undirected,
                };
                if let Some(n) = self.nodes.get_mut(&run.at) {
                    n.links.push(LinkRec {
                        inst,
                        name: link_name.clone(),
                        orient: orient_origin,
                        peer: (daemon, gid),
                        peer_name: node_name.clone(),
                    });
                }
                let mut replica = run.state.clone();
                replica.id = self.alloc_mid();
                let bytes = vmwire::encode_messenger(&replica);
                cost += c.create_node_ns + c.hop_send_ns + bytes.len() as u64 * c.per_byte_copy_ns;
                self.prof_fork(
                    replica.id.0,
                    run.state.id.0,
                    c.create_node_ns + c.hop_send_ns + bytes.len() as u64 * c.per_byte_copy_ns,
                    replica.vtime.as_f64(),
                );
                self.rec.emit(
                    replica.vtime.as_f64(),
                    EventKind::MsgrHop {
                        mid: replica.id.0,
                        to: daemon.0,
                        bytes: bytes.len() as u64 + code_bytes,
                    },
                );
                self.part.on_send(replica.vtime);
                self.stats.bump(Metric::MigrationsOut);
                self.stats.add(Metric::MigrationBytes, bytes.len() as u64 + code_bytes);
                fx.push(Effect::Send {
                    dst: daemon,
                    wire: Wire::Create(Box::new(CreateNode {
                        gid,
                        name: node_name,
                        origin: (self.id, run.at),
                        origin_name: origin_name.clone(),
                        inst,
                        link_name,
                        orient_at_new: orient_origin.reversed(),
                        messenger: Migration {
                            id: replica.id,
                            vtime: replica.vtime,
                            epoch: self.part.stamp(),
                            anti: false,
                            to: (daemon, gid),
                            via: Some(inst),
                            bytes,
                            code_bytes,
                        },
                    })),
                });
            }
        }
        fx.push(Effect::LiveDelta(replicas - 1));
        if replicas > 1 {
            self.rec.emit(
                run.state.vtime.as_f64(),
                EventKind::MsgrFork { mid: run.state.id.0, replicas: replicas as u64 },
            );
        }
        if replicas == 0 {
            self.stats.bump(Metric::CreateNoMatch);
        }
        self.prof_retire(run.state.id.0, run.state.vtime.as_f64());
        cost
    }
}

/// The VM environment for one execution segment: the current node's
/// variables plus cost metering. Also the [`NativeCtx`] handed to native
/// functions.
struct SegEnv<'a> {
    vars: &'a mut NodeVars,
    natives: &'a NativeRegistry,
    address: u16,
    node_name: Value,
    last: Option<LinkInstance>,
    mid: MessengerId,
    vtime: Vt,
    ops: u64,
    native_ns: u64,
    /// Node-variable access log `(is_write, name)`, collected only when
    /// node-var tracing is on (the recorder can't be borrowed while the
    /// node's vars are) and emitted as events after the segment.
    nv_log: Option<Vec<(bool, String)>>,
    /// PC sampling interval in executed ops (0 = sampling off).
    sample_every: u64,
    /// Sample hits for this segment, keyed `(func, pc)` — folded to
    /// source lines and emitted as `pc_sample` events after the segment.
    samples: BTreeMap<(u32, u32), u64>,
}

impl SegEnv<'_> {
    fn log_nv(&mut self, is_write: bool, name: &str) {
        if let Some(log) = self.nv_log.as_mut() {
            log.push((is_write, name.to_string()));
        }
    }
}

impl interp::Env for SegEnv<'_> {
    fn node_var(&mut self, name: &str) -> Value {
        self.log_nv(false, name);
        self.vars.get(name).cloned().unwrap_or(Value::Null)
    }
    fn set_node_var(&mut self, name: &str, v: Value) {
        self.log_nv(true, name);
        self.vars.insert(Arc::from(name), v);
    }
    fn net_var(&mut self, var: NetVar) -> Value {
        match var {
            NetVar::Address => Value::Int(self.address as i64),
            NetVar::Last => self.last.map(Value::Link).unwrap_or(Value::Null),
            NetVar::Node => self.node_name.clone(),
            NetVar::Time => Value::Float(self.vtime.as_f64()),
        }
    }
    fn call_native(&mut self, name: &str, args: &[Value]) -> Result<Value, VmError> {
        let natives = self.natives;
        natives.call(self, name, args)
    }
    fn charge_ops(&mut self, ops: u64) {
        self.ops += ops;
    }
    fn sample_interval(&self) -> u64 {
        self.sample_every
    }
    fn pc_sample(&mut self, func: u32, pc: u32, count: u64) {
        *self.samples.entry((func, pc)).or_insert(0) += count;
    }
}

impl NativeCtx for SegEnv<'_> {
    fn node_var(&mut self, name: &str) -> Value {
        self.log_nv(false, name);
        self.vars.get(name).cloned().unwrap_or(Value::Null)
    }
    fn set_node_var(&mut self, name: &str, v: Value) {
        self.log_nv(true, name);
        self.vars.insert(Arc::from(name), v);
    }
    fn charge(&mut self, ref_ns: u64) {
        self.native_ns += ref_ns;
    }
    fn daemon(&self) -> u16 {
        self.address
    }
    fn node_name(&self) -> Value {
        self.node_name.clone()
    }
    fn messenger(&self) -> MessengerId {
        self.mid
    }
    fn vtime(&self) -> Vt {
        self.vtime
    }
}
