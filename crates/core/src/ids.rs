//! Cluster-wide identifiers.

/// A daemon (one per simulated host / one per thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DaemonId(pub u16);

impl std::fmt::Display for DaemonId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A logical node, identified by `(creating daemon, sequence)`. The
/// *creating* daemon allocates the id even when the node is instantiated
/// remotely, which lets the remote-`create` protocol install both link
/// halves without an acknowledgement round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeRef {
    /// Daemon that allocated the id.
    pub creator: u16,
    /// Per-creator sequence number.
    pub seq: u64,
}

impl NodeRef {
    /// Compose a node reference.
    pub fn new(creator: u16, seq: u64) -> Self {
        NodeRef { creator, seq }
    }
}

impl std::fmt::Display for NodeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}.{}", self.creator, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(DaemonId(3).to_string(), "d3");
        assert_eq!(NodeRef::new(2, 9).to_string(), "n2.9");
    }

    #[test]
    fn node_refs_order_and_hash() {
        use std::collections::HashSet;
        let a = NodeRef::new(0, 1);
        let b = NodeRef::new(0, 2);
        let c = NodeRef::new(1, 0);
        assert!(a < b && b < c);
        let set: HashSet<NodeRef> = [a, b, c, a].into_iter().collect();
        assert_eq!(set.len(), 3);
    }
}
