//! The logical network: nodes, links, node variables, and destination
//! matching.
//!
//! "Nodes may contain arbitrary variables or data structures, while links
//! may be used by a Messenger for navigation … The logical network thus
//! represents a data structure external to and independent of any ongoing
//! activity" (§1). Nodes and links persist until explicitly `delete`d.

use std::collections::HashMap;
use std::sync::Arc;

use msgr_vm::{Dir, EvalHop, EvalLink, LinkInstance, Value};

use crate::ids::{DaemonId, NodeRef};

/// How a link record is oriented *from the perspective of the node that
/// stores it*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orient {
    /// The link points away from this node (`ldir = +` follows it).
    Out,
    /// The link points toward this node (`ldir = -` follows it).
    In,
    /// Undirected.
    Undirected,
}

impl Orient {
    /// The orientation the peer node stores for the same link.
    pub fn reversed(self) -> Orient {
        match self {
            Orient::Out => Orient::In,
            Orient::In => Orient::Out,
            Orient::Undirected => Orient::Undirected,
        }
    }

    /// Whether a traversal with direction constraint `d` may follow a
    /// link with this orientation.
    pub fn allows(self, d: Dir) -> bool {
        match d {
            Dir::Any => true,
            Dir::Forward => matches!(self, Orient::Out | Orient::Undirected),
            Dir::Backward => matches!(self, Orient::In | Orient::Undirected),
        }
    }
}

/// One half of a logical link, stored at each endpoint. Link *instances*
/// are identified cluster-wide by [`LinkInstance`] so that `$last` can
/// name the precise (possibly unnamed) link a messenger arrived on.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkRec {
    /// Cluster-unique instance id (shared by both halves).
    pub inst: LinkInstance,
    /// Link name; `Value::Null` for unnamed links (`~`).
    pub name: Value,
    /// Orientation from this endpoint's perspective.
    pub orient: Orient,
    /// The other endpoint.
    pub peer: (DaemonId, NodeRef),
    /// Cached name of the peer node (node names are immutable).
    pub peer_name: Value,
}

impl LinkRec {
    /// Whether this link satisfies an evaluated hop destination.
    pub fn matches(&self, hop: &EvalHop) -> bool {
        if !self.orient.allows(hop.ldir) {
            return false;
        }
        let link_ok = match &hop.ll {
            EvalLink::Wild => true,
            EvalLink::Unnamed => self.name == Value::Null,
            EvalLink::Named(n) => self.name.loose_eq(n),
            EvalLink::Instance(inst) => self.inst == *inst,
            EvalLink::Virtual => false, // virtual hops bypass links entirely
        };
        if !link_ok {
            return false;
        }
        match &hop.ln {
            None => true,
            Some(n) => self.peer_name.loose_eq(n),
        }
    }
}

/// A logical node: name, variables, and link endpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalNode {
    /// Cluster-wide reference.
    pub gid: NodeRef,
    /// Node name; `Value::Null` if unnamed.
    pub name: Value,
    /// Node variables — "resident in nodes of the logical network and
    /// shared by all Messengers currently visiting the same logical
    /// node" (§2.1).
    pub vars: HashMap<Arc<str>, Value>,
    /// Link halves attached to this node.
    pub links: Vec<LinkRec>,
}

impl LogicalNode {
    /// A fresh node.
    pub fn new(gid: NodeRef, name: Value) -> Self {
        LogicalNode { gid, name, vars: HashMap::new(), links: Vec::new() }
    }

    /// All links satisfying an evaluated hop destination, in insertion
    /// order (deterministic replication order).
    pub fn matching_links(&self, hop: &EvalHop) -> Vec<&LinkRec> {
        self.links.iter().filter(|l| l.matches(hop)).collect()
    }

    /// Remove the link half with instance id `inst`; returns it if
    /// present.
    pub fn unlink(&mut self, inst: LinkInstance) -> Option<LinkRec> {
        let i = self.links.iter().position(|l| l.inst == inst)?;
        Some(self.links.remove(i))
    }

    /// Whether the node has become an unlinked singleton (candidate for
    /// deletion after a `delete` traversal).
    pub fn is_singleton(&self) -> bool {
        self.links.is_empty()
    }

    /// Read a node variable (NULL if unset).
    pub fn var(&self, name: &str) -> Value {
        self.vars.get(name).cloned().unwrap_or(Value::Null)
    }

    /// Write a node variable.
    pub fn set_var(&mut self, name: &str, v: Value) {
        self.vars.insert(Arc::from(name), v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(name: Value, orient: Orient, peer_name: Value, inst: u64) -> LinkRec {
        LinkRec {
            inst: LinkInstance(inst),
            name,
            orient,
            peer: (DaemonId(1), NodeRef::new(1, 0)),
            peer_name,
        }
    }

    fn hop(ln: Option<Value>, ll: EvalLink, ldir: Dir) -> EvalHop {
        EvalHop { ln, ll, ldir }
    }

    #[test]
    fn orientation_rules() {
        assert!(Orient::Out.allows(Dir::Forward));
        assert!(!Orient::Out.allows(Dir::Backward));
        assert!(Orient::In.allows(Dir::Backward));
        assert!(!Orient::In.allows(Dir::Forward));
        assert!(Orient::Undirected.allows(Dir::Forward));
        assert!(Orient::Undirected.allows(Dir::Backward));
        assert!(Orient::Out.allows(Dir::Any));
        assert_eq!(Orient::Out.reversed(), Orient::In);
        assert_eq!(Orient::Undirected.reversed(), Orient::Undirected);
    }

    #[test]
    fn name_matching() {
        let l = link(Value::str("row"), Orient::Undirected, Value::str("b"), 7);
        assert!(l.matches(&hop(None, EvalLink::Wild, Dir::Any)));
        assert!(l.matches(&hop(None, EvalLink::Named(Value::str("row")), Dir::Any)));
        assert!(!l.matches(&hop(None, EvalLink::Named(Value::str("col")), Dir::Any)));
        assert!(!l.matches(&hop(None, EvalLink::Unnamed, Dir::Any)));
        assert!(l.matches(&hop(Some(Value::str("b")), EvalLink::Wild, Dir::Any)));
        assert!(!l.matches(&hop(Some(Value::str("c")), EvalLink::Wild, Dir::Any)));
    }

    #[test]
    fn unnamed_and_instance_matching() {
        let l = link(Value::Null, Orient::Out, Value::Null, 42);
        assert!(l.matches(&hop(None, EvalLink::Unnamed, Dir::Any)));
        assert!(l.matches(&hop(None, EvalLink::Instance(LinkInstance(42)), Dir::Forward)));
        assert!(!l.matches(&hop(None, EvalLink::Instance(LinkInstance(41)), Dir::Any)));
        // Direction still applies to instance matches.
        assert!(!l.matches(&hop(None, EvalLink::Instance(LinkInstance(42)), Dir::Backward)));
        // Virtual never matches a physical link.
        assert!(!l.matches(&hop(Some(Value::str("x")), EvalLink::Virtual, Dir::Any)));
    }

    #[test]
    fn numeric_names_compare_loosely() {
        let l = link(Value::Int(3), Orient::Undirected, Value::Float(2.0), 1);
        assert!(l.matches(&hop(None, EvalLink::Named(Value::Float(3.0)), Dir::Any)));
        assert!(l.matches(&hop(Some(Value::Int(2)), EvalLink::Wild, Dir::Any)));
    }

    #[test]
    fn node_link_management() {
        let mut n = LogicalNode::new(NodeRef::new(0, 0), Value::str("init"));
        assert!(n.is_singleton());
        n.links.push(link(Value::str("a"), Orient::Out, Value::Null, 1));
        n.links.push(link(Value::str("b"), Orient::In, Value::Null, 2));
        assert_eq!(n.matching_links(&hop(None, EvalLink::Wild, Dir::Any)).len(), 2);
        assert_eq!(n.matching_links(&hop(None, EvalLink::Wild, Dir::Forward)).len(), 1);
        let removed = n.unlink(LinkInstance(1)).unwrap();
        assert_eq!(removed.name, Value::str("a"));
        assert!(n.unlink(LinkInstance(1)).is_none());
        assert!(!n.is_singleton());
        n.unlink(LinkInstance(2));
        assert!(n.is_singleton());
    }

    #[test]
    fn node_vars_default_to_null() {
        let mut n = LogicalNode::new(NodeRef::new(0, 0), Value::Null);
        assert_eq!(n.var("x"), Value::Null);
        n.set_var("x", Value::Int(9));
        assert_eq!(n.var("x"), Value::Int(9));
    }
}
