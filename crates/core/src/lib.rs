//! # msgr-core — the MESSENGERS system
//!
//! This crate implements the runtime described in §2 of the paper: "a
//! collection of daemons instantiated on all physical nodes … A daemon's
//! task is to continuously receive Messengers arriving from other
//! daemons, interpret their behaviors … and send them on to their next
//! destinations."
//!
//! ## The three network levels
//!
//! 1. **Physical network** — supplied by a *platform*: either the
//!    deterministic cluster simulator ([`platform::sim`], used for all
//!    benchmarks; see DESIGN.md for the substitution rationale) or real
//!    OS threads connected by channels ([`platform::threads`]).
//! 2. **Daemon network** — a static graph over the daemons
//!    ([`DaemonTopology`]); `create` statements place new logical nodes
//!    by matching destination specifications against it.
//! 3. **Logical network** — application-created nodes and links
//!    ([`logical`]), persistent and external to any messenger: the
//!    paper's "exogenous skeleton".
//!
//! ## Execution model
//!
//! A [`daemon::Daemon`] interprets messengers one at a time
//! (non-preemptive: yield points are only the navigational statements and
//! virtual-time suspensions). A `hop` replicates the messenger's
//! serialized state to every matching link; `create` builds logical
//! nodes/links, possibly on remote daemons, and moves the messenger
//! there; `delete` is a hop that destroys the links it traverses.
//! Suspended messengers wait in a virtual-time queue released by the GVT
//! protocol (`msgr-gvt`), either conservatively (run only at GVT) or
//! optimistically (Time Warp with rollback and anti-messengers).
//!
//! ## Quick start
//!
//! ```
//! use msgr_core::{ClusterConfig, SimCluster};
//! use msgr_vm::Value;
//!
//! let program = msgr_lang::compile(
//!     r#"
//!     main() {
//!         node int visits;
//!         visits = visits + 1;
//!     }
//!     "#,
//! )?;
//! let mut cluster = SimCluster::new(ClusterConfig::new(4));
//! let pid = cluster.register_program(&program);
//! cluster.inject(0, pid, &[])?;
//! let report = cluster.run()?;
//! assert_eq!(cluster.node_var(0, &Value::str("init"), "visits"), Some(Value::Int(1)));
//! assert!(report.sim_seconds >= 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod ckpt;
pub mod config;
pub mod daemon;
pub mod ids;
pub mod logical;
pub mod platform;
pub mod profiling;
pub mod topology;
pub mod wire;

pub use ckpt::{CheckpointStore, FileStore, MemStore};
pub use config::{
    BatchPolicy, ClusterConfig, CostModel, ExecMode, NetKind, RecoveryPolicy, RetransmitPolicy,
    Succession, VtMode,
};
pub use daemon::{lane_of, CodeCache, Daemon, Effect, RegisterOutcome};
pub use ids::{DaemonId, NodeRef};
pub use platform::sim::{SimCluster, SimReport};
pub use platform::threads::{ThreadCluster, ThreadReport};
pub use topology::{DaemonTopology, LogicalTopology};
pub use wire::Wire;

pub use msgr_trace::{EventKind, Metric, Trace, TraceConfig, TraceEvent};

/// Errors surfaced by cluster operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// Injection referenced an unregistered program.
    UnknownProgram,
    /// Injection arguments did not match the entry function.
    BadInjection(String),
    /// The run did not quiesce within its event budget (livelock or
    /// runaway messenger population).
    Stalled {
        /// Events executed before giving up.
        events: u64,
    },
    /// A configuration problem (e.g. optimistic mode on the threaded
    /// platform).
    Config(String),
    /// A named entity was not found.
    NotFound(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownProgram => write!(f, "program not registered with the cluster"),
            ClusterError::BadInjection(m) => write!(f, "bad injection: {m}"),
            ClusterError::Stalled { events } => {
                write!(f, "cluster failed to quiesce after {events} events")
            }
            ClusterError::Config(m) => write!(f, "configuration error: {m}"),
            ClusterError::NotFound(m) => write!(f, "not found: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {}
