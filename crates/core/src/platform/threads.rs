//! The threaded platform: one OS thread per daemon, `std::sync::mpsc`
//! channels as the physical network, real wall-clock time.
//!
//! This is the "it actually runs" runtime: the same daemons, bytecode,
//! wire frames, and GVT protocol as the simulation, but with genuine
//! concurrency. Termination uses a cluster-wide live-messenger counter
//! (injection +1, replication +k−1, death −1): when it reaches zero no
//! messenger exists or is in flight, so the cluster has quiesced. (A
//! WAN deployment would use a distributed termination detector; the
//! counter is exact here because all daemons share one process.)

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Mutex, RwLock};

use msgr_sim::Stats;
use msgr_trace::{Metric, Trace};
use msgr_vm::{Dir, MessengerId, NativeCtx, NativeRegistry, Program, ProgramId, Value};

use crate::ckpt::{CheckpointStore, FileStore};
use crate::config::{ClusterConfig, VtMode, VtService};
use crate::daemon::{CodeCache, Daemon, Directory, Effect};
use crate::ids::{DaemonId, NodeRef};
use crate::logical::{LinkRec, Orient};
use crate::topology::{DaemonTopology, LogicalTopology};
use crate::wire::Wire;
use crate::ClusterError;

type DirMap = HashMap<Value, (DaemonId, NodeRef)>;

#[derive(Clone)]
struct SharedDirectory(Arc<RwLock<DirMap>>);

impl Directory for SharedDirectory {
    fn lookup(&self, name: &Value) -> Option<(DaemonId, NodeRef)> {
        self.0.read().unwrap().get(name).copied()
    }
}

/// Outcome of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadReport {
    /// Real elapsed time of the run, in seconds.
    pub wall_seconds: f64,
    /// Messenger runtime faults.
    pub faults: Vec<(MessengerId, String)>,
    /// Merged daemon counters.
    pub stats: Stats,
    /// Merged flight-recorder trace, present iff tracing was enabled.
    /// Threaded runs have no simulated clock, so events carry `rt = 0`
    /// and order within a daemon by sequence number only — causal per
    /// daemon, best-effort across daemons.
    pub trace: Option<Trace>,
}

/// A MESSENGERS cluster running on real threads.
///
/// Usage mirrors [`crate::SimCluster`]: configure, register programs and
/// natives, build the logical topology, inject, then [`ThreadCluster::run`]
/// — which spawns the daemon threads, waits for quiescence, and joins
/// them — and finally inspect node variables.
pub struct ThreadCluster {
    cfg: Arc<ClusterConfig>,
    daemons: Vec<Daemon>,
    codes: CodeCache,
    natives: Arc<RwLock<NativeRegistry>>,
    directory: SharedDirectory,
    live: Arc<AtomicI64>,
    faults: Arc<Mutex<Vec<(MessengerId, String)>>>,
}

impl std::fmt::Debug for ThreadCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCluster").field("daemons", &self.daemons.len()).finish()
    }
}

impl ThreadCluster {
    /// Build a cluster per `cfg` with a clique daemon topology.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] — optimistic virtual time and fault
    /// injection are only supported on the simulation platform.
    pub fn new(mut cfg: ClusterConfig) -> Result<Self, ClusterError> {
        // Profiler output rides the trace stream: profiling implies tracing.
        if cfg.profile {
            cfg.trace.enabled = true;
        }
        if cfg.vt_mode == VtMode::Optimistic {
            return Err(ClusterError::Config(
                "optimistic virtual time requires the simulation platform".to_string(),
            ));
        }
        if cfg.reliable() {
            // In-process channels neither lose nor reorder; injecting
            // faults here would need a virtual clock for timers anyway.
            return Err(ClusterError::Config(
                "fault injection requires the simulation platform".to_string(),
            ));
        }
        // Same typed-key discipline as the simulation platform.
        msgr_sim::install_key_validator(Metric::validator);
        let cfg = Arc::new(cfg);
        let codes = CodeCache::with_analysis(cfg.analysis);
        let natives = Arc::new(RwLock::new(NativeRegistry::new()));
        let topo = Arc::new(DaemonTopology::clique(cfg.daemons));
        let daemons = (0..cfg.daemons)
            .map(|i| {
                Daemon::new(
                    DaemonId(i as u16),
                    cfg.clone(),
                    topo.clone(),
                    codes.clone(),
                    natives.clone(),
                )
            })
            .collect();
        Ok(ThreadCluster {
            cfg,
            daemons,
            codes,
            natives,
            directory: SharedDirectory(Arc::new(RwLock::new(HashMap::new()))),
            live: Arc::new(AtomicI64::new(0)),
            faults: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// Register a compiled program cluster-wide.
    pub fn register_program(&mut self, program: &Program) -> ProgramId {
        let (id, outcome) = self.codes.register_outcome(program);
        for kind in outcome.trace_events(id) {
            self.daemons[0].recorder_mut().emit_sys(kind);
        }
        id
    }

    /// Register a native function on every daemon.
    pub fn register_native(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&mut dyn NativeCtx, &[Value]) -> Result<Value, String> + Send + Sync + 'static,
    ) {
        self.natives.write().unwrap().register(name, f);
    }

    /// Realize a logical topology before the run.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NotFound`] / [`ClusterError::Config`] as for the
    /// simulation platform.
    pub fn build(&mut self, topo: &LogicalTopology) -> Result<(), ClusterError> {
        for (name, d) in &topo.nodes {
            if d.0 as usize >= self.daemons.len() {
                return Err(ClusterError::Config(format!("node placed on missing daemon {d}")));
            }
            let gid = self.daemons[d.0 as usize].build_node(name.clone());
            self.directory.0.write().unwrap().insert(name.clone(), (*d, gid));
        }
        for (from, to, link_name, dir) in &topo.links {
            let (fd, fref) = self
                .directory
                .lookup(from)
                .ok_or_else(|| ClusterError::NotFound(format!("node {from}")))?;
            let (td, tref) = self
                .directory
                .lookup(to)
                .ok_or_else(|| ClusterError::NotFound(format!("node {to}")))?;
            let inst = self.daemons[fd.0 as usize].alloc_link();
            let orient_from = match dir {
                Dir::Forward => Orient::Out,
                Dir::Backward => Orient::In,
                Dir::Any => Orient::Undirected,
            };
            self.daemons[fd.0 as usize].install_link(
                fref,
                LinkRec {
                    inst,
                    name: link_name.clone(),
                    orient: orient_from,
                    peer: (td, tref),
                    peer_name: to.clone(),
                },
            );
            self.daemons[td.0 as usize].install_link(
                tref,
                LinkRec {
                    inst,
                    name: link_name.clone(),
                    orient: orient_from.reversed(),
                    peer: (fd, fref),
                    peer_name: from.clone(),
                },
            );
        }
        Ok(())
    }

    /// Inject a messenger into daemon `d`'s `init` node (pre-run).
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownProgram`] / [`ClusterError::BadInjection`].
    pub fn inject(
        &mut self,
        d: u16,
        program: ProgramId,
        args: &[Value],
    ) -> Result<MessengerId, ClusterError> {
        let at = self.daemons[d as usize].init_node();
        self.inject_at_node(d, program, args, at)
    }

    /// Inject a messenger into the named node (pre-run).
    ///
    /// # Errors
    ///
    /// As [`ThreadCluster::inject`], plus [`ClusterError::NotFound`].
    pub fn inject_at(
        &mut self,
        node: &Value,
        program: ProgramId,
        args: &[Value],
    ) -> Result<MessengerId, ClusterError> {
        let (d, gid) = self
            .directory
            .lookup(node)
            .ok_or_else(|| ClusterError::NotFound(format!("node {node}")))?;
        self.inject_at_node(d.0, program, args, gid)
    }

    fn inject_at_node(
        &mut self,
        d: u16,
        program: ProgramId,
        args: &[Value],
        at: NodeRef,
    ) -> Result<MessengerId, ClusterError> {
        // Mirror the sim platform: quarantined code injects fine and is
        // refused (with a fault + `verify_rejected`) by the executing
        // daemon.
        let prog = self.codes.get_any(program).ok_or(ClusterError::UnknownProgram)?;
        let id = self.daemons[d as usize]
            .launch(&prog, args, at)
            .map_err(|e| ClusterError::BadInjection(e.to_string()))?;
        self.live.fetch_add(1, Ordering::SeqCst);
        Ok(id)
    }

    /// Write a node variable of a named node (pre-run setup).
    ///
    /// # Errors
    ///
    /// [`ClusterError::NotFound`] if the node is unknown.
    pub fn set_node_var(&mut self, node: &Value, var: &str, v: Value) -> Result<(), ClusterError> {
        let (d, gid) = self
            .directory
            .lookup(node)
            .ok_or_else(|| ClusterError::NotFound(format!("node {node}")))?;
        self.daemons[d.0 as usize].set_node_var(gid, var, v);
        Ok(())
    }

    /// Read a node variable of a named node (post-run inspection).
    pub fn node_var_by_name(&self, node: &Value, var: &str) -> Option<Value> {
        let (d, gid) = self.directory.lookup(node)?;
        self.daemons[d.0 as usize].node_var(gid, var)
    }

    /// Read a node variable of daemon `d`'s node named `node`.
    pub fn node_var(&self, d: u16, node: &Value, var: &str) -> Option<Value> {
        let daemon = &self.daemons[d as usize];
        let gid = daemon.find_node(node)?;
        daemon.node_var(gid, var)
    }

    /// Spawn the daemon threads, run to quiescence, join, and report.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Stalled`] if the cluster fails to quiesce within
    /// a generous wall-clock bound (5 minutes).
    pub fn run(&mut self) -> Result<ThreadReport, ClusterError> {
        let n = self.daemons.len();
        let (senders, receivers): (Vec<Sender<Wire>>, Vec<Receiver<Wire>>) =
            (0..n).map(|_| channel()).unzip();
        let shutdown = Arc::new(AtomicBool::new(false));
        let gvt_needed = match self.cfg.vt_service {
            VtService::On => true,
            VtService::Off => false,
            VtService::Auto => self.codes.any_uses_virtual_time(),
        };

        // File-backed durability: with a checkpoint directory configured,
        // every daemon periodically snapshots its durable state (node
        // variables, parked messengers, transport channels) to
        // `daemon-<id>.ckpt`, and once more at shutdown. Each thread owns
        // its own store handle; the files are disjoint per daemon.
        let ckpt_every = Duration::from_nanos(self.cfg.recovery.checkpoint_every.max(1_000_000));
        let mut stores: Vec<Option<FileStore>> = Vec::with_capacity(n);
        for _ in 0..n {
            stores.push(match &self.cfg.checkpoint_dir {
                None => None,
                Some(dir) => Some(FileStore::new(dir.clone()).map_err(|e| {
                    ClusterError::Config(format!("checkpoint dir {}: {e}", dir.display()))
                })?),
            });
        }

        let start = Instant::now();
        let mut handles = Vec::with_capacity(n);
        for ((mut daemon, rx), store) in self.daemons.drain(..).zip(receivers).zip(stores) {
            let senders = senders.clone();
            let shutdown = shutdown.clone();
            let live = self.live.clone();
            let faults = self.faults.clone();
            let dir = self.directory.clone();
            handles.push(std::thread::spawn(move || {
                run_daemon(
                    &mut daemon,
                    rx,
                    senders,
                    shutdown,
                    live,
                    faults,
                    dir,
                    store,
                    ckpt_every,
                );
                daemon
            }));
        }

        // GVT interval ticker.
        let ticker = if gvt_needed {
            let tx0 = senders[0].clone();
            let shutdown = shutdown.clone();
            let interval = Duration::from_nanos(self.cfg.gvt_interval.max(1_000_000));
            Some(std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if tx0.send(Wire::GvtKick).is_err() {
                        break;
                    }
                }
            }))
        } else {
            None
        };

        // Wait for quiescence.
        let deadline = Instant::now() + Duration::from_secs(300);
        let stalled = loop {
            if self.live.load(Ordering::SeqCst) <= 0 {
                break false;
            }
            if Instant::now() > deadline {
                break true;
            }
            std::thread::sleep(Duration::from_micros(200));
        };
        shutdown.store(true, Ordering::SeqCst);
        for h in handles {
            let daemon = h.join().expect("daemon thread panicked");
            self.daemons.push(daemon);
        }
        if let Some(t) = ticker {
            let _ = t.join();
        }
        if stalled {
            return Err(ClusterError::Stalled { events: 0 });
        }
        let mut stats = Stats::new();
        for d in &self.daemons {
            stats.merge(d.stats());
        }
        stats.merge(&self.codes.stats());
        let trace = self.cfg.trace.enabled.then(|| {
            let parts = self.daemons.iter_mut().map(Daemon::take_trace).collect();
            Trace::from_parts(parts)
        });
        if let Some(t) = &trace {
            if t.dropped > 0 {
                stats.add(Metric::TraceDropped, t.dropped);
            }
            // With file-backed durability configured, the trace is an
            // artifact of the run like the final checkpoints: persist it
            // beside them so a post-mortem can read both.
            if let Some(dir) = &self.cfg.checkpoint_dir {
                if let Ok(store) = FileStore::new(dir.clone()) {
                    store.put_blob("trace.jsonl", t.to_jsonl().as_bytes());
                }
            }
        }
        Ok(ThreadReport {
            wall_seconds: start.elapsed().as_secs_f64(),
            faults: self.faults.lock().unwrap().clone(),
            stats,
            trace,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn run_daemon(
    daemon: &mut Daemon,
    rx: Receiver<Wire>,
    senders: Vec<Sender<Wire>>,
    shutdown: Arc<AtomicBool>,
    live: Arc<AtomicI64>,
    faults: Arc<Mutex<Vec<(MessengerId, String)>>>,
    dir: SharedDirectory,
    mut store: Option<FileStore>,
    ckpt_every: Duration,
) {
    // On threads the recorder's `rt` stays 0 for trace determinism, so
    // the profiler (if on) keeps its own monotonic clock instead.
    daemon.profile_wallclock();
    let mut fx: Vec<Effect> = Vec::new();
    let mut last_ckpt = Instant::now();
    loop {
        if let Some(s) = store.as_mut() {
            if last_ckpt.elapsed() >= ckpt_every {
                s.put(daemon.id(), daemon.checkpoint_snapshot());
                last_ckpt = Instant::now();
            }
        }
        // Drain the inbox.
        while let Ok(wire) = rx.try_recv() {
            daemon.on_wire(wire, &mut fx);
            apply(&mut fx, &senders, &live, &faults, &dir);
        }
        if daemon.has_work() {
            // Rotating drain: round-robin over the execution lanes (with
            // work-stealing from the next non-empty lane), then coalesce
            // the resulting burst of small frames into per-peer batches
            // so each flush costs one channel send instead of many.
            daemon.run_segment_rotating(&dir, &mut fx);
            daemon.coalesce_sends(&mut fx);
            apply(&mut fx, &senders, &live, &faults, &dir);
            continue;
        }
        // Idle: block briefly for new work, checking for shutdown.
        match rx.recv_timeout(Duration::from_micros(500)) {
            Ok(wire) => {
                daemon.on_wire(wire, &mut fx);
                apply(&mut fx, &senders, &live, &faults, &dir);
            }
            Err(_) => {
                if shutdown.load(Ordering::Relaxed) {
                    // A final snapshot so the files reflect the finished
                    // state (post-run inspection and cold restarts).
                    if let Some(s) = store.as_mut() {
                        s.put(daemon.id(), daemon.checkpoint_snapshot());
                    }
                    return;
                }
            }
        }
    }
}

fn apply(
    fx: &mut Vec<Effect>,
    senders: &[Sender<Wire>],
    live: &AtomicI64,
    faults: &Mutex<Vec<(MessengerId, String)>>,
    dir: &SharedDirectory,
) {
    for f in fx.drain(..) {
        match f {
            Effect::Send { dst, wire } => {
                let _ = senders[dst.0 as usize].send(wire);
            }
            Effect::LiveDelta(d) => {
                live.fetch_add(d, Ordering::SeqCst);
            }
            Effect::Fault { messenger, error } => {
                faults.lock().unwrap().push((messenger, error));
            }
            Effect::DirectoryAdd { name, daemon, node } => {
                dir.0.write().unwrap().insert(name, (daemon, node));
            }
            Effect::DirectoryRemove { name } => {
                dir.0.write().unwrap().remove(&name);
            }
            // Unreachable: `new` rejects fault plans, and without one the
            // daemons never arm retransmission timers or failover.
            Effect::Timer { .. } | Effect::Recover { .. } => {}
        }
    }
}
