//! Runtime platforms: the deterministic cluster simulator and the real
//! threaded runtime.
//!
//! Both platforms drive the same [`crate::Daemon`] logic; they differ
//! only in how wires travel and how time passes. Benchmarks use the
//! simulator (reproducible, scales to 32 "hosts" on one machine, charges
//! the calibrated 1997 cost model); examples and correctness tests also
//! run the threaded platform to show real concurrent execution.

pub mod sim;
pub mod threads;
