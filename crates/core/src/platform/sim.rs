//! The simulation platform: the whole MESSENGERS cluster inside the
//! deterministic discrete-event simulator (`msgr-sim`).
//!
//! Hosts are CPUs with the configured speed; daemons charge every
//! execution segment, migration encode/decode, and GVT control message
//! to their host CPU; wires travel through the configured network model
//! (shared-bus Ethernet by default). A run ends when the event queue
//! drains — i.e. when every messenger has terminated.

use std::collections::HashMap;
use std::sync::Arc;

use std::sync::RwLock;

use msgr_sim::{
    Cpu, DetRng, Engine, FaultInjector, FrameFate, HostId, IdealNet, NetModel, SharedBus, SimTime,
    Stats, Switched, MILLI,
};
use msgr_trace::{EventKind, Metric, Trace};
use msgr_vm::{MessengerId, NativeCtx, NativeRegistry, Program, ProgramId, Value};

use crate::ckpt::{CheckpointStore, MemStore, ReplicatedStore};
use crate::config::{ClusterConfig, NetKind, VtMode, VtService};
use crate::daemon::{CodeCache, Daemon, Effect};
use crate::ids::{DaemonId, NodeRef};
use crate::logical::{LinkRec, Orient};
use crate::topology::{DaemonTopology, LogicalTopology};
use crate::wire::Wire;
use crate::ClusterError;
use msgr_vm::Dir;

/// The world threaded through simulation events.
struct World {
    cfg: Arc<ClusterConfig>,
    daemons: Vec<Daemon>,
    cpus: Vec<Cpu>,
    net: Box<dyn NetModel>,
    directory: HashMap<Value, (DaemonId, NodeRef)>,
    live: i64,
    in_flight: u64,
    gvt_enabled: bool,
    faults: Vec<(MessengerId, String)>,
    /// Frame-fault oracle; `None` under the benign default plan, in which
    /// case none of the fault bookkeeping below is ever touched.
    injector: Option<FaultInjector>,
    /// Per-daemon crash windows: daemon `i` ignores the world until
    /// `down_until[i]` (its state survives — fail-recover semantics).
    /// `SimTime::MAX` marks a *permanent* kill: volatile state is gone
    /// and only a checkpoint restore brings the work back.
    down_until: Vec<SimTime>,
    /// Checkpoint storage, `k`-replicated: every snapshot version lives
    /// on the owner's host and on its `k` next-alive successors, and a
    /// holder's copies die with it. Recovery reads the best copy on a
    /// live holder, so it survives losing the victim together with up to
    /// `k - 1` of its replica holders.
    ckpt: ReplicatedStore<MemStore>,
    /// Per-daemon snapshot version counters (monotone; replica staleness
    /// is resolved by version, not arrival order).
    ckpt_ver: Vec<u32>,
    /// Failover once-guard: victim `i`'s checkpoint is restored at most
    /// once, no matter how many detectors reach the Dead verdict.
    restored: Vec<bool>,
    /// When each permanently killed daemon died (recovery-latency stat).
    killed_at: Vec<Option<SimTime>>,
    /// Whether the cluster-wide heartbeat chain is scheduled. The chain
    /// winds down when the cluster quiesces; a later kill revives it.
    beats_live: bool,
    /// Same, per daemon, for the periodic checkpoint chains.
    ckpt_live: Vec<bool>,
    /// Completion time of the last *productive* event (frame accepted or
    /// segment finished). Reported instead of `engine.now()` when faults
    /// are active, because stale retransmission timers legitimately
    /// outlive the computation and would otherwise inflate the runtime.
    last_work: SimTime,
    stats: Stats,
}

impl World {
    fn outstanding(&self) -> bool {
        self.in_flight > 0
            || self.daemons.iter().any(Daemon::has_any_messengers)
            || self.daemons.iter().map(Daemon::unacked_frames).sum::<u64>() > 0
            || self.daemons.iter().map(Daemon::staged_work).sum::<u64>() > 0
            || self.has_unrestored_kill()
    }

    /// A permanently killed daemon whose checkpoint has not been
    /// restored yet holds work (its checkpointed messengers) that no
    /// live daemon can see — the run must not quiesce past it.
    fn has_unrestored_kill(&self) -> bool {
        (0..self.daemons.len()).any(|i| self.down_until[i] == SimTime::MAX && !self.restored[i])
    }
}

type En = Engine<World>;

fn apply_effects(en: &mut En, w: &mut World, src: DaemonId, at: SimTime, mut fx: Vec<Effect>) {
    // Under an active fault plan, envelope outgoing payload frames in the
    // reliable transport (no-op otherwise).
    w.daemons[src.0 as usize].seal_effects(at, &mut fx);
    for f in fx {
        match f {
            Effect::Send { dst, wire } => {
                let bytes = wire.wire_bytes(w.cfg.costs.wire_header_bytes);
                let src_h = HostId(src.0 as u32);
                let dst_h = HostId(dst.0 as u32);
                // Checkpoint replication is the durable-write path: a
                // push is a disk write on the holder's host, not a
                // droppable datagram — it either completes or the holder
                // is dead (reliable-or-fail-stop). Everything else,
                // consensus and gossip included, faces the injector;
                // ctrl losses heal by re-proposal at a higher ballot.
                let durable = matches!(&wire, Wire::CkptPush { .. } | Wire::CkptAck { .. });
                let fate = match &mut w.injector {
                    Some(inj) if src != dst && !durable => inj.fate(),
                    _ => FrameFate::intact(),
                };
                w.stats.bump(Metric::Wires);
                w.stats.add(Metric::WireBytes, bytes);
                if fate.dropped() {
                    // The bits went onto the medium; they just never
                    // arrived. Charge the network, schedule nothing.
                    let _ = w.net.transfer(at, src_h, dst_h, bytes);
                    w.stats.bump(Metric::NetFramesLost);
                    let rec = w.daemons[src.0 as usize].recorder_mut();
                    rec.set_now(at);
                    rec.emit_sys(EventKind::NetDrop { to: dst.0 });
                    continue;
                }
                if fate.copies == 2 {
                    w.stats.bump(Metric::NetFramesDuplicated);
                    let rec = w.daemons[src.0 as usize].recorder_mut();
                    rec.set_now(at);
                    rec.emit_sys(EventKind::NetDup { to: dst.0 });
                }
                let mut wire = Some(wire);
                for k in 0..fate.copies as usize {
                    let extra = fate.delays[k];
                    if extra > 0 {
                        w.stats.bump(Metric::NetFramesDelayed);
                        let rec = w.daemons[src.0 as usize].recorder_mut();
                        rec.set_now(at);
                        rec.emit_sys(EventKind::NetDelay { to: dst.0, by: extra });
                    }
                    let arrival = w.net.transfer(at, src_h, dst_h, bytes).saturating_add(extra);
                    w.in_flight += 1;
                    let copy = if k + 1 == fate.copies as usize {
                        wire.take().expect("one move per frame")
                    } else {
                        wire.as_ref().expect("clone before move").clone()
                    };
                    en.schedule_at(arrival, move |en, w| deliver(en, w, src, dst, at, copy));
                }
            }
            Effect::Timer { src: csrc, chan, seq, delay } => {
                // The timer belongs to `src` — the daemon currently
                // holding the channel's retransmit buffer. If it dies,
                // the timer dies with it; the successor re-arms its own.
                en.schedule_at(at.saturating_add(delay), move |en, w| {
                    timer_fire(en, w, src, csrc, chan, seq);
                });
            }
            Effect::Recover { victim } => recover(en, w, src, victim),
            Effect::LiveDelta(d) => w.live += d,
            Effect::Fault { messenger, error } => {
                w.faults.push((messenger, error));
            }
            Effect::DirectoryAdd { name, daemon, node } => {
                w.directory.insert(name, (daemon, node));
            }
            Effect::DirectoryRemove { name } => {
                w.directory.remove(&name);
            }
        }
    }
}

/// A retransmission timer fired on daemon `holder` for the channel
/// `(src, chan)`, frame `seq`.
fn timer_fire(
    en: &mut En,
    w: &mut World,
    holder: DaemonId,
    src: DaemonId,
    chan: DaemonId,
    seq: u64,
) {
    let now = en.now();
    let i = holder.0 as usize;
    if w.down_until[i] == SimTime::MAX {
        return; // permanently dead: the successor re-armed its own timers
    }
    if w.down_until[i] > now {
        // The sender itself is crashed: it can't retransmit until it
        // restarts. Defer the timer to the restart instant.
        let resume = w.down_until[i];
        en.schedule_at(resume, move |en, w| timer_fire(en, w, holder, src, chan, seq));
        return;
    }
    let mut fx = Vec::new();
    let cost = w.daemons[i].on_timer(now, src, chan, seq, &mut fx);
    if cost == 0 && fx.is_empty() {
        return; // stale timer: the frame was acked long ago
    }
    let (_, end) = w.cpus[i].run(now, cost);
    en.schedule_at(end, move |en, w| {
        // A kill between the timer firing and the CPU finishing destroys
        // the retransmission along with the rest of the volatile state.
        if w.down_until[holder.0 as usize] == SimTime::MAX {
            return;
        }
        apply_effects(en, w, holder, en.now(), fx);
    });
}

fn deliver(en: &mut En, w: &mut World, src: DaemonId, dst: DaemonId, sent_at: SimTime, wire: Wire) {
    w.in_flight -= 1;
    let now = en.now();
    let i = dst.0 as usize;
    if w.down_until[i] > now {
        if w.down_until[i] == SimTime::MAX {
            // Permanently dead: every frame addressed to it — loopback
            // included — is lost. The reliable transport re-routes the
            // retransmission to the successor once the eviction lands.
            w.stats.bump(Metric::CrashFramesLost);
            return;
        }
        if src == dst {
            // A daemon's hand-off to itself never touches the wire: it
            // is daemon memory, and fail-recover semantics preserve
            // daemon memory across a crash. Park it until the restart.
            let resume = w.down_until[i];
            w.in_flight += 1;
            en.schedule_at(resume, move |en, w| deliver(en, w, src, dst, sent_at, wire));
            return;
        }
        // The destination daemon is crashed: the frame is lost in
        // flight. Under the reliable transport the sender's
        // retransmission timer will re-deliver it after the restart.
        w.stats.bump(Metric::CrashFramesLost);
        return;
    }
    let mut fx = Vec::new();
    // Cost-attribution profiling: credit the in-flight latency of every
    // messenger carried in this frame (a no-op with profiling off).
    w.daemons[i].profile_transport(&wire, now.saturating_sub(sent_at));
    let cost = w.daemons[i].on_wire_at(now, wire, &mut fx);
    let (_, end) = w.cpus[i].run(now, cost);
    w.last_work = w.last_work.max(end);
    en.schedule_at(end, move |en, w| {
        // A kill between frame acceptance and the CPU finishing destroys
        // the uncommitted effect batch with the daemon; the sender's
        // retransmit buffer still holds the frame, so the successor
        // re-receives it after failover.
        if w.down_until[dst.0 as usize] == SimTime::MAX {
            return;
        }
        apply_effects(en, w, dst, en.now(), fx);
        tick(en, w, dst);
    });
}

fn tick(en: &mut En, w: &mut World, d: DaemonId) {
    let now = en.now();
    let i = d.0 as usize;
    if w.down_until[i] == SimTime::MAX {
        return; // permanently dead
    }
    if w.down_until[i] > now {
        // Crashed: resume exactly at the restart instant.
        let resume = w.down_until[i];
        en.schedule_at(resume, move |en, w| tick(en, w, d));
        return;
    }
    if !w.cpus[i].idle_at(now) {
        let resume = w.cpus[i].busy_until();
        en.schedule_at(resume, move |en, w| tick(en, w, d));
        return;
    }
    if !w.daemons[i].has_work() {
        return;
    }
    w.daemons[i].recorder_mut().set_now(now);
    let mut fx = Vec::new();
    let directory = std::mem::take(&mut w.directory);
    let cost = w.daemons[i].run_segment(&directory, &mut fx);
    w.directory = directory;
    let Some(cost) = cost else {
        return;
    };
    let (_, end) = w.cpus[i].run(now, cost);
    w.last_work = w.last_work.max(end);
    en.schedule_at(end, move |en, w| {
        // A kill mid-segment erases the segment's effects: the messenger
        // that ran it is back in the last checkpoint, so the successor
        // replays the whole segment instead.
        if w.down_until[d.0 as usize] == SimTime::MAX {
            return;
        }
        apply_effects(en, w, d, en.now(), fx);
        tick(en, w, d);
    });
}

fn gvt_tick(en: &mut En, w: &mut World) {
    // GVT rounds — including the final one that confirms quiescence —
    // are part of the run for timing purposes. Stamping them here keeps
    // the faulty-run metric (`last_work`) aligned with the fault-free
    // one (`engine.now()`), which includes this drain tail.
    w.last_work = w.last_work.max(en.now());
    if !w.outstanding() {
        return; // computation finished; let the queue drain
    }
    let mut fx = Vec::new();
    w.daemons[0].gvt_begin(&mut fx);
    apply_effects(en, w, DaemonId(0), en.now(), fx);
    let interval = w.cfg.gvt_interval.max(MILLI / 2);
    en.schedule_in(interval, gvt_tick);
}

/// A permanent kill: the daemon's volatile state is destroyed on the
/// spot. Its last checkpoint (in [`World::ckpt`]) is all that remains.
fn kill(en: &mut En, w: &mut World, d: DaemonId) {
    let i = d.0 as usize;
    w.down_until[i] = SimTime::MAX;
    w.killed_at[i] = Some(en.now());
    w.stats.bump(Metric::Kills);
    // The kill event lands in the victim's own flight recorder *before*
    // `gut`: the recorder deliberately survives the kill, so the last
    // window of pre-crash events — including this one — reaches the
    // merged trace.
    let rec = w.daemons[i].recorder_mut();
    rec.set_now(en.now());
    rec.emit_sys(EventKind::Kill);
    w.daemons[i].gut();
    // Every checkpoint replica this daemon held dies with its host.
    w.ckpt.fail(d);
    // If the cluster had quiesced, the heartbeat and checkpoint chains
    // wound down — but the kill itself creates new work (the victim's
    // unrestored checkpoint), so failure detection must come back.
    if !w.beats_live {
        w.beats_live = true;
        let hb = w.cfg.recovery.heartbeat_every.max(MILLI / 2);
        en.schedule_in(hb, beat_tick);
    }
    for j in 0..w.daemons.len() {
        if j != i && w.down_until[j] != SimTime::MAX && !w.ckpt_live[j] {
            w.ckpt_live[j] = true;
            let every = w.cfg.recovery.checkpoint_every.max(MILLI / 2);
            let dj = DaemonId(j as u16);
            en.schedule_at(en.now().saturating_add(every), move |en, w| ckpt_tick(en, w, dj));
        }
    }
}

/// Checkpoint daemon `d` right now: flush the output-commit stage (which
/// seals staged sends into the retransmit buffer and releases deferred
/// acks), store the snapshot durably, then let the flushed effects out.
/// The order is load-bearing: the effects become visible only together
/// with the snapshot that can replay them.
fn checkpoint_now(en: &mut En, w: &mut World, d: DaemonId) {
    let i = d.0 as usize;
    let now = en.now();
    let mut fx = Vec::new();
    w.daemons[i].checkpoint_flush(now, &mut fx);
    let snap = w.daemons[i].checkpoint_snapshot();
    let bytes = snap.len() as u64;
    // Write-ahead replication: the snapshot is durable on the owner's
    // host and on its k next-alive successors *before* the flushed
    // effects go out below — the output-commit barrier, now k-wide. The
    // CkptPush frames carry the same bytes through the (loss-exempt)
    // network for cost accounting and the holders' acks. A snapshot
    // identical to the last one keeps its version, and holders that
    // already have the current version are not pushed to again — the
    // idempotence that lets the cadence quiesce with the computation
    // (while still re-replicating after a *holder* dies).
    if !w.ckpt.unchanged(d, &snap) {
        w.ckpt_ver[i] += 1;
    }
    let ver = w.ckpt_ver[i];
    w.ckpt.install(d, d, ver, snap.clone());
    let k = w.cfg.replica_count();
    let n = w.daemons.len();
    let mut out = Vec::new();
    let mut covered = 0usize;
    let mut pushed = 0u64;
    for step in 1..n {
        if covered >= k {
            break;
        }
        let j = (i + step) % n;
        if w.down_until[j] == SimTime::MAX {
            continue;
        }
        let holder = DaemonId(j as u16);
        covered += 1;
        if w.ckpt.held_version(d, holder) == Some(ver) {
            continue; // already durable there — nothing to push
        }
        w.ckpt.install(d, holder, ver, snap.clone());
        out.push(Effect::Send {
            dst: holder,
            wire: Wire::CkptPush { owner: d, ver, snapshot: snap.clone() },
        });
        pushed += 1;
    }
    // Pushes ride ahead of the flushed effects they guard.
    out.append(&mut fx);
    let cost = w.cfg.costs.hop_send_ns + bytes * (1 + pushed) * w.cfg.costs.per_byte_copy_ns;
    let (_, end) = w.cpus[i].run(now, cost);
    w.last_work = w.last_work.max(end);
    apply_effects(en, w, d, now, out);
}

/// Periodic per-daemon checkpoint cadence (recovery-armed runs only).
fn ckpt_tick(en: &mut En, w: &mut World, d: DaemonId) {
    let i = d.0 as usize;
    let now = en.now();
    if w.down_until[i] == SimTime::MAX {
        w.ckpt_live[i] = false;
        return; // dead: its cadence dies with it
    }
    if w.down_until[i] > now {
        let resume = w.down_until[i];
        en.schedule_at(resume, move |en, w| ckpt_tick(en, w, d));
        return;
    }
    checkpoint_now(en, w, d);
    if !w.outstanding() {
        w.ckpt_live[i] = false;
        return; // computation finished; let the queue drain
    }
    let every = w.cfg.recovery.checkpoint_every.max(MILLI / 2);
    en.schedule_at(now.saturating_add(every), move |en, w| ckpt_tick(en, w, d));
    tick(en, w, d);
}

/// One cluster-wide heartbeat instant: every live daemon beats and runs
/// its failure detector at the same simulated time, so Dead verdicts —
/// and therefore failover — are deterministic per seed.
fn beat_tick(en: &mut En, w: &mut World) {
    if !w.outstanding() {
        w.beats_live = false;
        return;
    }
    let now = en.now();
    for i in 0..w.daemons.len() {
        if w.down_until[i] > now {
            continue;
        }
        let d = DaemonId(i as u16);
        let mut fx = Vec::new();
        w.daemons[i].on_beat_tick(now, &mut fx);
        apply_effects(en, w, d, now, fx);
    }
    let every = w.cfg.recovery.heartbeat_every.max(MILLI / 2);
    en.schedule_in(every, beat_tick);
}

/// Failover: `successor` adopts `victim`'s last checkpoint. Runs at most
/// once per victim; the restore is followed immediately by a checkpoint
/// of the successor, so a chained failure cannot lose the adopted state.
fn recover(en: &mut En, w: &mut World, successor: DaemonId, victim: DaemonId) {
    let vi = victim.0 as usize;
    if w.restored[vi] {
        return;
    }
    w.restored[vi] = true;
    let Some(snap) = w.ckpt.get(victim) else {
        panic!(
            "no surviving checkpoint for daemon {victim}: it died together with all {} of its \
             replica holder(s); raise ClusterConfig::replication or kill fewer daemons at once",
            w.cfg.replica_count()
        );
    };
    let bytes = snap.len() as u64;
    let now = en.now();
    let si = successor.0 as usize;
    let mut fx = Vec::new();
    if let Err(e) = w.daemons[si].restore_from(victim, snap, now, &mut fx) {
        panic!("restoring daemon {victim} from its checkpoint failed: {e}");
    }
    // Restored nodes keep their gids: published names move to the
    // successor in place, and names the victim never published stay out
    // of the directory.
    for entry in w.directory.values_mut() {
        if entry.0 == victim {
            entry.0 = successor;
        }
    }
    if let Some(k) = w.killed_at[vi] {
        // Both views of the same number: the counter keeps the historical
        // total, the histogram feeds the p50/p99/max quantiles the
        // recovery ablation reports.
        let lat = now.saturating_sub(k);
        w.stats.add(Metric::RecoveryLatencyNs, lat);
        w.stats.record(Metric::RecoveryLatencyNs, lat);
        // The messengers the restore just revived sat behind the crash
        // for exactly this long: charge it to their `stall` phase.
        w.daemons[si].profile_recovery_stall(lat);
    }
    let cost = w.cfg.costs.hop_recv_ns + bytes * w.cfg.costs.per_byte_copy_ns;
    let (_, end) = w.cpus[si].run(now, cost);
    w.last_work = w.last_work.max(end);
    apply_effects(en, w, successor, now, fx);
    checkpoint_now(en, w, successor);
    en.schedule_at(end, move |en, w| tick(en, w, successor));
}

/// Outcome of a simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Simulated wall-clock of the whole run, in seconds — the number
    /// the paper's figures plot.
    pub sim_seconds: f64,
    /// Discrete events executed.
    pub events: u64,
    /// Messenger runtime faults (id, message).
    pub faults: Vec<(MessengerId, String)>,
    /// Merged counters: per-daemon stats plus platform stats
    /// (`wires`, `wire_bytes`, …).
    pub stats: Stats,
    /// Live-messenger accounting leak (0 for a clean run).
    pub live_leak: i64,
    /// Merged flight-recorder trace, present iff tracing was enabled in
    /// the cluster configuration. Events are in the deterministic total
    /// order `(realtime, daemon, seq)`.
    pub trace: Option<Trace>,
}

/// A MESSENGERS cluster inside the discrete-event simulator.
///
/// See the crate-level example. Typical flow: configure → register
/// programs and natives → build a logical topology (optional) → inject →
/// [`SimCluster::run`] → inspect node variables and the report.
pub struct SimCluster {
    engine: En,
    world: World,
    codes: CodeCache,
    natives: Arc<RwLock<NativeRegistry>>,
}

impl std::fmt::Debug for SimCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCluster")
            .field("daemons", &self.world.daemons.len())
            .field("now", &self.engine.now())
            .finish()
    }
}

impl SimCluster {
    /// Build a cluster per `cfg`, with a clique daemon topology.
    pub fn new(cfg: ClusterConfig) -> Self {
        Self::with_daemon_topology(cfg.clone(), DaemonTopology::clique(cfg.daemons))
    }

    /// Build a cluster with an explicit daemon topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology size differs from `cfg.daemons`.
    pub fn with_daemon_topology(mut cfg: ClusterConfig, topo: DaemonTopology) -> Self {
        assert_eq!(topo.len(), cfg.daemons, "topology size mismatch");
        // The profiler's output (phase ledgers, pc samples) rides the
        // trace stream: profiling implies tracing.
        if cfg.profile {
            cfg.trace.enabled = true;
        }
        // Every stats key the cluster emits must be a registered typed
        // metric; debug builds assert it at the emission site.
        msgr_sim::install_key_validator(Metric::validator);
        if let Err(e) = cfg.faults.validate(cfg.daemons) {
            panic!("invalid fault plan: {e}");
        }
        if cfg.recovery_armed() {
            assert!(
                cfg.vt_mode != VtMode::Optimistic,
                "permanent kills are not supported under optimistic virtual time \
                 (checkpoints do not capture Time-Warp rollback state)"
            );
            assert!(
                cfg.faults.crashes.iter().all(|c| !(c.is_kill() && c.host == 0)),
                "daemon 0 hosts the GVT coordinator and cannot be permanently killed \
                 (coordinator failover is not supported)"
            );
        }
        let cfg = Arc::new(cfg);
        let codes = CodeCache::with_analysis(cfg.analysis);
        let natives = Arc::new(RwLock::new(NativeRegistry::new()));
        let topo = Arc::new(topo);
        let daemons: Vec<Daemon> = (0..cfg.daemons)
            .map(|i| {
                Daemon::new(
                    DaemonId(i as u16),
                    cfg.clone(),
                    topo.clone(),
                    codes.clone(),
                    natives.clone(),
                )
            })
            .collect();
        let cpus = (0..cfg.daemons).map(|_| Cpu::new(cfg.cpu_speed)).collect();
        let net: Box<dyn NetModel> = match cfg.net {
            NetKind::Ethernet10 => Box::new(SharedBus::ethernet_10mbit()),
            NetKind::Ethernet100 => Box::new(SharedBus::ethernet_100mbit()),
            NetKind::Switched { bandwidth_bps } => {
                Box::new(Switched::new(cfg.daemons, bandwidth_bps, MILLI / 10, 60))
            }
            NetKind::Ideal => Box::new(IdealNet::new(MILLI / 10)),
        };
        // Fault draws get their own RNG stream, forked off the run seed,
        // so enabling faults never perturbs other randomized choices.
        let injector = (!cfg.faults.is_none())
            .then(|| FaultInjector::new(cfg.faults.clone(), DetRng::new(cfg.seed).fork(0xFA17)));
        let n = cfg.daemons;
        let down_until = vec![0; n];
        let mut cluster = SimCluster {
            engine: Engine::new(),
            world: World {
                cfg,
                daemons,
                cpus,
                net,
                directory: HashMap::new(),
                live: 0,
                in_flight: 0,
                gvt_enabled: false,
                faults: Vec::new(),
                injector,
                down_until,
                ckpt: ReplicatedStore::new(MemStore::new()),
                ckpt_ver: vec![0; n],
                restored: vec![false; n],
                killed_at: vec![None; n],
                beats_live: false,
                ckpt_live: vec![false; n],
                last_work: 0,
                stats: Stats::new(),
            },
            codes,
            natives,
        };
        // Crash/restart windows are part of the scenario: schedule them
        // up front so they fire regardless of how the run is driven.
        for ev in cluster.world.cfg.faults.crashes.clone() {
            let d = DaemonId(ev.host as u16);
            if ev.is_kill() {
                cluster.engine.schedule_at(ev.at, move |en, w| kill(en, w, d));
                continue;
            }
            cluster.engine.schedule_at(ev.at, move |en, w| {
                let down = ev.down_for.expect("kills handled above");
                let until = en.now().saturating_add(down);
                let i = d.0 as usize;
                w.down_until[i] = w.down_until[i].max(until);
                w.stats.bump(Metric::Crashes);
                en.schedule_at(until, move |en, w| {
                    w.stats.bump(Metric::Restarts);
                    tick(en, w, d);
                });
            });
        }
        cluster
    }

    /// Number of daemons.
    pub fn daemons(&self) -> usize {
        self.world.daemons.len()
    }

    /// Register a compiled program cluster-wide (the shared code
    /// registry).
    pub fn register_program(&mut self, program: &Program) -> ProgramId {
        let (id, outcome) = self.codes.register_outcome(program);
        for kind in outcome.trace_events(id) {
            self.world.daemons[0].recorder_mut().emit_sys(kind);
        }
        id
    }

    /// Register a native function on every daemon.
    pub fn register_native(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&mut dyn NativeCtx, &[Value]) -> Result<Value, String> + Send + Sync + 'static,
    ) {
        self.natives.write().unwrap().register(name, f);
    }

    /// Realize a logical topology (the `net_builder` service): create the
    /// named nodes on their daemons and install all links.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NotFound`] if a link references an unknown node,
    /// [`ClusterError::Config`] for placements outside the cluster.
    pub fn build(&mut self, topo: &LogicalTopology) -> Result<(), ClusterError> {
        for (name, d) in &topo.nodes {
            if d.0 as usize >= self.world.daemons.len() {
                return Err(ClusterError::Config(format!("node placed on missing daemon {d}")));
            }
            let gid = self.world.daemons[d.0 as usize].build_node(name.clone());
            self.world.directory.insert(name.clone(), (*d, gid));
        }
        for (from, to, link_name, dir) in &topo.links {
            let &(fd, fref) = self
                .world
                .directory
                .get(from)
                .ok_or_else(|| ClusterError::NotFound(format!("node {from}")))?;
            let &(td, tref) = self
                .world
                .directory
                .get(to)
                .ok_or_else(|| ClusterError::NotFound(format!("node {to}")))?;
            let inst = self.world.daemons[fd.0 as usize].alloc_link();
            let orient_from = match dir {
                Dir::Forward => Orient::Out,
                Dir::Backward => Orient::In,
                Dir::Any => Orient::Undirected,
            };
            self.world.daemons[fd.0 as usize].install_link(
                fref,
                LinkRec {
                    inst,
                    name: link_name.clone(),
                    orient: orient_from,
                    peer: (td, tref),
                    peer_name: to.clone(),
                },
            );
            self.world.daemons[td.0 as usize].install_link(
                tref,
                LinkRec {
                    inst,
                    name: link_name.clone(),
                    orient: orient_from.reversed(),
                    peer: (fd, fref),
                    peer_name: from.clone(),
                },
            );
        }
        Ok(())
    }

    /// Inject a messenger into daemon `d`'s `init` node.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownProgram`] / [`ClusterError::BadInjection`].
    pub fn inject(
        &mut self,
        d: u16,
        program: ProgramId,
        args: &[Value],
    ) -> Result<MessengerId, ClusterError> {
        let at = self.world.daemons[d as usize].init_node();
        self.inject_at_node(d, program, args, at)
    }

    /// Inject a messenger into the named logical node.
    ///
    /// # Errors
    ///
    /// As [`SimCluster::inject`], plus [`ClusterError::NotFound`].
    pub fn inject_at(
        &mut self,
        node: &Value,
        program: ProgramId,
        args: &[Value],
    ) -> Result<MessengerId, ClusterError> {
        let &(d, gid) = self
            .world
            .directory
            .get(node)
            .ok_or_else(|| ClusterError::NotFound(format!("node {node}")))?;
        self.inject_at_node(d.0, program, args, gid)
    }

    fn inject_at_node(
        &mut self,
        d: u16,
        program: ProgramId,
        args: &[Value],
        at: NodeRef,
    ) -> Result<MessengerId, ClusterError> {
        // `get_any`: a quarantined program may be injected — the daemon
        // refuses it at execution time with an observable fault, which
        // is the honest model of a foreign messenger arriving with bad
        // code.
        let prog = self.codes.get_any(program).ok_or(ClusterError::UnknownProgram)?;
        let id = self.world.daemons[d as usize]
            .launch(&prog, args, at)
            .map_err(|e| ClusterError::BadInjection(e.to_string()))?;
        self.world.live += 1;
        let dd = DaemonId(d);
        self.engine.schedule_at(self.engine.now(), move |en, w| tick(en, w, dd));
        Ok(id)
    }

    /// Inject a messenger at a *future simulated time* — the paper's
    /// runtime injection ("arbitrary new Messengers may also be injected
    /// by the user from the outside (the command shell) at runtime",
    /// §1). The messenger appears at the named node when the cluster
    /// clock reaches `at_seconds`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownProgram`] if unregistered,
    /// [`ClusterError::NotFound`] if the node is unknown *now* (the node
    /// must already exist when scheduling).
    pub fn inject_at_time(
        &mut self,
        node: &Value,
        program: ProgramId,
        args: &[Value],
        at_seconds: f64,
    ) -> Result<(), ClusterError> {
        if self.codes.get_any(program).is_none() {
            return Err(ClusterError::UnknownProgram);
        }
        let &(d, gid) = self
            .world
            .directory
            .get(node)
            .ok_or_else(|| ClusterError::NotFound(format!("node {node}")))?;
        let args = args.to_vec();
        let when = msgr_sim::from_secs(at_seconds).max(self.engine.now());
        self.world.live += 1; // counted from scheduling so runs don't quiesce early
        self.engine.schedule_at(when, move |en, w| {
            let prog =
                w.daemons[d.0 as usize].codes_get(program).expect("checked at scheduling time");
            match w.daemons[d.0 as usize].launch(&prog, &args, gid) {
                Ok(_) => {}
                Err(e) => {
                    w.live -= 1;
                    w.faults.push((MessengerId(0), format!("late injection failed: {e}")));
                }
            }
            tick(en, w, d);
        });
        Ok(())
    }

    /// Read a node variable of a named node (post-run inspection).
    pub fn node_var_by_name(&self, node: &Value, var: &str) -> Option<Value> {
        let &(d, gid) = self.world.directory.get(node)?;
        self.world.daemons[d.0 as usize].node_var(gid, var)
    }

    /// Read a node variable of daemon `d`'s node named `node` (covers
    /// unnamed-directory cases like `init`).
    pub fn node_var(&self, d: u16, node: &Value, var: &str) -> Option<Value> {
        let daemon = &self.world.daemons[d as usize];
        let gid = daemon.find_node(node)?;
        daemon.node_var(gid, var)
    }

    /// Write a node variable of a named node (pre-run setup, e.g. the
    /// resident matrix blocks).
    ///
    /// # Errors
    ///
    /// [`ClusterError::NotFound`] if the node is unknown.
    pub fn set_node_var(&mut self, node: &Value, var: &str, v: Value) -> Result<(), ClusterError> {
        let &(d, gid) = self
            .world
            .directory
            .get(node)
            .ok_or_else(|| ClusterError::NotFound(format!("node {node}")))?;
        self.world.daemons[d.0 as usize].set_node_var(gid, var, v);
        Ok(())
    }

    /// Run until the cluster quiesces.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Stalled`] if the event budget is exhausted —
    /// typically a messenger population that never dies.
    pub fn run(&mut self) -> Result<SimReport, ClusterError> {
        // Arm the GVT service if needed.
        let enable = match self.world.cfg.vt_service {
            VtService::On => true,
            VtService::Off => false,
            VtService::Auto => {
                self.codes.any_uses_virtual_time() || self.world.cfg.vt_mode == VtMode::Optimistic
            }
        };
        if enable && !self.world.gvt_enabled {
            self.world.gvt_enabled = true;
        }
        if self.world.gvt_enabled {
            let interval = self.world.cfg.gvt_interval;
            self.engine.schedule_in(interval, gvt_tick);
        }
        if self.world.cfg.recovery_armed() {
            // Time-zero checkpoints: even an instant kill can restore to
            // the injected workload, never to nothing.
            for i in 0..self.world.daemons.len() {
                checkpoint_now(&mut self.engine, &mut self.world, DaemonId(i as u16));
            }
            let hb = self.world.cfg.recovery.heartbeat_every.max(MILLI / 2);
            self.world.beats_live = true;
            self.engine.schedule_in(hb, beat_tick);
            let every = self.world.cfg.recovery.checkpoint_every.max(MILLI / 2);
            for i in 0..self.world.daemons.len() {
                let d = DaemonId(i as u16);
                self.world.ckpt_live[i] = true;
                self.engine.schedule_at(every, move |en, w| ckpt_tick(en, w, d));
            }
        }
        let budget = self.world.cfg.max_events;
        if self.world.cfg.trace.enabled {
            self.trace_span_begin("run");
        }
        if !self.engine.run_bounded(&mut self.world, budget) {
            return Err(ClusterError::Stalled { events: self.engine.processed() });
        }
        let mut stats = self.world.stats.clone();
        for d in &self.world.daemons {
            stats.merge(d.stats());
        }
        stats.merge(&self.codes.stats());
        let net = self.world.net.stats();
        stats.add(Metric::NetMessages, net.messages);
        stats.add(Metric::NetPayloadBytes, net.payload_bytes);
        stats.add(Metric::NetQueueingNs, net.queueing_ns);
        // Under faults, stale retransmission timers (armed for frames
        // that were acked, or backed off past the end of the run) drain
        // after the computation finishes; completion time is the last
        // productive event, not the last timer expiry. Without faults
        // the two are identical and we keep the original expression.
        let completed =
            if self.world.injector.is_some() { self.world.last_work } else { self.engine.now() };
        if self.world.cfg.trace.enabled {
            // Close the run-wide root span at the reported completion
            // instant, before the recorders are drained below.
            let rec = self.world.daemons[0].recorder_mut();
            rec.set_now(completed);
            rec.emit_sys(EventKind::SpanEnd { name: "run".to_string() });
        }
        let trace = self.world.cfg.trace.enabled.then(|| {
            let parts = self.world.daemons.iter_mut().map(Daemon::take_trace).collect();
            Trace::from_parts(parts)
        });
        if let Some(t) = &trace {
            if t.dropped > 0 {
                stats.add(Metric::TraceDropped, t.dropped);
            }
        }
        Ok(SimReport {
            sim_seconds: msgr_sim::to_secs(completed),
            events: self.engine.processed(),
            faults: self.world.faults.clone(),
            stats,
            live_leak: self.world.live,
            trace,
        })
    }

    /// Open a named trace span on daemon 0 at the current simulated time.
    /// No-op when tracing is off. Apps bracket phases (e.g. "inject",
    /// "compute") so the Chrome export shows them as nested slices.
    pub fn trace_span_begin(&mut self, name: &str) {
        let now = self.engine.now();
        let rec = self.world.daemons[0].recorder_mut();
        rec.set_now(now);
        rec.emit_sys(EventKind::SpanBegin { name: name.to_string() });
    }

    /// Close the innermost span opened by [`SimCluster::trace_span_begin`].
    pub fn trace_span_end(&mut self, name: &str) {
        let now = self.engine.now();
        let rec = self.world.daemons[0].recorder_mut();
        rec.set_now(now);
        rec.emit_sys(EventKind::SpanEnd { name: name.to_string() });
    }

    /// The simulated time so far, in seconds.
    pub fn now_seconds(&self) -> f64 {
        msgr_sim::to_secs(self.engine.now())
    }

    /// Direct access to a daemon (tests and diagnostics).
    pub fn daemon(&self, d: u16) -> &Daemon {
        &self.world.daemons[d as usize]
    }

    /// A human-readable dump of the whole logical network: every node
    /// with its variables and link endpoints, grouped by daemon. For
    /// debugging and the `msgr` shell's `--dump` flag.
    pub fn network_dump(&self) -> String {
        let mut out = String::new();
        for d in &self.world.daemons {
            out.push_str(&format!("daemon {}:\n", d.id()));
            for node in d.nodes() {
                out.push_str(&format!("  node {} ({})\n", node.name, node.gid));
                let mut vars: Vec<_> = node.vars.iter().collect();
                vars.sort_by_key(|(k, _)| k.to_string());
                for (k, v) in vars {
                    out.push_str(&format!("    {k} = {v}\n"));
                }
                for l in &node.links {
                    let arrow = match l.orient {
                        crate::logical::Orient::Out => "->",
                        crate::logical::Orient::In => "<-",
                        crate::logical::Orient::Undirected => "--",
                    };
                    let name =
                        if l.name == Value::Null { "~".to_string() } else { l.name.to_string() };
                    out.push_str(&format!(
                        "    link {name} {arrow} {} on {} ({})\n",
                        l.peer_name, l.peer.0, l.peer.1
                    ));
                }
            }
        }
        out
    }
}
