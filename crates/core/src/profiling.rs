//! Runtime side of the cost-attribution profiler: per-messenger phase
//! ledgers and the daemon-local bookkeeping behind them.
//!
//! The paper's cost model says a messenger's end-to-end time decomposes
//! into interpretation, navigation, and transport terms. This module
//! *measures* that decomposition: while profiling is enabled
//! ([`crate::ClusterConfig::profile`]), every resident messenger owns a
//! [`Ledger`] that the daemon charges as the messenger moves through its
//! lifecycle — queued in a lane, verified on receive, executing in the
//! VM, being encoded for a hop, in flight on the wire, parked on virtual
//! time, or stalled behind a crash recovery. At the messenger's terminal
//! local disposition (retire, fault, or hop away) the ledger is emitted
//! as one `phase_ledger` trace event; partial sender-side ledgers tie
//! outgoing replicas back to their parent so the post-hoc analysis in
//! `msgr-prof` can stitch cross-daemon critical paths.
//!
//! Everything here is bookkeeping only: the profiler charges **nothing**
//! to the simulation cost model, so simulated results (and, with
//! profiling off, traces) are bit-identical whether it runs or not.
//!
//! Clock domains: on the `sim` platform phases are measured in simulated
//! nanoseconds (the flight-recorder `rt` clock); on `threads`, where
//! `rt` is pinned to 0 for trace determinism, the profiler keeps its own
//! monotonic epoch ([`Prof::start_wallclock`]) — ledgers are then real
//! wall-clock and not run-to-run reproducible, exactly like any native
//! profiler.

use std::collections::HashMap;
use std::time::Instant;

/// One messenger's accumulated phase times, in nanoseconds.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    /// The messenger id at arrival/injection (parks re-identify the
    /// continuation; this keeps the inbound transport join key).
    pub born: u64,
    /// When the messenger last became runnable in a lane (`None` while
    /// executing, parked, or in flight).
    pub enq: Option<u64>,
    /// When the messenger parked on virtual time (`None` otherwise).
    pub park_start: Option<u64>,
    /// Runnable-in-lane wait.
    pub queue: u64,
    /// Receive-time verification work.
    pub verify: u64,
    /// VM execution (bytecode + natives).
    pub exec: u64,
    /// Serialize/encode + decode for migration.
    pub enc: u64,
    /// Transport in-flight (sim only).
    pub xport: u64,
    /// Parked on virtual time.
    pub park: u64,
    /// Recovery stall behind a daemon death.
    pub stall: u64,
}

impl Ledger {
    /// A fresh ledger for a messenger first seen as `born`.
    pub fn new(born: u64) -> Self {
        Ledger { born, ..Ledger::default() }
    }

    /// Total locally-attributed time: the sum of every phase. Emitted
    /// explicitly so the fraction-sum invariant holds by construction.
    pub fn total(&self) -> u64 {
        self.queue + self.verify + self.exec + self.enc + self.xport + self.park + self.stall
    }
}

/// Per-daemon profiler state. Lives on the daemon as
/// `Option<Box<Prof>>`; `None` means profiling is off and every hook is
/// a single branch.
#[derive(Debug)]
pub struct Prof {
    /// VM PC sampling interval (executed ops per sample).
    pub interval: u64,
    /// Monotonic epoch for the threads platform; `None` on sim, where
    /// the flight-recorder `rt` clock is the time base.
    epoch: Option<Instant>,
    /// Live ledgers keyed by current messenger id.
    pub ledgers: HashMap<u64, Ledger>,
    /// Transport in-flight nanoseconds credited by the platform for
    /// messengers that have not arrived yet (keyed by wire mid).
    pub transport: HashMap<u64, u64>,
    /// Messenger ids revived by the most recent checkpoint restore;
    /// drained by [`Prof::charge_recovery_stall`].
    pub restored: Vec<u64>,
}

impl Prof {
    /// Fresh profiler state sampling every `interval` ops.
    pub fn new(interval: u64) -> Self {
        Prof {
            interval: interval.max(1),
            epoch: None,
            ledgers: HashMap::new(),
            transport: HashMap::new(),
            restored: Vec::new(),
        }
    }

    /// Switch the profiler onto real wall-clock time (threads platform,
    /// where the recorder's `rt` stays 0).
    pub fn start_wallclock(&mut self) {
        if self.epoch.is_none() {
            self.epoch = Some(Instant::now());
        }
    }

    /// Whether the profiler measures real wall-clock time (threads).
    pub fn wallclock(&self) -> bool {
        self.epoch.is_some()
    }

    /// The profiler's clock: `rt` (simulated ns) on sim, elapsed
    /// monotonic ns on threads.
    pub fn now(&self, rt: u64) -> u64 {
        match &self.epoch {
            Some(e) => e.elapsed().as_nanos() as u64,
            None => rt,
        }
    }

    /// The ledger for `mid`, created on first touch.
    pub fn ledger(&mut self, mid: u64) -> &mut Ledger {
        self.ledgers.entry(mid).or_insert_with(|| Ledger::new(mid))
    }

    /// A messenger became runnable in a lane at `now`: close any open
    /// park window, open the queue window, and absorb transport credit
    /// the platform recorded for its in-flight leg.
    pub fn on_enqueue(&mut self, mid: u64, now: u64) {
        let credit = self.transport.remove(&mid).unwrap_or(0);
        let l = self.ledger(mid);
        if let Some(p) = l.park_start.take() {
            l.park += now.saturating_sub(p);
        }
        l.xport += credit;
        l.enq = Some(now);
    }

    /// A messenger parked on virtual time at `now` (it is *not* in a
    /// lane; GVT will revive it).
    pub fn on_park(&mut self, mid: u64, now: u64) {
        let credit = self.transport.remove(&mid).unwrap_or(0);
        let l = self.ledger(mid);
        l.xport += credit;
        l.park_start = Some(now);
    }

    /// A messenger was popped from a lane for execution at `now`: close
    /// the queue window.
    pub fn on_dequeue(&mut self, mid: u64, now: u64) {
        let l = self.ledger(mid);
        if let Some(e) = l.enq.take() {
            l.queue += now.saturating_sub(e);
        }
    }

    /// A park re-identified the continuation: move the ledger from the
    /// dying id to the fresh one so one ledger covers the whole local
    /// stay (keeping `born` as the arrival join key).
    pub fn transfer(&mut self, old: u64, new: u64) {
        if old == new {
            return;
        }
        if let Some(l) = self.ledgers.remove(&old) {
            self.ledgers.insert(new, l);
        }
    }

    /// Take the finished ledger for `mid` (terminal disposition).
    pub fn take(&mut self, mid: u64) -> Option<Ledger> {
        self.ledgers.remove(&mid)
    }

    /// Credit `ns` of in-flight transport time to `mid`, to be absorbed
    /// into its ledger when it is enqueued on arrival.
    pub fn credit_transport(&mut self, mid: u64, ns: u64) {
        *self.transport.entry(mid).or_insert(0) += ns;
    }

    /// Attribute `ns` of recovery stall to every messenger the last
    /// restore revived, and clear the revival list.
    pub fn charge_recovery_stall(&mut self, ns: u64) {
        for mid in std::mem::take(&mut self.restored) {
            self.ledger(mid).stall += ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_total_is_the_phase_sum() {
        let mut l = Ledger::new(7);
        l.queue = 1;
        l.verify = 2;
        l.exec = 3;
        l.enc = 4;
        l.xport = 5;
        l.park = 6;
        l.stall = 7;
        assert_eq!(l.total(), 28);
    }

    #[test]
    fn queue_and_park_windows_close_in_order() {
        let mut p = Prof::new(4096);
        p.credit_transport(9, 250);
        p.on_enqueue(9, 1_000);
        p.on_dequeue(9, 1_400);
        let l = &p.ledgers[&9];
        assert_eq!(l.queue, 400);
        assert_eq!(l.xport, 250);
        assert_eq!(l.born, 9);
        // Park under a fresh id; the ledger follows the continuation.
        p.transfer(9, 12);
        p.on_park(12, 2_000);
        p.on_enqueue(12, 5_000);
        p.on_dequeue(12, 5_100);
        let l = p.take(12).expect("ledger moved");
        assert_eq!(l.park, 3_000);
        assert_eq!(l.queue, 500);
        assert_eq!(l.born, 9, "born survives the park re-identification");
        assert!(p.ledgers.is_empty());
    }

    #[test]
    fn recovery_stall_hits_only_revived_messengers() {
        let mut p = Prof::new(1);
        p.on_enqueue(1, 0);
        p.restored.push(1);
        p.on_enqueue(2, 0);
        p.charge_recovery_stall(7_000);
        assert_eq!(p.ledgers[&1].stall, 7_000);
        assert_eq!(p.ledgers[&2].stall, 0);
        assert!(p.restored.is_empty());
    }
}
