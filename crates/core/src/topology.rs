//! Daemon-network topology and logical-network construction
//! (`net_builder`).

use msgr_vm::{Dir, EvalLink, Value};

use crate::ids::DaemonId;
use crate::logical::Orient;

/// One edge of the daemon network, stored per endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonLink {
    /// The neighboring daemon.
    pub peer: DaemonId,
    /// Link name (`Value::Null` = unnamed).
    pub name: Value,
    /// Orientation from this endpoint.
    pub orient: Orient,
}

/// The static daemon network. `create` statements match their
/// `(dn, dl, ddir)` destination specification against the current
/// daemon's neighbors here.
#[derive(Debug, Clone)]
pub struct DaemonTopology {
    adj: Vec<Vec<DaemonLink>>,
}

impl DaemonTopology {
    /// The default topology: a clique with self-loops — every daemon is a
    /// neighbor of every daemon, including itself. (With a single daemon,
    /// `create(ALL)` then still creates one worker node, so the paper's
    /// 1-processor data points exist.)
    pub fn clique(n: usize) -> Self {
        let adj = (0..n)
            .map(|_| {
                (0..n)
                    .map(|j| DaemonLink {
                        peer: DaemonId(j as u16),
                        name: Value::Null,
                        orient: Orient::Undirected,
                    })
                    .collect()
            })
            .collect();
        DaemonTopology { adj }
    }

    /// A clique without self-loops.
    pub fn clique_no_self(n: usize) -> Self {
        let mut t = Self::clique(n);
        for (i, links) in t.adj.iter_mut().enumerate() {
            links.retain(|l| l.peer != DaemonId(i as u16));
        }
        t
    }

    /// A bidirectional ring with links named `"ring"`, oriented forward
    /// around increasing ids.
    pub fn ring(n: usize) -> Self {
        let mut adj: Vec<Vec<DaemonLink>> = vec![Vec::new(); n];
        for i in 0..n {
            let next = (i + 1) % n;
            adj[i].push(DaemonLink {
                peer: DaemonId(next as u16),
                name: Value::str("ring"),
                orient: Orient::Out,
            });
            adj[next].push(DaemonLink {
                peer: DaemonId(i as u16),
                name: Value::str("ring"),
                orient: Orient::In,
            });
        }
        DaemonTopology { adj }
    }

    /// Number of daemons.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the topology is empty.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Neighbors of `d`.
    pub fn neighbors(&self, d: DaemonId) -> &[DaemonLink] {
        &self.adj[d.0 as usize]
    }

    /// The daemons matching a `create` destination `(dn, dl, ddir)` from
    /// daemon `from`, in deterministic order.
    pub fn matches(
        &self,
        from: DaemonId,
        dn: &Option<Value>,
        dl: &EvalLink,
        ddir: Dir,
    ) -> Vec<DaemonId> {
        let mut out = Vec::new();
        for l in self.neighbors(from) {
            if !l.orient.allows(ddir) {
                continue;
            }
            let link_ok = match dl {
                EvalLink::Wild => true,
                EvalLink::Unnamed => l.name == Value::Null,
                EvalLink::Named(n) => l.name.loose_eq(n),
                EvalLink::Instance(_) | EvalLink::Virtual => false,
            };
            if !link_ok {
                continue;
            }
            let node_ok = match dn {
                None => true,
                Some(v) => Value::Int(l.peer.0 as i64).loose_eq(v),
            };
            if node_ok && !out.contains(&l.peer) {
                out.push(l.peer);
            }
        }
        out
    }
}

/// A declarative logical-network description, realized by the platform
/// before a run — our `net_builder` service (§3.2: "any static logical
/// network is constructed by describing its topology in a file … and then
/// starting a specialized service Messenger called net_builder").
#[derive(Debug, Clone, Default)]
pub struct LogicalTopology {
    /// `(node name, daemon placement)`.
    pub nodes: Vec<(Value, DaemonId)>,
    /// `(from node name, to node name, link name, directedness)` —
    /// `Dir::Forward` makes the link point from → to; `Dir::Any` makes
    /// it undirected.
    pub links: Vec<(Value, Value, Value, Dir)>,
}

impl LogicalTopology {
    /// An empty topology.
    pub fn new() -> Self {
        LogicalTopology::default()
    }

    /// Add a named node placed on `daemon`.
    pub fn node(&mut self, name: impl Into<Value>, daemon: DaemonId) -> &mut Self {
        self.nodes.push((name.into(), daemon));
        self
    }

    /// Add a link between two named nodes.
    pub fn link(
        &mut self,
        from: impl Into<Value>,
        to: impl Into<Value>,
        name: impl Into<Value>,
        dir: Dir,
    ) -> &mut Self {
        self.links.push((from.into(), to.into(), name.into(), dir));
        self
    }

    /// The Fig. 10 matrix-multiplication network: an `m × m` grid of
    /// nodes named `"i,j"`, each row fully connected by undirected links
    /// named `"row"`, each column a ring of links named `"column"`
    /// directed from `[i,j]` to `[(i-1) mod m, j]` (the direction
    /// `rotate_B` hops along with `ldir = +`). Node `[i,j]` is placed on
    /// daemon `(i*m + j) mod n_daemons`.
    pub fn grid(m: usize, n_daemons: usize) -> Self {
        let mut t = LogicalTopology::new();
        let name = |i: usize, j: usize| Value::str(format!("{i},{j}"));
        for i in 0..m {
            for j in 0..m {
                t.node(name(i, j), DaemonId(((i * m + j) % n_daemons) as u16));
            }
        }
        // Rows: full mesh, undirected, named "row".
        for i in 0..m {
            for j in 0..m {
                for j2 in (j + 1)..m {
                    t.link(name(i, j), name(i, j2), Value::str("row"), Dir::Any);
                }
            }
        }
        // Columns: ring, directed upward ([i,j] → [i-1 mod m, j]).
        // A 1×1 grid has no column movement (self-loops excluded).
        if m > 1 {
            for j in 0..m {
                for i in 0..m {
                    let up = (i + m - 1) % m;
                    t.link(name(i, j), name(up, j), Value::str("column"), Dir::Forward);
                }
            }
        }
        t
    }

    /// Parse the `net_builder` topology file format (§3.2: "any static
    /// logical network is constructed by describing its topology in a
    /// file"). One declaration per line; `#` starts a comment:
    ///
    /// ```text
    /// # nodes: name @ daemon
    /// node hub   @0
    /// node west  @1
    /// node east  @2
    /// # links: undirected `--` or directed `->`, optional `: name`
    /// link hub -- west : spoke
    /// link hub -- east : spoke
    /// link west -> east : oneway
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut topo = LogicalTopology::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("line {}: {msg}: `{raw}`", lineno + 1);
            let mut words = line.split_whitespace();
            match words.next() {
                Some("node") => {
                    let name = words.next().ok_or_else(|| err("missing node name"))?;
                    let at = words.next().ok_or_else(|| err("missing `@daemon`"))?;
                    let daemon: u16 = at
                        .strip_prefix('@')
                        .ok_or_else(|| err("placement must be `@<daemon>`"))?
                        .parse()
                        .map_err(|_| err("bad daemon number"))?;
                    if words.next().is_some() {
                        return Err(err("trailing tokens after node declaration"));
                    }
                    topo.node(Value::str(name), DaemonId(daemon));
                }
                Some("link") => {
                    let from = words.next().ok_or_else(|| err("missing source node"))?;
                    let arrow = words.next().ok_or_else(|| err("missing `--` or `->`"))?;
                    let to = words.next().ok_or_else(|| err("missing target node"))?;
                    let dir = match arrow {
                        "--" => Dir::Any,
                        "->" => Dir::Forward,
                        "<-" => Dir::Backward,
                        other => return Err(err(&format!("unknown arrow `{other}`"))),
                    };
                    let name = match (words.next(), words.next()) {
                        (None, _) => Value::Null,
                        (Some(":"), Some(n)) => Value::str(n),
                        _ => return Err(err("link name must be written `: name`")),
                    };
                    if words.next().is_some() {
                        return Err(err("trailing tokens after link declaration"));
                    }
                    topo.link(Value::str(from), Value::str(to), name, dir);
                }
                Some(other) => return Err(err(&format!("unknown declaration `{other}`"))),
                None => unreachable!("blank lines filtered"),
            }
        }
        Ok(topo)
    }

    /// Render back to the `net_builder` file format ([`Self::parse`]
    /// round-trips it).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, d) in &self.nodes {
            out.push_str(&format!("node {name} @{}\n", d.0));
        }
        for (from, to, name, dir) in &self.links {
            let arrow = match dir {
                Dir::Any => "--",
                Dir::Forward => "->",
                Dir::Backward => "<-",
            };
            if *name == Value::Null {
                out.push_str(&format!("link {from} {arrow} {to}\n"));
            } else {
                out.push_str(&format!("link {from} {arrow} {to} : {name}\n"));
            }
        }
        out
    }

    /// A star: one `"hub"` on daemon 0 and `n` leaves `"leaf<k>"` spread
    /// round-robin over daemons, linked to the hub with links named
    /// `"spoke"`.
    pub fn star(n: usize, n_daemons: usize) -> Self {
        let mut t = LogicalTopology::new();
        t.node(Value::str("hub"), DaemonId(0));
        for k in 0..n {
            let leaf = Value::str(format!("leaf{k}"));
            t.node(leaf.clone(), DaemonId((k % n_daemons) as u16));
            t.link(Value::str("hub"), leaf, Value::str("spoke"), Dir::Any);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_includes_self() {
        let t = DaemonTopology::clique(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.neighbors(DaemonId(1)).len(), 3);
        let m = t.matches(DaemonId(0), &None, &EvalLink::Wild, Dir::Any);
        assert_eq!(m, vec![DaemonId(0), DaemonId(1), DaemonId(2)]);
    }

    #[test]
    fn clique_no_self_excludes_self() {
        let t = DaemonTopology::clique_no_self(3);
        let m = t.matches(DaemonId(1), &None, &EvalLink::Wild, Dir::Any);
        assert_eq!(m, vec![DaemonId(0), DaemonId(2)]);
    }

    #[test]
    fn dn_pattern_filters_by_id() {
        let t = DaemonTopology::clique(4);
        let m = t.matches(DaemonId(0), &Some(Value::Int(2)), &EvalLink::Wild, Dir::Any);
        assert_eq!(m, vec![DaemonId(2)]);
        let none = t.matches(DaemonId(0), &Some(Value::Int(9)), &EvalLink::Wild, Dir::Any);
        assert!(none.is_empty());
    }

    #[test]
    fn ring_directions() {
        let t = DaemonTopology::ring(4);
        let fwd = t.matches(DaemonId(0), &None, &EvalLink::Named(Value::str("ring")), Dir::Forward);
        assert_eq!(fwd, vec![DaemonId(1)]);
        let bwd = t.matches(DaemonId(0), &None, &EvalLink::Wild, Dir::Backward);
        assert_eq!(bwd, vec![DaemonId(3)]);
    }

    #[test]
    fn grid_topology_shape() {
        let t = LogicalTopology::grid(3, 9);
        assert_eq!(t.nodes.len(), 9);
        // Rows: 3 rows × C(3,2)=3 links; columns: 3 columns × 3 links.
        let rows = t.links.iter().filter(|l| l.2 == Value::str("row")).count();
        let cols = t.links.iter().filter(|l| l.2 == Value::str("column")).count();
        assert_eq!(rows, 9);
        assert_eq!(cols, 9);
        // Column links are directed.
        assert!(t
            .links
            .iter()
            .filter(|l| l.2 == Value::str("column"))
            .all(|l| l.3 == Dir::Forward));
        // Placement on 9 daemons is one node per daemon.
        let mut daemons: Vec<u16> = t.nodes.iter().map(|(_, d)| d.0).collect();
        daemons.sort_unstable();
        assert_eq!(daemons, (0..9).collect::<Vec<u16>>());
    }

    #[test]
    fn grid_1x1_has_no_columns() {
        let t = LogicalTopology::grid(1, 1);
        assert_eq!(t.nodes.len(), 1);
        assert!(t.links.is_empty());
    }

    #[test]
    fn star_shape() {
        let t = LogicalTopology::star(5, 2);
        assert_eq!(t.nodes.len(), 6);
        assert_eq!(t.links.len(), 5);
    }

    #[test]
    fn parse_topology_file() {
        let t = LogicalTopology::parse(
            r#"
            # a little triangle
            node hub  @0
            node west @1   # comment after
            node east @2
            link hub -- west : spoke
            link hub -- east : spoke
            link west -> east : oneway
            link east <- hub
            "#,
        )
        .unwrap();
        assert_eq!(t.nodes.len(), 3);
        assert_eq!(t.links.len(), 4);
        assert_eq!(t.nodes[1], (Value::str("west"), DaemonId(1)));
        assert_eq!(
            t.links[2],
            (Value::str("west"), Value::str("east"), Value::str("oneway"), Dir::Forward)
        );
        assert_eq!(t.links[3].2, Value::Null);
        assert_eq!(t.links[3].3, Dir::Backward);
    }

    #[test]
    fn parse_round_trips_through_to_text() {
        let original = LogicalTopology::grid(2, 4);
        let text = original.to_text();
        let back = LogicalTopology::parse(&text).unwrap();
        assert_eq!(back.nodes, original.nodes);
        assert_eq!(back.links, original.links);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let e = LogicalTopology::parse("node a @0\nnode b\n").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        let e = LogicalTopology::parse("link a => b").unwrap_err();
        assert!(e.contains("unknown arrow"), "{e}");
        let e = LogicalTopology::parse("frob x").unwrap_err();
        assert!(e.contains("unknown declaration"), "{e}");
        let e = LogicalTopology::parse("node a @x").unwrap_err();
        assert!(e.contains("bad daemon"), "{e}");
        let e = LogicalTopology::parse("link a -- b name").unwrap_err();
        assert!(e.contains("`: name`"), "{e}");
    }
}
