//! Cluster configuration and the calibrated cost model.
//!
//! The constants are chosen to reflect the paper's 1997 testbed — 110 MHz
//! SPARCstation 5s (the reference CPU, speed 1.0) on a 10 Mbit/s shared
//! Ethernet — so that the *shape* of the evaluation figures reproduces.
//! See `EXPERIMENTS.md` for the calibration discussion.

use msgr_sim::{FaultPlan, SimTime, MILLI};

/// Which network model the simulation platform uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetKind {
    /// 10 Mbit/s shared-bus Ethernet.
    Ethernet10,
    /// 100 Mbit/s shared-bus Ethernet — the testbed implied by the
    /// paper's absolute runtimes (see EXPERIMENTS.md calibration notes).
    Ethernet100,
    /// Full-duplex switched network with the given per-port bits/second.
    Switched {
        /// Per-port bandwidth in bits per second.
        bandwidth_bps: f64,
    },
    /// Infinite bandwidth, fixed latency (ablations and fast tests).
    Ideal,
}

/// Conservative vs optimistic virtual time (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VtMode {
    /// Suspended messengers run only once GVT reaches their wake time.
    #[default]
    Conservative,
    /// Time Warp: run eagerly, roll back on stragglers, cancel with
    /// anti-messengers. Simulation platform only.
    Optimistic,
}

/// Which execution engine daemons use to run messenger segments.
///
/// Both engines are observationally identical (the differential suite
/// `crates/vm/tests/diff_props.rs` holds them to that), so this knob
/// changes wall-clock throughput only — simulated results, goldens, and
/// traces are bit-identical across modes. Programs are verified and
/// compiled at registration regardless of mode; `Compiled` merely makes
/// the daemons dispatch through the closure trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The paper-era bytecode interpreter (`msgr_vm::interp`).
    #[default]
    Interp,
    /// Direct-threaded closure trees with superinstructions
    /// (`msgr_vm::compile`).
    Compiled,
}

impl ExecMode {
    /// Parse a CLI/env spelling (`interp` | `compiled`).
    pub fn parse(s: &str) -> Option<ExecMode> {
        match s {
            "interp" => Some(ExecMode::Interp),
            "compiled" => Some(ExecMode::Compiled),
            _ => None,
        }
    }
}

/// CPU-cost constants, in reference nanoseconds (1.0-speed machine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Interpreting one bytecode operation. The paper's scripts are
    /// interpreted; this is the per-statement overhead that makes
    /// fine-grained Messengers slower than PVM.
    pub per_op_ns: u64,
    /// Fixed daemon cost to dispatch one outgoing migration
    /// (scheduling, headers, system call).
    pub hop_send_ns: u64,
    /// Fixed daemon cost to accept one incoming migration.
    pub hop_recv_ns: u64,
    /// Serializing / deserializing messenger state, per byte. Messenger
    /// variables travel as-is — one copy out, one copy in (§2.1: "there
    /// is no need for copying of data into/out of buffers").
    pub per_byte_copy_ns: u64,
    /// Fixed cost to create a logical node / install a link.
    pub create_node_ns: u64,
    /// Cost to process one GVT control message.
    pub gvt_msg_ns: u64,
    /// Cost to undo one event during a Time-Warp rollback.
    pub rollback_per_event_ns: u64,
    /// Per-migration wire header bytes (routing, ids, epoch).
    pub wire_header_bytes: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            per_op_ns: 2_000,     // ~2 µs/op interpreted on a 110 MHz SS5
            hop_send_ns: 300_000, // 300 µs: destination matching, replication, dispatch
            hop_recv_ns: 220_000, // 220 µs: accept, decode, schedule
            per_byte_copy_ns: 25, // ~40 MB/s memcpy
            create_node_ns: 80_000,
            gvt_msg_ns: 40_000,
            rollback_per_event_ns: 60_000,
            wire_header_bytes: 64,
        }
    }
}

/// How a dead daemon's heir is chosen when recovery is armed.
///
/// Both modes end with the victim's checkpoint restored exactly once;
/// they differ in who is trusted to decide that the victim is dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Succession {
    /// The pre-control-plane rule: the deterministic next-alive daemon
    /// acts on its *own* failure-detector verdict. Correct only while
    /// every daemon's membership view agrees; kept for the ablation
    /// baseline (`BENCH_0009.json`).
    Deterministic,
    /// A kill is *proposed* by suspecting observers and acted on only
    /// once a majority of the surviving acceptors accepts the burial
    /// decree (single-decree Paxos, `msgr-ctrl`). A wrong failure
    /// detector can then never cause a split-brain double restore.
    #[default]
    Quorum,
}

impl Succession {
    /// Parse a CLI/env spelling (`deterministic` | `quorum`).
    pub fn parse(s: &str) -> Option<Succession> {
        match s {
            "deterministic" => Some(Succession::Deterministic),
            "quorum" => Some(Succession::Quorum),
            _ => None,
        }
    }
}

/// Retransmission policy of the reliable-delivery layer, active only
/// when the cluster's [`FaultPlan`] can inject faults. Timeouts double on
/// every retry (exponential backoff) up to `max_rto`, with a uniform
/// deterministic jitter drawn per retry so synchronized senders desync.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetransmitPolicy {
    /// Initial retransmission timeout after a frame is first sent. The
    /// default (30 ms) matches PVM 3.3's pvmd ack timeout and sits above
    /// the delivery+ack round trip of a congested shared Ethernet, so a
    /// healthy-but-slow network does not trigger spurious retransmits.
    pub rto: SimTime,
    /// Ceiling for the backed-off timeout.
    pub max_rto: SimTime,
    /// Uniform jitter in `[0, jitter)` added to every armed timeout.
    pub jitter: SimTime,
    /// Send attempts (first transmission included) before the transport
    /// gives up on a frame and reports a fault. Kept high by default:
    /// at 30% loss, 48 attempts fail with probability 0.3^48 ≈ 1e-25,
    /// so chaos runs never abandon a messenger.
    pub max_attempts: u32,
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        RetransmitPolicy {
            rto: 30 * MILLI,
            max_rto: 240 * MILLI,
            jitter: 2 * MILLI,
            max_attempts: 48,
        }
    }
}

/// Failure-detection and checkpoint cadence of the crash-recovery
/// subsystem, active only when the cluster's [`FaultPlan`] contains a
/// permanent kill (`down_for: None`).
///
/// All times are simulated time. The defaults keep a comfortable margin
/// over the retransmission layer: a peer is suspected only after two
/// missed heartbeats and declared dead only after an outage longer than
/// any transient crash the chaos suites schedule, so fail-recover
/// windows never trigger spurious failover.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Interval between heartbeat rounds. Liveness is also refreshed by
    /// any data/ack traffic from a peer (heartbeats piggyback on the
    /// reliable transport's envelopes).
    pub heartbeat_every: SimTime,
    /// Silence after which a peer is *suspected* (soft state, reported
    /// in `Stats` only).
    pub suspect_after: SimTime,
    /// Silence after which a peer is declared *dead* — monotone: a dead
    /// peer never rejoins. Must exceed the longest transient crash
    /// window plus one heartbeat, or failover fires on a host that was
    /// about to restart.
    pub dead_after: SimTime,
    /// Interval between checkpoint snapshots of each daemon's durable
    /// state (node variables, parked messengers, transport channels).
    pub checkpoint_every: SimTime,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            heartbeat_every: 20 * MILLI,
            suspect_after: 60 * MILLI,
            dead_after: 240 * MILLI,
            checkpoint_every: 40 * MILLI,
        }
    }
}

impl RecoveryPolicy {
    /// The defaults, with the failure-detector thresholds overridable
    /// from the environment: `MSGR_FD_SUSPECT` / `MSGR_FD_DEAD`, both in
    /// *milliseconds* of simulated time (see DESIGN.md §5). Values that
    /// would invert the suspect < dead ordering are ignored — a detector
    /// that declares death before suspicion is a configuration error,
    /// not a policy.
    pub fn from_env() -> Self {
        fn env_ms(key: &str) -> Option<SimTime> {
            std::env::var(key).ok().and_then(|v| v.parse::<u64>().ok()).map(|ms| ms * MILLI)
        }
        let mut p = RecoveryPolicy::default();
        if let Some(t) = env_ms("MSGR_FD_SUSPECT") {
            p.suspect_after = t;
        }
        if let Some(t) = env_ms("MSGR_FD_DEAD") {
            p.dead_after = t;
        }
        if p.suspect_after == 0 || p.dead_after <= p.suspect_after {
            return RecoveryPolicy::default();
        }
        p
    }
}

/// Frame-batching budget: how many payload frames headed for the same
/// peer one effect flush may coalesce into a single [`crate::wire::Wire::Batch`]
/// envelope. Batching is off by default (`max_frames == 0`) so the
/// pre-batching wire timings stay bit-identical; benches and chaos
/// suites opt in explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum frames per batch. `0` or `1` disables coalescing.
    pub max_frames: usize,
    /// Maximum summed payload wire bytes per batch; a frame that would
    /// push a batch past this budget starts a new batch.
    pub max_bytes: u64,
}

impl BatchPolicy {
    /// Batching disabled: every frame travels in its own envelope.
    pub fn off() -> Self {
        BatchPolicy { max_frames: 0, max_bytes: 0 }
    }

    /// The default opt-in budget used by benches and chaos suites.
    pub fn on() -> Self {
        BatchPolicy { max_frames: 16, max_bytes: 16 * 1024 }
    }

    /// `true` iff this policy can ever coalesce two frames.
    pub fn enabled(&self) -> bool {
        self.max_frames >= 2
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::off()
    }
}

/// Whether the GVT service runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VtService {
    /// Enabled iff any registered program uses `M_sched_time_*`.
    #[default]
    Auto,
    /// Always run GVT rounds.
    On,
    /// Never run GVT rounds (programs that suspend will stall).
    Off,
}

/// Full cluster configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of daemons (= hosts; one daemon per host, as in the paper).
    pub daemons: usize,
    /// Network model (simulation platform).
    pub net: NetKind,
    /// CPU speed of every host relative to the 110 MHz reference
    /// (Fig. 12(b)'s 170 MHz machines ≈ 1.55).
    pub cpu_speed: f64,
    /// Virtual-time mode.
    pub vt_mode: VtMode,
    /// GVT service switch.
    pub vt_service: VtService,
    /// Interval between GVT rounds (simulated time).
    pub gvt_interval: SimTime,
    /// Carry full program code on every migration (the WAVE-style
    /// ablation) instead of relying on the shared code registry.
    pub carry_code: bool,
    /// Cost model (simulation platform).
    pub costs: CostModel,
    /// RNG seed for any randomized choices.
    pub seed: u64,
    /// Event budget before a run is declared stalled.
    pub max_events: u64,
    /// Fuel per execution segment (bytecode ops) before a messenger is
    /// killed as runaway.
    pub segment_fuel: u64,
    /// Fault-injection plan. Defaults to [`FaultPlan::none`]; any active
    /// plan also switches the daemons onto the reliable transport.
    pub faults: FaultPlan,
    /// Retransmission policy used when `faults` is active.
    pub retransmit: RetransmitPolicy,
    /// Failure-detection and checkpoint cadence, used when `faults`
    /// contains a permanent kill.
    pub recovery: RecoveryPolicy,
    /// Directory for file-backed checkpoints on the threads platform.
    /// `None` (the default) keeps checkpoints in memory (simulation) or
    /// disables them (threads).
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Flight-recorder tracing. Disabled by default; when enabled every
    /// daemon records typed [`msgr_trace::TraceEvent`]s into a bounded
    /// ring that the platform merges into the run report.
    pub trace: msgr_trace::TraceConfig,
    /// Execution lanes per daemon: logical nodes are sharded across this
    /// many run queues by a pure hash of `(gid, seed)`. Dispatch across
    /// lanes is by global arrival order, so lane count never changes the
    /// execution order on `sim` — see DESIGN.md §9. Default 1.
    pub lanes: usize,
    /// Frame-batching budget (off by default).
    pub batch: BatchPolicy,
    /// Execution engine ([`ExecMode::Interp`] unless overridden via the
    /// `MSGR_EXEC` environment variable or `msgr run --exec`).
    pub exec: ExecMode,
    /// Whether the code registry runs the interprocedural effect
    /// analysis at registration and hands the resulting summary table to
    /// the closure compiler (call fusion, typed loops) — and to the
    /// daemons (node-variable snapshot elision). On by default; both
    /// engines stay observationally identical either way, so this knob
    /// only changes wall-clock throughput and the `analysis_*` metrics.
    /// Overridable via the `MSGR_ANALYSIS` environment variable
    /// (`0`/`off` disables).
    pub analysis: bool,
    /// Hand messenger state over by move on same-daemon hops instead of
    /// encode/decode through the platform loopback. Off by default: the
    /// sim's uniform cost accounting and the reliable transport both
    /// want every hop on the wire path. The threads platform and the
    /// lane bench opt in.
    pub local_move: bool,
    /// How a victim's heir is chosen when a permanent kill is detected:
    /// by majority decree ([`Succession::Quorum`], the default) or by
    /// the deterministic next-alive rule kept for the ablation baseline.
    /// Overridable via the `MSGR_SUCCESSION` environment variable.
    pub succession: Succession,
    /// Checkpoint replication factor `k`: every checkpoint version is
    /// pushed to the `k` next-alive successor daemons *before* its
    /// staged effects are released, so recovery survives losing the
    /// victim and `k - 1` of its replica holders at once. Default 1.
    pub replication: usize,
    /// Cost-attribution profiling: per-messenger phase ledgers
    /// (`phase_ledger` trace events) and op-count-triggered VM PC
    /// sampling (`pc_sample` events). Off by default; profiling charges
    /// nothing to the cost model, so simulated results are bit-identical
    /// with it on or off. Overridable via the `MSGR_PROFILE` environment
    /// variable (`1`/`on` enables). Requires tracing (platforms enable
    /// the recorder automatically when this is set).
    pub profile: bool,
    /// Sampling interval for the VM PC profiler, in executed bytecode
    /// ops per sample. Only consulted when `profile` is set.
    pub profile_interval: u64,
}

impl ClusterConfig {
    /// A configuration for `daemons` hosts with paper-era defaults.
    ///
    /// # Panics
    ///
    /// Panics if `daemons` is 0 or exceeds `u16::MAX`.
    pub fn new(daemons: usize) -> Self {
        assert!(daemons > 0 && daemons <= u16::MAX as usize, "bad daemon count {daemons}");
        ClusterConfig {
            daemons,
            net: NetKind::Ethernet100,
            cpu_speed: 1.0,
            vt_mode: VtMode::Conservative,
            vt_service: VtService::Auto,
            gvt_interval: 15 * MILLI,
            carry_code: false,
            costs: CostModel::default(),
            seed: 0x5EED,
            max_events: 200_000_000,
            segment_fuel: msgr_vm::interp::DEFAULT_FUEL,
            faults: FaultPlan::none(),
            retransmit: RetransmitPolicy::default(),
            recovery: RecoveryPolicy::from_env(),
            checkpoint_dir: None,
            trace: msgr_trace::TraceConfig::default(),
            lanes: 1,
            batch: BatchPolicy::off(),
            exec: std::env::var("MSGR_EXEC")
                .ok()
                .and_then(|s| ExecMode::parse(&s))
                .unwrap_or_default(),
            analysis: !matches!(
                std::env::var("MSGR_ANALYSIS").ok().as_deref(),
                Some("0") | Some("off") | Some("false")
            ),
            local_move: false,
            succession: std::env::var("MSGR_SUCCESSION")
                .ok()
                .and_then(|s| Succession::parse(&s))
                .unwrap_or_default(),
            replication: 1,
            profile: matches!(
                std::env::var("MSGR_PROFILE").ok().as_deref(),
                Some("1") | Some("on") | Some("true")
            ),
            profile_interval: 4096,
        }
    }

    /// The number of execution lanes, clamped to at least one.
    pub fn lane_count(&self) -> usize {
        self.lanes.max(1)
    }

    /// The checkpoint replication factor, clamped to at least one.
    pub fn replica_count(&self) -> usize {
        self.replication.max(1)
    }

    /// `true` iff outgoing payload frames may be coalesced into
    /// [`crate::wire::Wire::Batch`] envelopes.
    pub fn batching(&self) -> bool {
        self.batch.enabled()
    }

    /// `true` iff daemons must run the reliable ack/retransmit transport
    /// (any fault class enabled). With the default benign plan this is
    /// `false` and the transport adds zero cost and zero wire bytes.
    pub fn reliable(&self) -> bool {
        !self.faults.is_none()
    }

    /// `true` iff the crash-recovery subsystem (failure detector,
    /// checkpointing, failover) must run: the fault plan can kill a
    /// daemon permanently. Transient fail-recover plans keep the PR 2
    /// behavior bit-identical.
    pub fn recovery_armed(&self) -> bool {
        self.faults.has_kills()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_era() {
        let c = ClusterConfig::new(8);
        assert_eq!(c.daemons, 8);
        assert_eq!(c.net, NetKind::Ethernet100);
        assert_eq!(c.cpu_speed, 1.0);
        assert_eq!(c.vt_mode, VtMode::Conservative);
        assert!(c.costs.per_op_ns > 0);
        assert!(c.faults.is_none(), "faults must default to none");
        assert!(!c.reliable(), "transport must default to off");
        assert!(!c.trace.enabled, "tracing must default to off");
        assert_eq!(c.lane_count(), 1, "lanes must default to 1");
        assert!(!c.batching(), "batching must default to off");
        assert!(!c.local_move, "move-hops must default to off");
        if std::env::var("MSGR_EXEC").is_err() {
            assert_eq!(c.exec, ExecMode::Interp, "execution must default to interp");
        }
        assert_eq!(ExecMode::parse("compiled"), Some(ExecMode::Compiled));
        assert_eq!(ExecMode::parse("jit"), None);
        if std::env::var("MSGR_SUCCESSION").is_err() {
            assert_eq!(c.succession, Succession::Quorum, "succession must default to quorum");
        }
        assert_eq!(c.replica_count(), 1, "replication must default to k=1");
        assert_eq!(Succession::parse("deterministic"), Some(Succession::Deterministic));
        assert_eq!(Succession::parse("raft"), None);
        if std::env::var("MSGR_PROFILE").is_err() {
            assert!(!c.profile, "profiling must default to off");
        }
        assert!(c.profile_interval > 0, "sampling interval must be positive");
    }

    #[test]
    fn batch_policy_thresholds() {
        assert!(!BatchPolicy::off().enabled());
        assert!(!BatchPolicy { max_frames: 1, max_bytes: 1024 }.enabled());
        assert!(BatchPolicy::on().enabled());
        let mut c = ClusterConfig::new(2);
        c.lanes = 0;
        assert_eq!(c.lane_count(), 1, "lanes=0 is treated as 1");
    }

    #[test]
    fn any_fault_knob_enables_the_transport() {
        let mut c = ClusterConfig::new(2);
        c.faults = FaultPlan::lossy(0.1);
        assert!(c.reliable());
        let mut c = ClusterConfig::new(2);
        c.faults.crashes.push(msgr_sim::CrashEvent::transient(1, MILLI, MILLI));
        assert!(c.reliable(), "crash-only plans still need acks to recover frames");
        assert!(!c.recovery_armed(), "transient crashes must not arm recovery");
        c.faults.crashes.push(msgr_sim::CrashEvent::kill(1, 10 * MILLI));
        assert!(c.recovery_armed(), "a permanent kill arms recovery");
    }

    #[test]
    fn recovery_policy_defaults_are_ordered() {
        let r = RecoveryPolicy::default();
        assert!(r.heartbeat_every > 0);
        assert!(r.suspect_after >= 2 * r.heartbeat_every, "suspect only after missed beats");
        assert!(r.dead_after > r.suspect_after, "dead strictly after suspect");
        assert!(r.checkpoint_every > 0);
    }

    #[test]
    fn fd_thresholds_obey_env_overrides() {
        // Serialize against anything else reading the vars: set, read,
        // restore in one test so no parallel ClusterConfig::new observes
        // a half-configured detector.
        std::env::set_var("MSGR_FD_SUSPECT", "90");
        std::env::set_var("MSGR_FD_DEAD", "300");
        let r = RecoveryPolicy::from_env();
        assert_eq!(r.suspect_after, 90 * MILLI);
        assert_eq!(r.dead_after, 300 * MILLI);
        assert_eq!(r.heartbeat_every, RecoveryPolicy::default().heartbeat_every);
        // An inverted pair (dead <= suspect) falls back to defaults.
        std::env::set_var("MSGR_FD_DEAD", "90");
        assert_eq!(RecoveryPolicy::from_env(), RecoveryPolicy::default());
        // Garbage is ignored, not fatal.
        std::env::set_var("MSGR_FD_DEAD", "soon");
        let r = RecoveryPolicy::from_env();
        assert_eq!(r.suspect_after, 90 * MILLI);
        assert_eq!(r.dead_after, RecoveryPolicy::default().dead_after);
        std::env::remove_var("MSGR_FD_SUSPECT");
        std::env::remove_var("MSGR_FD_DEAD");
        assert_eq!(RecoveryPolicy::from_env(), RecoveryPolicy::default());
    }

    #[test]
    fn retransmit_policy_defaults_are_sane() {
        let p = RetransmitPolicy::default();
        assert!(p.rto > 0 && p.max_rto >= p.rto);
        assert!(p.max_attempts >= 2);
    }

    #[test]
    #[should_panic(expected = "bad daemon count")]
    fn zero_daemons_rejected() {
        let _ = ClusterConfig::new(0);
    }
}
