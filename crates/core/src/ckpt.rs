//! Checkpoint storage: where daemon snapshots survive their owner.
//!
//! The recovery model is pessimistic (output-commit): a daemon's durable
//! effects are released only together with a snapshot that can replay
//! them, so the store is the single source of truth after a permanent
//! death. The simulation platform keeps snapshots in host memory that
//! outlives the simulated daemon ([`MemStore`]); the threads platform
//! writes them to disk ([`FileStore`]) when the cluster is configured
//! with a checkpoint directory.

use msgr_vm::bytes::Bytes;
use std::collections::HashMap;
use std::path::PathBuf;

use crate::ids::DaemonId;

/// Durable storage for per-daemon checkpoint snapshots. One slot per
/// daemon: a new snapshot atomically replaces the previous one (the
/// classic last-checkpoint discipline — nothing older is ever needed,
/// because the flush preceding each snapshot committed everything the
/// snapshot covers).
pub trait CheckpointStore {
    /// Replace daemon `d`'s snapshot.
    fn put(&mut self, d: DaemonId, snapshot: Bytes);
    /// Fetch daemon `d`'s latest snapshot, if it ever checkpointed.
    fn get(&self, d: DaemonId) -> Option<Bytes>;
}

/// In-memory store — "durable" relative to the simulated cluster, i.e.
/// it lives in the host simulator, not in any simulated daemon.
#[derive(Debug, Default)]
pub struct MemStore {
    slots: HashMap<u16, Bytes>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl CheckpointStore for MemStore {
    fn put(&mut self, d: DaemonId, snapshot: Bytes) {
        self.slots.insert(d.0, snapshot);
    }

    fn get(&self, d: DaemonId) -> Option<Bytes> {
        self.slots.get(&d.0).cloned()
    }
}

/// File-backed store: one `daemon-<id>.ckpt` per daemon under the
/// configured directory, written via a temp file + rename so a crash
/// mid-write never corrupts the previous snapshot.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
}

impl FileStore {
    /// A store rooted at `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory.
    pub fn new(dir: PathBuf) -> std::io::Result<Self> {
        std::fs::create_dir_all(&dir)?;
        Ok(FileStore { dir })
    }

    fn path(&self, d: DaemonId) -> PathBuf {
        self.dir.join(format!("daemon-{}.ckpt", d.0))
    }

    /// Persist an auxiliary artifact (e.g. the merged flight-recorder
    /// trace) next to the checkpoints, with the same temp-file + rename
    /// discipline. `name` must be a bare file name.
    pub fn put_blob(&self, name: &str, bytes: &[u8]) {
        debug_assert!(!name.contains(['/', '\\']), "blob name must be bare: {name:?}");
        let tmp = self.dir.join(format!("{name}.tmp"));
        if std::fs::write(&tmp, bytes).is_ok() {
            let _ = std::fs::rename(&tmp, self.dir.join(name));
        }
    }
}

impl CheckpointStore for FileStore {
    fn put(&mut self, d: DaemonId, snapshot: Bytes) {
        let tmp = self.dir.join(format!("daemon-{}.ckpt.tmp", d.0));
        // Failures degrade to "no checkpoint", which recovery treats as
        // a daemon that never checkpointed — safe, just lossier.
        if std::fs::write(&tmp, snapshot.as_ref()).is_ok() {
            let _ = std::fs::rename(&tmp, self.path(d));
        }
    }

    fn get(&self, d: DaemonId) -> Option<Bytes> {
        std::fs::read(self.path(d)).ok().map(Bytes::from)
    }
}

/// A `k`-replicated view over a [`CheckpointStore`]: every snapshot
/// version is held by up to `k` *holder* daemons (the owner's next-alive
/// successors, plus the platform's own copy under the owner itself), and
/// a holder's copies die with it — [`ReplicatedStore::fail`] models the
/// loss of everything a dead daemon held. Recovery reads the
/// highest-version copy on a *live* holder, so it survives losing the
/// victim and up to `k - 1` replica holders in the same fault plan.
///
/// The inner store keeps the "current snapshot per slot" discipline;
/// replication bookkeeping (who holds which version) lives here, keyed
/// `(owner, holder)` so a platform can install write-ahead copies as
/// [`crate::wire::Wire::CkptPush`] frames arrive.
#[derive(Debug)]
pub struct ReplicatedStore<S> {
    inner: S,
    /// `(owner, holder) → (version, snapshot)`; only the latest version
    /// per holder is kept (the last-checkpoint discipline).
    replicas: HashMap<(u16, u16), (u32, Bytes)>,
    /// Holders that died; their copies are gone.
    failed: Vec<u16>,
}

impl<S: CheckpointStore> ReplicatedStore<S> {
    /// Wrap `inner`; no replicas, no failures.
    pub fn new(inner: S) -> Self {
        ReplicatedStore { inner, replicas: HashMap::new(), failed: Vec::new() }
    }

    /// Access the wrapped store (e.g. [`FileStore::put_blob`]).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Install version `ver` of `owner`'s snapshot on `holder`. Stale
    /// versions (≤ the holder's current one) are ignored; installs on a
    /// failed holder are dropped — a dead daemon accepts nothing.
    pub fn install(&mut self, owner: DaemonId, holder: DaemonId, ver: u32, snapshot: Bytes) {
        if self.failed.contains(&holder.0) {
            return;
        }
        let slot = self.replicas.entry((owner.0, holder.0)).or_insert((0, Bytes::new()));
        if ver >= slot.0 {
            *slot = (ver, snapshot);
        }
    }

    /// The version of `owner`'s snapshot currently held by `holder`, if
    /// any. Platforms use this to skip pushes that would re-install what
    /// a holder already has — the idempotence that lets the periodic
    /// checkpoint cadence quiesce once nothing changes.
    pub fn held_version(&self, owner: DaemonId, holder: DaemonId) -> Option<u32> {
        self.replicas.get(&(owner.0, holder.0)).map(|&(v, _)| v)
    }

    /// `true` iff `owner`'s own copy is byte-identical to `snapshot` —
    /// i.e. a new checkpoint would change nothing.
    pub fn unchanged(&self, owner: DaemonId, snapshot: &Bytes) -> bool {
        self.replicas.get(&(owner.0, owner.0)).is_some_and(|(_, b)| b == snapshot)
    }

    /// Holder `d` died: every copy it held is lost, and it accepts no
    /// further installs.
    pub fn fail(&mut self, d: DaemonId) {
        if !self.failed.contains(&d.0) {
            self.failed.push(d.0);
        }
        self.replicas.retain(|&(_, holder), _| holder != d.0);
    }

    /// The best surviving copy of `owner`'s snapshot: highest version on
    /// any live holder, ties broken toward the lowest holder id (so
    /// every daemon computing this picks the same copy).
    pub fn best(&self, owner: DaemonId) -> Option<(u32, Bytes)> {
        let mut best: Option<(u32, u16, &Bytes)> = None;
        for (&(o, holder), &(ver, ref snap)) in &self.replicas {
            if o != owner.0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bv, bh, _)) => ver > bv || (ver == bv && holder < bh),
            };
            if better {
                best = Some((ver, holder, snap));
            }
        }
        best.map(|(ver, _, snap)| (ver, snap.clone()))
    }
}

impl<S: CheckpointStore> CheckpointStore for ReplicatedStore<S> {
    /// The owner's own copy: versionless writes go to the inner store
    /// *and* count as a replica under the owner itself (lost on
    /// [`ReplicatedStore::fail`], like any other holder's copy).
    fn put(&mut self, d: DaemonId, snapshot: Bytes) {
        self.inner.put(d, snapshot);
    }

    /// The best surviving copy: a live replica if any holder survives,
    /// else the inner store's copy *unless the owner is failed* (the
    /// primary slot models storage on the owner's host).
    fn get(&self, d: DaemonId) -> Option<Bytes> {
        if let Some((_, snap)) = self.best(d) {
            return Some(snap);
        }
        if self.failed.contains(&d.0) {
            return None;
        }
        self.inner.get(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_round_trips_and_replaces() {
        let mut s = MemStore::new();
        assert!(s.get(DaemonId(1)).is_none());
        s.put(DaemonId(1), Bytes::from(vec![1, 2, 3]));
        assert_eq!(s.get(DaemonId(1)).unwrap().as_ref(), &[1, 2, 3]);
        s.put(DaemonId(1), Bytes::from(vec![9]));
        assert_eq!(s.get(DaemonId(1)).unwrap().as_ref(), &[9], "new snapshot replaces old");
        assert!(s.get(DaemonId(2)).is_none(), "slots are per daemon");
    }

    #[test]
    fn replicated_store_survives_holder_loss() {
        let mut s = ReplicatedStore::new(MemStore::new());
        let owner = DaemonId(2);
        // Version 1 on the owner itself and holders 3 and 4 (k = 2).
        s.install(owner, DaemonId(2), 1, Bytes::from(vec![1]));
        s.install(owner, DaemonId(3), 1, Bytes::from(vec![1]));
        s.install(owner, DaemonId(4), 1, Bytes::from(vec![1]));
        // Version 2 reached only the owner and holder 3.
        s.install(owner, DaemonId(2), 2, Bytes::from(vec![2]));
        s.install(owner, DaemonId(3), 2, Bytes::from(vec![2]));
        assert_eq!(s.best(owner).unwrap(), (2, Bytes::from(vec![2])));
        // The owner dies: its own copy is gone, holder 3 has v2.
        s.fail(DaemonId(2));
        assert_eq!(s.best(owner).unwrap(), (2, Bytes::from(vec![2])));
        // Holder 3 dies too: fall back to holder 4's v1.
        s.fail(DaemonId(3));
        assert_eq!(s.best(owner).unwrap(), (1, Bytes::from(vec![1])));
        assert_eq!(s.get(owner).unwrap().as_ref(), &[1]);
        // A push to a dead holder is dropped, and stale versions lose.
        s.install(owner, DaemonId(3), 9, Bytes::from(vec![9]));
        s.install(owner, DaemonId(4), 0, Bytes::from(vec![0]));
        assert_eq!(s.best(owner).unwrap(), (1, Bytes::from(vec![1])));
        // Last holder dies: nothing survives anywhere.
        s.fail(DaemonId(4));
        assert!(s.best(owner).is_none());
        assert!(s.get(owner).is_none(), "failed owner must not resurrect the inner slot");
    }

    #[test]
    fn replicated_store_ties_break_toward_lowest_holder() {
        let mut s = ReplicatedStore::new(MemStore::new());
        let owner = DaemonId(0);
        s.install(owner, DaemonId(5), 3, Bytes::from(vec![5]));
        s.install(owner, DaemonId(1), 3, Bytes::from(vec![1]));
        s.install(owner, DaemonId(3), 3, Bytes::from(vec![3]));
        assert_eq!(s.best(owner).unwrap(), (3, Bytes::from(vec![1])));
    }

    #[test]
    fn file_store_round_trips() {
        let dir = std::env::temp_dir().join(format!("msgr-ckpt-test-{}", std::process::id()));
        let mut s = FileStore::new(dir.clone()).expect("create store dir");
        assert!(s.get(DaemonId(0)).is_none());
        s.put(DaemonId(0), Bytes::from(vec![42; 100]));
        assert_eq!(s.get(DaemonId(0)).unwrap().len(), 100);
        s.put(DaemonId(0), Bytes::from(vec![7]));
        assert_eq!(s.get(DaemonId(0)).unwrap().as_ref(), &[7]);
        s.put_blob("trace.jsonl", b"{}\n");
        assert_eq!(std::fs::read(dir.join("trace.jsonl")).unwrap(), b"{}\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
