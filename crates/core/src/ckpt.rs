//! Checkpoint storage: where daemon snapshots survive their owner.
//!
//! The recovery model is pessimistic (output-commit): a daemon's durable
//! effects are released only together with a snapshot that can replay
//! them, so the store is the single source of truth after a permanent
//! death. The simulation platform keeps snapshots in host memory that
//! outlives the simulated daemon ([`MemStore`]); the threads platform
//! writes them to disk ([`FileStore`]) when the cluster is configured
//! with a checkpoint directory.

use msgr_vm::bytes::Bytes;
use std::collections::HashMap;
use std::path::PathBuf;

use crate::ids::DaemonId;

/// Durable storage for per-daemon checkpoint snapshots. One slot per
/// daemon: a new snapshot atomically replaces the previous one (the
/// classic last-checkpoint discipline — nothing older is ever needed,
/// because the flush preceding each snapshot committed everything the
/// snapshot covers).
pub trait CheckpointStore {
    /// Replace daemon `d`'s snapshot.
    fn put(&mut self, d: DaemonId, snapshot: Bytes);
    /// Fetch daemon `d`'s latest snapshot, if it ever checkpointed.
    fn get(&self, d: DaemonId) -> Option<Bytes>;
}

/// In-memory store — "durable" relative to the simulated cluster, i.e.
/// it lives in the host simulator, not in any simulated daemon.
#[derive(Debug, Default)]
pub struct MemStore {
    slots: HashMap<u16, Bytes>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl CheckpointStore for MemStore {
    fn put(&mut self, d: DaemonId, snapshot: Bytes) {
        self.slots.insert(d.0, snapshot);
    }

    fn get(&self, d: DaemonId) -> Option<Bytes> {
        self.slots.get(&d.0).cloned()
    }
}

/// File-backed store: one `daemon-<id>.ckpt` per daemon under the
/// configured directory, written via a temp file + rename so a crash
/// mid-write never corrupts the previous snapshot.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
}

impl FileStore {
    /// A store rooted at `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory.
    pub fn new(dir: PathBuf) -> std::io::Result<Self> {
        std::fs::create_dir_all(&dir)?;
        Ok(FileStore { dir })
    }

    fn path(&self, d: DaemonId) -> PathBuf {
        self.dir.join(format!("daemon-{}.ckpt", d.0))
    }

    /// Persist an auxiliary artifact (e.g. the merged flight-recorder
    /// trace) next to the checkpoints, with the same temp-file + rename
    /// discipline. `name` must be a bare file name.
    pub fn put_blob(&self, name: &str, bytes: &[u8]) {
        debug_assert!(!name.contains(['/', '\\']), "blob name must be bare: {name:?}");
        let tmp = self.dir.join(format!("{name}.tmp"));
        if std::fs::write(&tmp, bytes).is_ok() {
            let _ = std::fs::rename(&tmp, self.dir.join(name));
        }
    }
}

impl CheckpointStore for FileStore {
    fn put(&mut self, d: DaemonId, snapshot: Bytes) {
        let tmp = self.dir.join(format!("daemon-{}.ckpt.tmp", d.0));
        // Failures degrade to "no checkpoint", which recovery treats as
        // a daemon that never checkpointed — safe, just lossier.
        if std::fs::write(&tmp, snapshot.as_ref()).is_ok() {
            let _ = std::fs::rename(&tmp, self.path(d));
        }
    }

    fn get(&self, d: DaemonId) -> Option<Bytes> {
        std::fs::read(self.path(d)).ok().map(Bytes::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_round_trips_and_replaces() {
        let mut s = MemStore::new();
        assert!(s.get(DaemonId(1)).is_none());
        s.put(DaemonId(1), Bytes::from(vec![1, 2, 3]));
        assert_eq!(s.get(DaemonId(1)).unwrap().as_ref(), &[1, 2, 3]);
        s.put(DaemonId(1), Bytes::from(vec![9]));
        assert_eq!(s.get(DaemonId(1)).unwrap().as_ref(), &[9], "new snapshot replaces old");
        assert!(s.get(DaemonId(2)).is_none(), "slots are per daemon");
    }

    #[test]
    fn file_store_round_trips() {
        let dir = std::env::temp_dir().join(format!("msgr-ckpt-test-{}", std::process::id()));
        let mut s = FileStore::new(dir.clone()).expect("create store dir");
        assert!(s.get(DaemonId(0)).is_none());
        s.put(DaemonId(0), Bytes::from(vec![42; 100]));
        assert_eq!(s.get(DaemonId(0)).unwrap().len(), 100);
        s.put(DaemonId(0), Bytes::from(vec![7]));
        assert_eq!(s.get(DaemonId(0)).unwrap().as_ref(), &[7]);
        s.put_blob("trace.jsonl", b"{}\n");
        assert_eq!(std::fs::read(dir.join("trace.jsonl")).unwrap(), b"{}\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
