//! The scripts printed in the paper must compile and run as-is: this is
//! the "smaller semantic gap" claim made executable.

use messengers::core::{ClusterConfig, SimCluster};
use messengers::vm::Value;

/// Fig. 3 — the complete manager/worker program.
#[test]
fn fig3_manager_worker_runs_end_to_end() {
    let program = messengers::lang::compile(messengers::apps::mandel_msgr::MANAGER_WORKER_SCRIPT)
        .expect("Fig. 3 compiles");
    // The script defines exactly one function with the paper's name.
    assert_eq!(program.funcs.len(), 1);
    assert_eq!(program.funcs[0].name, "manager_worker");

    let mut cluster = SimCluster::new(ClusterConfig::new(3));
    cluster.register_native("next_task", |ctx, _| {
        let next = ctx.node_var("next").as_int().unwrap_or(0);
        if next >= 5 {
            return Ok(Value::Null);
        }
        ctx.set_node_var("next", Value::Int(next + 1));
        Ok(Value::Int(next))
    });
    cluster.register_native("compute", |_, args| {
        Ok(Value::Int(args[0].as_int().map_err(|e| e.to_string())? * 10))
    });
    cluster.register_native("deposit", |ctx, args| {
        let sum = ctx.node_var("sum").as_int().unwrap_or(0);
        ctx.set_node_var("sum", Value::Int(sum + args[0].as_int().map_err(|e| e.to_string())?));
        Ok(Value::Null)
    });
    let pid = cluster.register_program(&program);
    cluster.inject(0, pid, &[]).unwrap();
    let report = cluster.run().unwrap();
    assert!(report.faults.is_empty(), "{:?}", report.faults);
    // 0+1+2+3+4 times 10.
    assert_eq!(cluster.node_var(0, &Value::str("init"), "sum"), Some(Value::Int(100)));
}

/// Fig. 11 — both matmul messengers compile; entry selection works.
#[test]
fn fig11_scripts_compile_with_both_entries() {
    for entry in ["distribute_A", "rotate_B"] {
        let p = messengers::lang::compile_with_entry(
            messengers::apps::matmul_msgr::MATMUL_SCRIPTS,
            entry,
        )
        .expect("Fig. 11 compiles");
        assert_eq!(p.func(p.entry).name, entry);
        assert_eq!(p.func(p.entry).arity, 4, "(s, m, i, j)");
    }
}

/// §2.1's hop examples parse with the full and default syntax.
#[test]
fn section2_hop_forms_compile() {
    let src = r#"
        demo(x) {
            hop(ln = *; ll = x; ldir = *);
            hop(ll = x);
            hop(ln = *; ll = x; ldir = -);
            hop(ll = x; ldir = -);
            hop(ln = *; ll = *; ldir = *);
            hop();
        }
    "#;
    let p = messengers::lang::compile(src).unwrap();
    assert_eq!(p.hop_specs.len(), 6);
}

/// §2.1's create examples (including multi-item and ALL).
#[test]
fn section2_create_forms_compile() {
    let src = r#"
        demo(a, b, x, y) {
            create(ALL);
            create(ln = a, b; ll = x, y);
        }
    "#;
    let p = messengers::lang::compile(src).unwrap();
    assert_eq!(p.create_specs.len(), 2);
    assert!(p.create_specs[0].all);
    assert_eq!(p.create_specs[1].items.len(), 2);
    assert!(!p.create_specs[1].all);
}

/// The code-size comparison the paper makes in §3.1.1/§3.2.1.
#[test]
fn code_size_claims_hold() {
    let rows = messengers::apps::codesize::comparison();
    assert_eq!(rows.len(), 2);
    for row in rows {
        assert!(row.messengers_lines <= row.pvm_lines);
        assert!(row.messengers_lines < row.pvm_real_lines);
    }
}
