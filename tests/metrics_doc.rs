//! DESIGN.md §8's metric registry table is generated documentation:
//! every row must match `Metric::ALL` exactly — same names, same kinds,
//! same units, same order. This test is the sync enforcement; if it
//! fails, regenerate the table from `msgr metrics --list`.

use messengers::trace::{Metric, MetricKind, Unit};

fn kind_str(k: MetricKind) -> &'static str {
    match k {
        MetricKind::Counter => "counter",
        MetricKind::Gauge => "gauge",
        MetricKind::Histogram => "histogram",
    }
}

fn unit_str(u: Unit) -> &'static str {
    match u {
        Unit::Count => "count",
        Unit::Bytes => "bytes",
        Unit::Nanos => "ns",
        Unit::Ops => "ops",
    }
}

#[test]
fn design_doc_metric_table_matches_the_registry() {
    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md"))
        .expect("read DESIGN.md");

    // Scope to §8 so tables elsewhere in the doc can't satisfy us.
    let start = doc.find("## 8. Observability").expect("DESIGN.md lost §8");
    let end = doc[start..].find("\n## 9.").map(|i| start + i).unwrap_or(doc.len());
    let section = &doc[start..end];

    // Registry rows look like: | `name` | kind | unit | meaning |
    let mut rows: Vec<(String, String, String)> = Vec::new();
    for line in section.lines() {
        let Some(rest) = line.strip_prefix("| `") else { continue };
        let mut cols = rest.split('|').map(str::trim);
        let name = cols.next().unwrap_or("").trim_end_matches('`').to_string();
        let (Some(kind), Some(unit)) = (cols.next(), cols.next()) else {
            panic!("malformed registry row in DESIGN.md §8: {line:?}");
        };
        rows.push((name, kind.to_string(), unit.to_string()));
    }

    let registry: Vec<(String, String, String)> = Metric::ALL
        .iter()
        .map(|m| {
            (m.name().to_string(), kind_str(m.kind()).to_string(), unit_str(m.unit()).to_string())
        })
        .collect();

    assert_eq!(
        rows.len(),
        registry.len(),
        "DESIGN.md §8 documents {} metrics but the registry has {} — \
         regenerate the table with `msgr metrics --list`",
        rows.len(),
        registry.len()
    );
    for (i, (doc_row, reg_row)) in rows.iter().zip(&registry).enumerate() {
        assert_eq!(
            doc_row, reg_row,
            "DESIGN.md §8 row {i} drifted from the registry — \
             regenerate the table with `msgr metrics --list`"
        );
    }
}
