//! End-to-end guarantees of the cost-attribution profiler.
//!
//! Profiling is opt-in pure bookkeeping: with `ClusterConfig::profile`
//! off the run is byte-for-byte the run that existed before the
//! profiler; with it on, the simulation is untouched and the only
//! difference is extra `phase_ledger` / `pc_sample` events riding the
//! trace stream. These tests pin all of that, plus the determinism and
//! fraction-sum invariants the `msgr profile` report relies on.

use messengers::core::topology::LogicalTopology;
use messengers::core::{ClusterConfig, DaemonId, SimCluster, ThreadCluster, TraceConfig};
use messengers::prof::Profile;
use messengers::trace::{EventKind, Trace};
use messengers::vm::{Dir, Value};

/// A ring walker with an inner loop hot enough to trip the pc sampler.
const WALK: &str = r#"
walk(passes, iters) {
    int i = 0;
    int k;
    float acc = 0.0;
    node int visits;
    visits = visits + 1;
    while (i < passes) {
        k = 0;
        while (k < iters) {
            acc = acc + 1.5;
            k = k + 1;
        }
        hop(ll = "ring"; ldir = +);
        visits = visits + 1;
        i = i + 1;
    }
}
"#;

fn ring(nodes: usize, daemons: usize) -> LogicalTopology {
    let mut topo = LogicalTopology::new();
    for i in 0..nodes {
        topo.node(Value::str(format!("p{i}")), DaemonId((i % daemons) as u16));
    }
    for i in 0..nodes {
        topo.link(
            Value::str(format!("p{i}")),
            Value::str(format!("p{}", (i + 1) % nodes)),
            Value::str("ring"),
            Dir::Forward,
        );
    }
    topo
}

fn cfg(profile: bool) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(4);
    cfg.seed = 42;
    cfg.trace = TraceConfig::on();
    cfg.profile = profile;
    cfg.profile_interval = 256;
    cfg
}

/// Run the walker on the sim platform and return the merged trace plus
/// the simulated clock.
fn run_sim(profile: bool) -> (Trace, f64) {
    let mut cluster = SimCluster::new(cfg(profile));
    cluster.build(&ring(8, 4)).expect("build ring");
    let pid = cluster.register_program(&messengers::lang::compile(WALK).expect("compile"));
    for m in 0..4 {
        cluster
            .inject_at(&Value::str(format!("p{m}")), pid, &[Value::Int(6), Value::Int(512)])
            .expect("inject");
    }
    let rep = cluster.run().expect("run");
    assert!(rep.faults.is_empty(), "faults: {:?}", rep.faults);
    (rep.trace.expect("tracing on"), rep.sim_seconds)
}

#[test]
fn profiled_runs_are_deterministic_to_the_byte() {
    let (ta, _) = run_sim(true);
    let (tb, _) = run_sim(true);
    assert_eq!(ta.to_jsonl(), tb.to_jsonl(), "same-seed profiled traces must be byte-identical");
    let (pa, pb) = (Profile::from_trace(&ta), Profile::from_trace(&tb));
    assert!(!pa.is_empty(), "profiled run produced no profiler events");
    assert_eq!(pa.report(), pb.report(), "profile reports must be byte-identical");
    assert_eq!(pa.critical_path(), pb.critical_path());
    assert_eq!(pa.folded(), pb.folded());
}

#[test]
fn profiling_off_is_the_status_quo_and_on_only_adds_events() {
    // Off twice: byte-identical (the pre-profiler behavior).
    let (off_a, secs_a) = run_sim(false);
    let (off_b, _) = run_sim(false);
    assert_eq!(off_a.to_jsonl(), off_b.to_jsonl());
    assert!(
        Profile::from_trace(&off_a).is_empty(),
        "profiler events leaked into an unprofiled trace"
    );

    // On: the simulation itself must not move (profiling charges nothing
    // to the cost model), and the event stream minus the profiler's own
    // kinds is the unprofiled stream.
    let (on, secs_on) = run_sim(true);
    assert_eq!(secs_a.to_bits(), secs_on.to_bits(), "profiling moved the simulated clock");
    let is_prof = |e: &&messengers::trace::TraceEvent| {
        matches!(e.kind, EventKind::PhaseLedger { .. } | EventKind::PcSample { .. })
    };
    let off_kinds: Vec<&'static str> = off_a.events.iter().map(|e| e.kind.name()).collect();
    let on_kinds: Vec<&'static str> =
        on.events.iter().filter(|e| !is_prof(e)).map(|e| e.kind.name()).collect();
    assert_eq!(off_kinds, on_kinds, "profiling perturbed the non-profiler event stream");
}

#[test]
fn every_ledger_total_is_its_phase_sum() {
    // The fraction-sum acceptance invariant, checked per ledger on a
    // real run: `total` is exactly the phase sum, so the report's
    // fractions sum to 1 by construction.
    let (t, _) = run_sim(true);
    let p = Profile::from_trace(&t);
    assert!(!p.ledgers.is_empty(), "no full ledgers");
    assert!(!p.samples.is_empty(), "no pc samples (interval too coarse for the workload?)");
    for l in p.ledgers.iter().chain(&p.forks) {
        assert_eq!(
            l.phases.iter().sum::<u64>(),
            l.total,
            "ledger mid={} born={} parent={} breaks total = sum(phases)",
            l.mid,
            l.born,
            l.parent
        );
    }
    assert_eq!(p.phase_totals().iter().sum::<u64>(), p.attributed_total());
    // And the critical path exists and terminates in a real ledger.
    let chain = p.critical_chain();
    assert!(!chain.is_empty(), "no critical path on a profiled run");
    assert!(chain.iter().all(|(l, _)| l.total > 0));
}

#[test]
fn threads_platform_profiles_on_the_monotonic_clock() {
    // The threads platform has no simulated clock; ledgers come from the
    // process monotonic clock instead. Values are nondeterministic, but
    // the structural invariants still hold.
    let mut c = cfg(true);
    c.trace = TraceConfig::default(); // platform forces tracing on for profiled runs
    let mut cluster = ThreadCluster::new(c).expect("threads cluster");
    cluster.build(&ring(8, 4)).expect("build ring");
    let pid = cluster.register_program(&messengers::lang::compile(WALK).expect("compile"));
    for m in 0..4 {
        cluster
            .inject_at(&Value::str(format!("p{m}")), pid, &[Value::Int(4), Value::Int(512)])
            .expect("inject");
    }
    let rep = cluster.run().expect("run");
    assert!(rep.faults.is_empty(), "faults: {:?}", rep.faults);
    let p = Profile::from_trace(&rep.trace.expect("profiling implies tracing"));
    assert!(!p.ledgers.is_empty(), "no ledgers on the threads platform");
    for l in p.ledgers.iter().chain(&p.forks) {
        assert_eq!(l.phases.iter().sum::<u64>(), l.total);
        assert_eq!(l.phases[4], 0, "threads platform cannot attribute transport in-flight time");
    }
}
