//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;

use messengers::vm::{wire, Frame, Matrix, MessengerState, Value, Vt};

// ---- value / messenger codec ------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN is rejected by design.
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Value::Float),
        "[a-z0-9 ,._-]{0,24}".prop_map(Value::str),
        proptest::collection::vec(any::<f64>().prop_filter("finite", |f| f.is_finite()), 1..16)
            .prop_map(|v| Value::Mat(Matrix::from_vec(1, v.len() as u32, v))),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|v| Value::Blob(bytes::Bytes::from(v))),
    ];
    leaf
}

proptest! {
    #[test]
    fn value_codec_round_trips(v in arb_value()) {
        let mut buf = bytes::BytesMut::new();
        wire::put_value(&mut buf, &v);
        let mut bytes = buf.freeze();
        let back = wire::get_value(&mut bytes).unwrap();
        prop_assert_eq!(back, v);
        prop_assert!(bytes.is_empty());
    }

    #[test]
    fn messenger_codec_round_trips(
        locals in proptest::collection::vec(arb_value(), 0..8),
        stack in proptest::collection::vec(arb_value(), 0..4),
        vt in 0.0f64..1e9,
        id in any::<u64>(),
        pc in any::<u16>(),
    ) {
        let m = MessengerState {
            id: id.into(),
            program: messengers::vm::ProgramId(42),
            frames: vec![Frame {
                func: messengers::vm::FuncId(0),
                pc: pc as u32,
                locals,
                stack,
            }],
            vtime: Vt::new(vt),
            anti: false,
        };
        let encoded = wire::encode_messenger(&m);
        let back = wire::decode_messenger(encoded).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn messenger_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Must return Ok or Err, never panic.
        let _ = wire::decode_messenger(bytes::Bytes::from(bytes));
    }

    #[test]
    fn program_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::decode_program(bytes::Bytes::from(bytes));
    }
}

// ---- language: compiled arithmetic matches direct evaluation ---------------

#[derive(Debug, Clone)]
enum E {
    Lit(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", -(*v as i64))
                } else {
                    v.to_string()
                }
            }
            E::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            E::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            E::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
        }
    }

    fn eval(&self) -> i64 {
        match self {
            E::Lit(v) => *v as i64,
            E::Add(a, b) => a.eval().wrapping_add(b.eval()),
            E::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            E::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = (-1000i32..1000).prop_map(E::Lit);
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #[test]
    fn compiled_arithmetic_matches_host_arithmetic(e in arb_expr()) {
        let src = format!("main() {{ return {}; }}", e.render());
        let program = messengers::lang::compile(&src).unwrap();
        let mut m = MessengerState::launch(&program, 1.into(), &[]).unwrap();
        let y = messengers::vm::interp::run(
            &program,
            &mut m,
            &mut messengers::vm::NullEnv,
            1_000_000,
        )
        .unwrap();
        prop_assert_eq!(y, messengers::vm::Yield::Terminated(Value::Int(e.eval())));
    }

    #[test]
    fn vt_ordering_is_total_and_monotone(mut ts in proptest::collection::vec(0.0f64..1e12, 1..64)) {
        let mut vts: Vec<Vt> = ts.iter().map(|&t| Vt::new(t)).collect();
        vts.sort();
        ts.sort_by(f64::total_cmp);
        for (vt, t) in vts.iter().zip(&ts) {
            prop_assert_eq!(vt.as_f64(), *t);
        }
    }
}

// ---- pending queue ----------------------------------------------------------

proptest! {
    #[test]
    fn pending_queue_pops_in_nondecreasing_time_order(
        items in proptest::collection::vec((0.0f64..1e6, any::<u32>()), 0..128)
    ) {
        let mut q = messengers::gvt::PendingQueue::new();
        for (t, payload) in &items {
            q.push(Vt::new(*t), *payload);
        }
        let mut last = Vt::ZERO;
        let mut count = 0;
        while let Some((wake, _)) = q.pop_min() {
            prop_assert!(wake >= last);
            last = wake;
            count += 1;
        }
        prop_assert_eq!(count, items.len());
    }

    #[test]
    fn pending_queue_pop_runnable_respects_bound(
        items in proptest::collection::vec(0.0f64..100.0, 1..64),
        gvt in 0.0f64..100.0,
    ) {
        let mut q = messengers::gvt::PendingQueue::new();
        for (i, t) in items.iter().enumerate() {
            q.push(Vt::new(*t), i);
        }
        let bound = Vt::new(gvt);
        while let Some((wake, _)) = q.pop_runnable(bound) {
            prop_assert!(wake <= bound);
        }
        // Whatever remains is strictly later than the bound.
        prop_assert!(q.min_wake().is_none_or(|w| w > bound));
    }
}

// ---- PVM buffers -------------------------------------------------------------

proptest! {
    #[test]
    fn pvm_buf_round_trips(
        ints in proptest::collection::vec(any::<i64>(), 0..16),
        floats in proptest::collection::vec(any::<f64>().prop_filter("finite", |f| f.is_finite()), 0..16),
        text in "[a-z ]{0,32}",
        raw in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut b = messengers::pvm::Buf::new();
        b.pack_ints(&ints).pack_floats(&floats).pack_str(&text).pack_bytes(&raw);
        prop_assert_eq!(b.unpack_ints().unwrap(), ints);
        prop_assert_eq!(b.unpack_floats().unwrap(), floats);
        prop_assert_eq!(b.unpack_str().unwrap(), text);
        prop_assert_eq!(b.unpack_bytes().unwrap(), raw);
        prop_assert!(b.unpack_ints().is_err());
    }
}
