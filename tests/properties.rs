//! Property-based tests on the core data structures and invariants.

use msgr_check::{check, prop_assert, prop_assert_eq, Source};

use messengers::vm::{wire, Bytes, BytesMut, Frame, Matrix, MessengerState, Value, Vt};

// ---- value / messenger codec ------------------------------------------------

const STR_CHARS: &str = "abcdefghijklmnopqrstuvwxyz0123456789 ,._-";

fn arb_value(s: &mut Source) -> Value {
    match s.draw(7) {
        0 => Value::Null,
        1 => Value::Bool(s.any_bool()),
        2 => Value::Int(s.any_i64()),
        // Finite floats only: NaN is rejected by design.
        3 => Value::Float(s.any_finite_f64()),
        4 => Value::str(s.string(0..25, STR_CHARS)),
        5 => {
            let v = s.vec_with(1..16, |s| s.any_finite_f64());
            Value::Mat(Matrix::from_vec(1, v.len() as u32, v))
        }
        _ => Value::Blob(Bytes::from(s.vec_with(0..64, |s| s.any_u8()))),
    }
}

#[test]
fn value_codec_round_trips() {
    check("value_codec_round_trips", |s| {
        let v = arb_value(s);
        let mut buf = BytesMut::new();
        wire::put_value(&mut buf, &v);
        let mut bytes = buf.freeze();
        let back = wire::get_value(&mut bytes).unwrap();
        prop_assert_eq!(back, v);
        prop_assert!(bytes.is_empty());
        Ok(())
    });
}

#[test]
fn messenger_codec_round_trips() {
    check("messenger_codec_round_trips", |s| {
        let locals = s.vec_with(0..8, arb_value);
        let stack = s.vec_with(0..4, arb_value);
        let vt = s.f64_in(0.0, 1e9);
        let id = s.any_u64();
        let pc = s.any_u16();
        let m = MessengerState {
            id: id.into(),
            program: messengers::vm::ProgramId(42),
            frames: vec![Frame { func: messengers::vm::FuncId(0), pc: pc as u32, locals, stack }],
            vtime: Vt::new(vt),
            anti: false,
        };
        let encoded = wire::encode_messenger(&m);
        let back = wire::decode_messenger(encoded).unwrap();
        prop_assert_eq!(back, m);
        Ok(())
    });
}

#[test]
fn messenger_decoder_never_panics_on_garbage() {
    check("messenger_decoder_never_panics_on_garbage", |s| {
        let bytes = s.vec_with(0..256, |s| s.any_u8());
        // Must return Ok or Err, never panic.
        let _ = wire::decode_messenger(Bytes::from(bytes));
        Ok(())
    });
}

#[test]
fn program_decoder_never_panics_on_garbage() {
    check("program_decoder_never_panics_on_garbage", |s| {
        let bytes = s.vec_with(0..256, |s| s.any_u8());
        let _ = wire::decode_program(Bytes::from(bytes));
        Ok(())
    });
}

// ---- language: compiled arithmetic matches direct evaluation ---------------

#[derive(Debug, Clone)]
enum E {
    Lit(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", -(*v as i64))
                } else {
                    v.to_string()
                }
            }
            E::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            E::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            E::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
        }
    }

    fn eval(&self) -> i64 {
        match self {
            E::Lit(v) => *v as i64,
            E::Add(a, b) => a.eval().wrapping_add(b.eval()),
            E::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            E::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
        }
    }
}

/// A random expression, at most `depth` operator levels deep; shrinks
/// toward a bare literal (choice 0 picks `Lit`).
fn arb_expr(s: &mut Source, depth: u32) -> E {
    let lit = |s: &mut Source| E::Lit(s.i64_in(-1000..1000) as i32);
    if depth == 0 {
        return lit(s);
    }
    match s.draw(4) {
        0 => lit(s),
        1 => E::Add(Box::new(arb_expr(s, depth - 1)), Box::new(arb_expr(s, depth - 1))),
        2 => E::Sub(Box::new(arb_expr(s, depth - 1)), Box::new(arb_expr(s, depth - 1))),
        _ => E::Mul(Box::new(arb_expr(s, depth - 1)), Box::new(arb_expr(s, depth - 1))),
    }
}

#[test]
fn compiled_arithmetic_matches_host_arithmetic() {
    check("compiled_arithmetic_matches_host_arithmetic", |s| {
        let e = arb_expr(s, 4);
        let src = format!("main() {{ return {}; }}", e.render());
        let program = messengers::lang::compile(&src).unwrap();
        let mut m = MessengerState::launch(&program, 1.into(), &[]).unwrap();
        let y =
            messengers::vm::interp::run(&program, &mut m, &mut messengers::vm::NullEnv, 1_000_000)
                .unwrap();
        prop_assert_eq!(y, messengers::vm::Yield::Terminated(Value::Int(e.eval())));
        Ok(())
    });
}

#[test]
fn vt_ordering_is_total_and_monotone() {
    check("vt_ordering_is_total_and_monotone", |s| {
        let mut ts = s.vec_with(1..64, |s| s.f64_in(0.0, 1e12));
        let mut vts: Vec<Vt> = ts.iter().map(|&t| Vt::new(t)).collect();
        vts.sort();
        ts.sort_by(f64::total_cmp);
        for (vt, t) in vts.iter().zip(&ts) {
            prop_assert_eq!(vt.as_f64(), *t);
        }
        Ok(())
    });
}

// ---- pending queue ----------------------------------------------------------

#[test]
fn pending_queue_pops_in_nondecreasing_time_order() {
    check("pending_queue_pops_in_nondecreasing_time_order", |s| {
        let items = s.vec_with(0..128, |s| (s.f64_in(0.0, 1e6), s.any_u32()));
        let mut q = messengers::gvt::PendingQueue::new();
        for (t, payload) in &items {
            q.push(Vt::new(*t), *payload);
        }
        let mut last = Vt::ZERO;
        let mut count = 0;
        while let Some((wake, _)) = q.pop_min() {
            prop_assert!(wake >= last);
            last = wake;
            count += 1;
        }
        prop_assert_eq!(count, items.len());
        Ok(())
    });
}

#[test]
fn pending_queue_pop_runnable_respects_bound() {
    check("pending_queue_pop_runnable_respects_bound", |s| {
        let items = s.vec_with(1..64, |s| s.f64_in(0.0, 100.0));
        let gvt = s.f64_in(0.0, 100.0);
        let mut q = messengers::gvt::PendingQueue::new();
        for (i, t) in items.iter().enumerate() {
            q.push(Vt::new(*t), i);
        }
        let bound = Vt::new(gvt);
        while let Some((wake, _)) = q.pop_runnable(bound) {
            prop_assert!(wake <= bound);
        }
        // Whatever remains is strictly later than the bound.
        prop_assert!(q.min_wake().is_none_or(|w| w > bound));
        Ok(())
    });
}

// ---- PVM buffers -------------------------------------------------------------

#[test]
fn pvm_buf_round_trips() {
    check("pvm_buf_round_trips", |s| {
        let ints = s.vec_with(0..16, |s| s.any_i64());
        let floats = s.vec_with(0..16, |s| s.any_finite_f64());
        let text = s.string(0..33, "abcdefghijklmnopqrstuvwxyz ");
        let raw = s.vec_with(0..64, |s| s.any_u8());
        let mut b = messengers::pvm::Buf::new();
        b.pack_ints(&ints).pack_floats(&floats).pack_str(&text).pack_bytes(&raw);
        prop_assert_eq!(b.unpack_ints().unwrap(), ints);
        prop_assert_eq!(b.unpack_floats().unwrap(), floats);
        prop_assert_eq!(b.unpack_str().unwrap(), text);
        prop_assert_eq!(b.unpack_bytes().unwrap(), raw);
        prop_assert!(b.unpack_ints().is_err());
        Ok(())
    });
}
