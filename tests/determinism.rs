//! Bit-level determinism of the simulated applications: the same
//! `ClusterConfig` (including its `seed`) must produce byte-identical
//! results and identical simulated-time statistics on every run. This is
//! what makes the paper's figures reproducible and the msgr-check seeds
//! meaningful.

use std::sync::Arc;

use messengers::apps::calib::Calib;
use messengers::apps::mandel::{MandelScene, MandelWork};
use messengers::apps::matmul::{test_matrix, MatmulScene};
use messengers::apps::{mandel_msgr, matmul_msgr};
use messengers::core::ClusterConfig;
use msgr_sim::{CrashEvent, FaultPlan, Stats, MILLI};

fn counters(stats: &Stats) -> Vec<(&'static str, u64)> {
    stats.counters().collect()
}

#[test]
fn mandel_runs_are_bit_identical() {
    let calib = Calib::default();
    let work = Arc::new(MandelWork::compute(MandelScene::paper(128, 8)));
    let run = || {
        let mut cfg = ClusterConfig::new(8);
        cfg.seed = 42;
        mandel_msgr::run_sim(&work, 8, &calib, cfg).expect("run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.checksum, b.checksum, "image checksum must be identical");
    assert_eq!(a.seconds.to_bits(), b.seconds.to_bits(), "simulated time must be identical");
    assert_eq!(counters(&a.stats), counters(&b.stats), "all counters must be identical");
}

#[test]
fn mandel_seed_is_part_of_the_configuration() {
    // Different seeds may legally produce identical timings, but the
    // results must still verify: same image either way.
    let calib = Calib::default();
    let work = Arc::new(MandelWork::compute(MandelScene::paper(64, 4)));
    let run = |seed: u64| {
        let mut cfg = ClusterConfig::new(4);
        cfg.seed = seed;
        mandel_msgr::run_sim(&work, 4, &calib, cfg).expect("run")
    };
    assert_eq!(run(1).checksum, run(2).checksum, "checksum is seed-independent");
}

#[test]
fn faulty_mandel_runs_are_bit_identical() {
    // Fault injection must not cost determinism: the same config and
    // fault plan (drops, duplicates, reordering, a crash/restart cycle)
    // reproduce the same checksum, the same counters, and the same
    // simulated time to the last f64 bit. And because delivery is
    // exactly-once, the checksum must equal the fault-free run's.
    let calib = Calib::default();
    let work = Arc::new(MandelWork::compute(MandelScene::paper(128, 8)));
    let run = |faults: FaultPlan| {
        let mut cfg = ClusterConfig::new(8);
        cfg.seed = 42;
        cfg.faults = faults;
        mandel_msgr::run_sim(&work, 8, &calib, cfg).expect("run")
    };
    let plan = FaultPlan {
        drop_p: 0.08,
        dup_p: 0.05,
        reorder_p: 0.05,
        reorder_delay: 2 * MILLI,
        crashes: vec![CrashEvent::transient(3, 20 * MILLI, 25 * MILLI)],
    };
    let a = run(plan.clone());
    let b = run(plan);
    assert_eq!(a.checksum, b.checksum, "faulty runs must agree with each other");
    assert_eq!(a.seconds.to_bits(), b.seconds.to_bits(), "simulated time must be identical");
    assert_eq!(counters(&a.stats), counters(&b.stats), "all counters must be identical");
    assert!(a.stats.counter("net_frames_lost") > 0, "the plan must actually inject faults");
    let clean = run(FaultPlan::none());
    assert_eq!(a.checksum, clean.checksum, "loss must never corrupt the image");
}

#[test]
fn matmul_runs_are_bit_identical() {
    let calib = Calib::default();
    let scene = MatmulScene::new(2, 16);
    let a = test_matrix(scene.n(), 1);
    let b = test_matrix(scene.n(), 2);
    let run = || {
        let mut cfg = ClusterConfig::new(4);
        cfg.seed = 7;
        matmul_msgr::run_sim(scene, &a, &b, &calib, cfg).expect("run")
    };
    let r1 = run();
    let r2 = run();
    let bits =
        |m: &messengers::vm::Matrix| m.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<u64>>();
    assert_eq!(bits(&r1.product), bits(&r2.product), "product must be byte-identical");
    assert_eq!(r1.seconds.to_bits(), r2.seconds.to_bits(), "simulated time must be identical");
    assert_eq!(counters(&r1.stats), counters(&r2.stats), "all counters must be identical");
}
