//! Bit-level determinism of the simulated applications: the same
//! `ClusterConfig` (including its `seed`) must produce byte-identical
//! results and identical simulated-time statistics on every run. This is
//! what makes the paper's figures reproducible and the msgr-check seeds
//! meaningful.

use std::sync::Arc;

use messengers::apps::calib::Calib;
use messengers::apps::mandel::{MandelScene, MandelWork};
use messengers::apps::matmul::{test_matrix, MatmulScene};
use messengers::apps::{mandel_msgr, matmul_msgr};
use messengers::core::{ClusterConfig, ExecMode};
use msgr_sim::{CrashEvent, FaultPlan, Stats, MILLI};

fn counters(stats: &Stats) -> Vec<(&'static str, u64)> {
    stats.counters().collect()
}

#[test]
fn mandel_runs_are_bit_identical() {
    let calib = Calib::default();
    let work = Arc::new(MandelWork::compute(MandelScene::paper(128, 8)));
    let run = || {
        let mut cfg = ClusterConfig::new(8);
        cfg.seed = 42;
        mandel_msgr::run_sim(&work, 8, &calib, cfg).expect("run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.checksum, b.checksum, "image checksum must be identical");
    assert_eq!(a.seconds.to_bits(), b.seconds.to_bits(), "simulated time must be identical");
    assert_eq!(counters(&a.stats), counters(&b.stats), "all counters must be identical");
}

#[test]
fn mandel_seed_is_part_of_the_configuration() {
    // Different seeds may legally produce identical timings, but the
    // results must still verify: same image either way.
    let calib = Calib::default();
    let work = Arc::new(MandelWork::compute(MandelScene::paper(64, 4)));
    let run = |seed: u64| {
        let mut cfg = ClusterConfig::new(4);
        cfg.seed = seed;
        mandel_msgr::run_sim(&work, 4, &calib, cfg).expect("run")
    };
    assert_eq!(run(1).checksum, run(2).checksum, "checksum is seed-independent");
}

#[test]
fn faulty_mandel_runs_are_bit_identical() {
    // Fault injection must not cost determinism: the same config and
    // fault plan (drops, duplicates, reordering, a crash/restart cycle)
    // reproduce the same checksum, the same counters, and the same
    // simulated time to the last f64 bit. And because delivery is
    // exactly-once, the checksum must equal the fault-free run's.
    let calib = Calib::default();
    let work = Arc::new(MandelWork::compute(MandelScene::paper(128, 8)));
    let run = |faults: FaultPlan| {
        let mut cfg = ClusterConfig::new(8);
        cfg.seed = 42;
        cfg.faults = faults;
        mandel_msgr::run_sim(&work, 8, &calib, cfg).expect("run")
    };
    let plan = FaultPlan {
        drop_p: 0.08,
        dup_p: 0.05,
        reorder_p: 0.05,
        reorder_delay: 2 * MILLI,
        crashes: vec![CrashEvent::transient(3, 20 * MILLI, 25 * MILLI)],
    };
    let a = run(plan.clone());
    let b = run(plan);
    assert_eq!(a.checksum, b.checksum, "faulty runs must agree with each other");
    assert_eq!(a.seconds.to_bits(), b.seconds.to_bits(), "simulated time must be identical");
    assert_eq!(counters(&a.stats), counters(&b.stats), "all counters must be identical");
    assert!(a.stats.counter("net_frames_lost") > 0, "the plan must actually inject faults");
    let clean = run(FaultPlan::none());
    assert_eq!(a.checksum, clean.checksum, "loss must never corrupt the image");
}

fn fnv1a(h: &mut u64, bytes: impl IntoIterator<Item = u8>) {
    for b in bytes {
        *h = (*h ^ b as u64).wrapping_mul(0x100000001b3);
    }
}

/// FNV-1a over every (key, value) counter pair, in `Stats` order.
fn counters_fnv(stats: &Stats) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for (k, v) in stats.counters() {
        fnv1a(&mut h, k.bytes());
        fnv1a(&mut h, v.to_le_bytes());
    }
    h
}

#[test]
fn mandel_matches_pre_lanes_golden() {
    // Pinned from the commit immediately before the execution-lanes /
    // frame-batching PR: with the default config (lanes=1, batching
    // off, local moves off) the sharded scheduler must reproduce the
    // pre-PR run bit for bit — image checksum, f64 simulated time, and
    // every counter. If a scheduler change legitimately alters these,
    // re-capture the goldens in the same PR and say so in its log.
    //
    // Counter-FNV re-captured in the compiled-execution PR: the code
    // registry now reports `compile_*` counters in the merged stats
    // (compilation happens at register time in both exec modes, so the
    // golden is still exec-mode independent). Checksum and simulated
    // seconds are unchanged — compilation charges no simulated time.
    //
    // Counter-FNV re-captured again in the interprocedural-analysis PR
    // for the same reason: the registry now reports `analysis_*`
    // counters (summaries, inlined calls, typed loops, elided
    // snapshots), also charged at register time in both exec modes —
    // `exec_mode_never_changes_sim_traces` still proves the merged
    // counter set is engine-independent. Checksum and simulated
    // seconds are unchanged.
    let calib = Calib::default();
    let work = Arc::new(MandelWork::compute(MandelScene::paper(64, 4)));
    let mut cfg = ClusterConfig::new(4);
    cfg.seed = 42;
    let run = mandel_msgr::run_sim(&work, 4, &calib, cfg).expect("run");
    assert_eq!(run.checksum, 7379371940502171737, "image checksum drifted from baseline");
    assert_eq!(
        run.seconds.to_bits(),
        0x3fb6a77a57dfe5d9,
        "simulated seconds drifted from baseline"
    );
    assert_eq!(counters_fnv(&run.stats), 0xd7c7ec2c7196d384, "counters drifted from baseline");
}

#[test]
fn matmul_matches_pre_lanes_golden() {
    // Companion golden to `mandel_matches_pre_lanes_golden`, pinning the
    // matmul product bits and simulated time under the default config.
    let calib = Calib::default();
    let scene = MatmulScene::new(2, 16);
    let a = test_matrix(scene.n(), 1);
    let b = test_matrix(scene.n(), 2);
    let mut cfg = ClusterConfig::new(4);
    cfg.seed = 7;
    let r = matmul_msgr::run_sim(scene, &a, &b, &calib, cfg).expect("run");
    let mut ph: u64 = 0xcbf29ce484222325;
    for f in r.product.as_slice() {
        fnv1a(&mut ph, f.to_bits().to_le_bytes());
    }
    assert_eq!(ph, 0xcb4ff733ed730fb1, "product bits drifted from baseline");
    assert_eq!(r.seconds.to_bits(), 0x3faeb851eb851eb8, "simulated seconds drifted from baseline");
}

#[test]
fn lane_count_never_changes_sim_traces() {
    // Lane assignment is a pure function of gid + seed and the sim
    // scheduler dispatches lanes in global arrival order, so the merged
    // flight-recorder trace must be byte-identical JSONL at lanes=1 and
    // lanes=4 — sharding is a threads-platform throughput structure,
    // never an observable behavior change.
    let calib = Calib::default();
    let work = Arc::new(MandelWork::compute(MandelScene::paper(64, 4)));
    let run = |lanes: usize| {
        let mut cfg = ClusterConfig::new(4);
        cfg.seed = 42;
        cfg.lanes = lanes;
        cfg.trace = messengers::core::TraceConfig::on();
        mandel_msgr::run_sim(&work, 4, &calib, cfg).expect("run")
    };
    let base = run(1);
    let sharded = run(4);
    assert_eq!(base.checksum, sharded.checksum, "image must be lane-count independent");
    assert_eq!(
        base.seconds.to_bits(),
        sharded.seconds.to_bits(),
        "simulated time must be lane-count independent"
    );
    assert_eq!(
        counters(&base.stats),
        counters(&sharded.stats),
        "counters must be lane-count independent"
    );
    let a = base.trace.as_ref().expect("trace enabled").to_jsonl();
    let b = sharded.trace.as_ref().expect("trace enabled").to_jsonl();
    assert!(a == b, "merged trace JSONL differs between lanes=1 and lanes=4");
}

#[test]
fn mandel_golden_holds_under_compiled_execution() {
    // The closure-compiled engine is an execution strategy, never an
    // observable behavior change: with `exec = Compiled` the mandel run
    // must reproduce the *same* pinned golden as the interpreter —
    // image checksum, f64 simulated time, and the counter FNV (the
    // `compile_*` counters are charged at register time in both modes,
    // so even those agree).
    let calib = Calib::default();
    let work = Arc::new(MandelWork::compute(MandelScene::paper(64, 4)));
    let mut cfg = ClusterConfig::new(4);
    cfg.seed = 42;
    cfg.exec = ExecMode::Compiled;
    let run = mandel_msgr::run_sim(&work, 4, &calib, cfg).expect("run");
    assert_eq!(run.checksum, 7379371940502171737, "compiled image checksum diverged from interp");
    assert_eq!(
        run.seconds.to_bits(),
        0x3fb6a77a57dfe5d9,
        "compiled simulated seconds diverged from interp"
    );
    assert_eq!(counters_fnv(&run.stats), 0xd7c7ec2c7196d384, "compiled counters diverged");
    assert!(run.stats.counter("compile_programs") > 0, "registry must have compiled the program");
}

#[test]
fn matmul_golden_holds_under_compiled_execution() {
    // Companion to `mandel_golden_holds_under_compiled_execution`: the
    // matmul product bits and simulated time pinned by
    // `matmul_matches_pre_lanes_golden` must be engine-independent.
    let calib = Calib::default();
    let scene = MatmulScene::new(2, 16);
    let a = test_matrix(scene.n(), 1);
    let b = test_matrix(scene.n(), 2);
    let mut cfg = ClusterConfig::new(4);
    cfg.seed = 7;
    cfg.exec = ExecMode::Compiled;
    let r = matmul_msgr::run_sim(scene, &a, &b, &calib, cfg).expect("run");
    let mut ph: u64 = 0xcbf29ce484222325;
    for f in r.product.as_slice() {
        fnv1a(&mut ph, f.to_bits().to_le_bytes());
    }
    assert_eq!(ph, 0xcb4ff733ed730fb1, "compiled product bits diverged from interp");
    assert_eq!(
        r.seconds.to_bits(),
        0x3faeb851eb851eb8,
        "compiled simulated seconds diverged from interp"
    );
}

#[test]
fn exec_mode_never_changes_sim_traces() {
    // Strongest cross-engine check: with tracing on, the merged
    // flight-recorder JSONL of a same-seed run must be byte-identical
    // at `--exec interp` and `--exec compiled`. Every hop, park,
    // segment boundary, and vtime in the causal record — and even the
    // register-time compile events — must agree, or the compiled
    // engine has observably changed the program.
    let calib = Calib::default();
    let work = Arc::new(MandelWork::compute(MandelScene::paper(64, 4)));
    let run = |exec: ExecMode| {
        let mut cfg = ClusterConfig::new(4);
        cfg.seed = 42;
        cfg.exec = exec;
        cfg.trace = messengers::core::TraceConfig::on();
        mandel_msgr::run_sim(&work, 4, &calib, cfg).expect("run")
    };
    let interp = run(ExecMode::Interp);
    let compiled = run(ExecMode::Compiled);
    assert_eq!(interp.checksum, compiled.checksum, "image must be engine-independent");
    assert_eq!(
        interp.seconds.to_bits(),
        compiled.seconds.to_bits(),
        "simulated time must be engine-independent"
    );
    assert_eq!(
        counters(&interp.stats),
        counters(&compiled.stats),
        "counters must be engine-independent"
    );
    let a = interp.trace.as_ref().expect("trace enabled").to_jsonl();
    let b = compiled.trace.as_ref().expect("trace enabled").to_jsonl();
    assert!(a == b, "merged trace JSONL differs between interp and compiled execution");
}

#[test]
fn matmul_runs_are_bit_identical() {
    let calib = Calib::default();
    let scene = MatmulScene::new(2, 16);
    let a = test_matrix(scene.n(), 1);
    let b = test_matrix(scene.n(), 2);
    let run = || {
        let mut cfg = ClusterConfig::new(4);
        cfg.seed = 7;
        matmul_msgr::run_sim(scene, &a, &b, &calib, cfg).expect("run")
    };
    let r1 = run();
    let r2 = run();
    let bits =
        |m: &messengers::vm::Matrix| m.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<u64>>();
    assert_eq!(bits(&r1.product), bits(&r2.product), "product must be byte-identical");
    assert_eq!(r1.seconds.to_bits(), r2.seconds.to_bits(), "simulated time must be identical");
    assert_eq!(counters(&r1.stats), counters(&r2.stats), "all counters must be identical");
}
