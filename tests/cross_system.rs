//! Cross-implementation equivalence: every system computes the same
//! artifact. This is what makes the benchmark numbers comparable.

use std::sync::Arc;

use messengers::apps::calib::Calib;
use messengers::apps::mandel::{render_sequential, MandelScene, MandelWork};
use messengers::apps::matmul::{max_abs_diff, multiply_reference, test_matrix};
use messengers::apps::{mandel_msgr, mandel_pvm, matmul_msgr, matmul_pvm, MatmulScene};
use messengers::core::config::{NetKind, VtMode};
use messengers::core::ClusterConfig;
use messengers::pvm::PvmNet;

#[test]
fn mandel_all_four_implementations_agree() {
    let work = Arc::new(MandelWork::compute(MandelScene::paper(96, 4)));
    let calib = Calib::default();
    let (_, seq) = render_sequential(&work, &calib);

    let msgr_sim = mandel_msgr::run_sim(&work, 4, &calib, ClusterConfig::new(4)).unwrap();
    assert_eq!(msgr_sim.checksum, seq, "messengers/sim");

    let pvm_sim = mandel_pvm::run_sim(&work, 4, &calib, PvmNet::Ethernet100).unwrap();
    assert_eq!(pvm_sim.checksum, seq, "pvm/sim");

    let msgr_threads = mandel_msgr::run_threads(work.scene, 4).unwrap();
    assert_eq!(msgr_threads.checksum, seq, "messengers/threads");
}

#[test]
fn mandel_proc_count_never_changes_the_image() {
    let work = Arc::new(MandelWork::compute(MandelScene::paper(64, 8)));
    let calib = Calib::default();
    let (_, seq) = render_sequential(&work, &calib);
    for procs in [1usize, 2, 3, 7, 16] {
        let m = mandel_msgr::run_sim(&work, procs, &calib, ClusterConfig::new(procs)).unwrap();
        assert_eq!(m.checksum, seq, "messengers at {procs}");
        let v = mandel_pvm::run_sim(&work, procs, &calib, PvmNet::Ethernet100).unwrap();
        assert_eq!(v.checksum, seq, "pvm at {procs}");
    }
}

#[test]
fn matmul_three_ways_match_reference() {
    let scene = MatmulScene::new(3, 8);
    let a = test_matrix(scene.n(), 21);
    let b = test_matrix(scene.n(), 22);
    let reference = multiply_reference(&a, &b);
    let calib = Calib::default();

    let msgr = matmul_msgr::run_sim(scene, &a, &b, &calib, ClusterConfig::new(9)).unwrap();
    assert!(max_abs_diff(&msgr.product, &reference) < 1e-9, "messengers");

    let pvm = matmul_pvm::run_sim(scene, &a, &b, &calib, 9, PvmNet::Ethernet100, 1.0).unwrap();
    assert!(max_abs_diff(&pvm.product, &reference) < 1e-9, "pvm");

    // Optimistic Time Warp agrees bit-for-bit with conservative.
    let mut cfg = ClusterConfig::new(9);
    cfg.vt_mode = VtMode::Optimistic;
    let opt = matmul_msgr::run_sim(scene, &a, &b, &calib, cfg).unwrap();
    assert!(max_abs_diff(&opt.product, &msgr.product) < 1e-15, "time warp");
}

#[test]
fn network_model_changes_time_but_not_results() {
    let work = Arc::new(MandelWork::compute(MandelScene::paper(64, 4)));
    let calib = Calib::default();
    let (_, seq) = render_sequential(&work, &calib);
    for net in [NetKind::Ideal, NetKind::Ethernet100, NetKind::Ethernet10] {
        let mut cfg = ClusterConfig::new(4);
        cfg.net = net;
        let run = mandel_msgr::run_sim(&work, 4, &calib, cfg).unwrap();
        assert_eq!(run.checksum, seq, "{net:?}");
    }
    // On a strictly serial workload (a messenger walking a ring), slower
    // media must cost strictly more simulated time. (The dynamic
    // manager/worker workload above is legitimately non-monotone: network
    // speed changes task-assignment order and thus load balance.)
    let walk = messengers::lang::compile(
        r#"walk(n) {
            int i;
            for (i = 0; i < n; i = i + 1) hop(ll = "ring"; ldir = +);
        }"#,
    )
    .unwrap();
    let mut times = Vec::new();
    for net in [NetKind::Ideal, NetKind::Ethernet100, NetKind::Ethernet10] {
        use messengers::core::topology::LogicalTopology;
        use messengers::core::{DaemonId, SimCluster};
        use messengers::vm::{Dir, Value};
        let mut cfg = ClusterConfig::new(4);
        cfg.net = net;
        let mut cluster = SimCluster::new(cfg);
        let mut topo = LogicalTopology::new();
        for i in 0..4 {
            topo.node(Value::str(format!("r{i}")), DaemonId(i as u16));
        }
        for i in 0..4 {
            topo.link(
                Value::str(format!("r{i}")),
                Value::str(format!("r{}", (i + 1) % 4)),
                Value::str("ring"),
                Dir::Forward,
            );
        }
        cluster.build(&topo).unwrap();
        let pid = cluster.register_program(&walk);
        cluster.inject_at(&Value::str("r0"), pid, &[Value::Int(40)]).unwrap();
        times.push(cluster.run().unwrap().sim_seconds);
    }
    assert!(times[0] < times[1] && times[1] < times[2], "{times:?}");
}

#[test]
fn sim_runs_are_deterministic() {
    let scene = MatmulScene::new(2, 8);
    let a = test_matrix(scene.n(), 3);
    let b = test_matrix(scene.n(), 4);
    let calib = Calib::default();
    let r1 = matmul_msgr::run_sim(scene, &a, &b, &calib, ClusterConfig::new(4)).unwrap();
    let r2 = matmul_msgr::run_sim(scene, &a, &b, &calib, ClusterConfig::new(4)).unwrap();
    assert_eq!(r1.seconds, r2.seconds, "simulated time must be bit-identical");
    assert_eq!(r1.product, r2.product);

    let work = Arc::new(MandelWork::compute(MandelScene::paper(64, 4)));
    let m1 = mandel_pvm::run_sim(&work, 3, &calib, PvmNet::Ethernet100).unwrap();
    let m2 = mandel_pvm::run_sim(&work, 3, &calib, PvmNet::Ethernet100).unwrap();
    assert_eq!(m1.seconds, m2.seconds);
}

#[test]
fn carry_code_changes_cost_not_result() {
    let work = Arc::new(MandelWork::compute(MandelScene::paper(64, 4)));
    let calib = Calib::default();
    let (_, seq) = render_sequential(&work, &calib);
    let mut cfg = ClusterConfig::new(4);
    cfg.carry_code = true;
    let run = mandel_msgr::run_sim(&work, 4, &calib, cfg).unwrap();
    assert_eq!(run.checksum, seq);
}
