//! # messengers — "Messages versus Messengers in Distributed Programming"
//!
//! A from-scratch Rust reproduction of the MESSENGERS system (Fukuda,
//! Bic, Dillencourt, Cahill; ICDCS 1997): distributed programming with
//! *self-migrating computations* instead of message passing.
//!
//! A Messenger is an autonomous object that navigates an
//! application-defined **logical network**, carrying its program
//! (bytecode) and private state, computing at the nodes it visits, and
//! coordinating with other messengers through shared **node variables**
//! and system-provided **global virtual time**. Instead of
//! `send`/`receive`, programs are written with *navigational* statements:
//!
//! ```text
//! manager_worker() {
//!     block task, res;
//!     create(ALL);                 // clone a worker onto every daemon
//!     hop(ll = $last);             // come back to the central node
//!     while ((task = next_task()) != NULL) {
//!         hop(ll = $last);         // carry the task to my work area
//!         res = compute(task);
//!         hop(ll = $last);         // carry the result back
//!         deposit(res);
//!     }
//! }
//! ```
//!
//! That is the paper's Fig. 3 — a complete parallel manager/worker
//! program with no manager process and no explicit synchronization.
//!
//! ## Crates
//!
//! | Crate | Role |
//! |---|---|
//! | [`lang`] | MSGR-C: the C-subset scripting language with `hop`/`create`/`delete` |
//! | [`analyze`] | Bytecode verifier + navigation lints; the mobile-code trust layer |
//! | [`vm`] | Bytecode VM; messenger state is plain serializable data |
//! | [`core`] | Daemons, logical networks, navigation, injection; simulated + threaded platforms |
//! | [`gvt`] | Global virtual time: conservative protocol + Time-Warp rollback |
//! | [`pvm`] | The PVM 3.3-like message-passing baseline |
//! | [`sim`] | Deterministic discrete-event cluster simulator (hosts, Ethernet) |
//! | [`trace`] | Flight recorder, typed metrics, JSONL + Chrome trace exporters |
//! | [`apps`] | The paper's applications: Mandelbrot, block matrix multiplication |
//!
//! ## Quick start
//!
//! ```
//! use messengers::core::{ClusterConfig, SimCluster};
//! use messengers::vm::Value;
//!
//! // A messenger that walks to every daemon and tallies itself.
//! let program = messengers::lang::compile(
//!     r#"
//!     census() {
//!         node int workers;
//!         create(ALL);
//!         workers = workers + 1;
//!     }
//!     "#,
//! )?;
//!
//! let mut cluster = SimCluster::new(ClusterConfig::new(8));
//! let pid = cluster.register_program(&program);
//! cluster.inject(0, pid, &[])?;
//! cluster.run()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable programs (including real multi-threaded
//! execution) and `crates/bench` for the reproduction of every figure in
//! the paper's evaluation.

#![warn(missing_docs)]

pub use msgr_analyze as analyze;
pub use msgr_apps as apps;
pub use msgr_core as core;
pub use msgr_gvt as gvt;
pub use msgr_lang as lang;
pub use msgr_prof as prof;
pub use msgr_pvm as pvm;
pub use msgr_sim as sim;
pub use msgr_trace as trace;
pub use msgr_vm as vm;
