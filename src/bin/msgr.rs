//! `msgr` — the MESSENGERS command shell.
//!
//! The paper's users inject messengers "from the shell" into any
//! daemon's `init` node (§2.1). This binary is that shell, batch-style:
//! compile an MSGR-C script, optionally build a logical network from a
//! topology file, inject messengers, run the cluster, and print node
//! variables.
//!
//! ```text
//! msgr check  script.mc                      # compile only
//! msgr dis    script.mc                      # disassemble bytecode
//! msgr run    script.mc [options]
//!     --daemons N          cluster size (default 4)
//!     --threads            real threaded runtime (default: simulator)
//!     --topology FILE      net_builder topology file (node/link lines)
//!     --entry NAME         entry function (default: first in file)
//!     --inject WHERE[:a,b] injection point: daemon number or node name,
//!                          with optional int/float/string arguments
//!                          (repeatable; default: one messenger at daemon 0)
//!     --show NODE.VAR      print a node variable after the run (repeatable)
//!     --seed N             RNG seed (default 0x5EED); same seed + same
//!                          flags ⇒ bit-identical run and trace
//!     --trace FILE         record the flight-recorder trace as JSONL
//!     --exec MODE          execution engine: `interp` (default) or
//!                          `compiled` (closure-compiled superinstruction
//!                          dispatch; identical results, faster wall clock)
//!     --faults SPEC        inject faults (simulator only); SPEC is a
//!                          comma list of drop=P, dup=P, reorder=P,
//!                          kill=HOST@MS (permanent death + failover) and
//!                          crash=HOST@MS+MS (transient, down for +MS)
//!     --replication K      checkpoint replication factor: each version is
//!                          write-ahead copied to K next-alive holders
//!                          (default 1; simulator only)
//!     --succession MODE    who buries a dead daemon: `quorum` (majority
//!                          decree, the default) or `deterministic`
//!                          (next-alive rule, the ablation baseline)
//!     --profile            cost-attribution profiling: per-messenger
//!                          phase ledgers + VM pc samples ride the trace
//!                          stream (implies tracing; also MSGR_PROFILE=1)
//! msgr trace  record  script.mc --out FILE [run options]
//! msgr trace  summary FILE                   # validate + summarize
//!                                            # (exit 1 if rings truncated)
//! msgr trace  chrome  IN OUT                 # convert to Chrome trace_event
//! msgr trace  diff    A B                    # compare two trace files
//! msgr profile FILE [--folded OUT]           # cost attribution over a trace
//!                                            # recorded with `run --profile`
//! msgr metrics --list                        # the typed metric registry
//! ```
//!
//! Examples:
//!
//! ```text
//! msgr run examples/scripts/census.mc --daemons 8 --show init.workers
//! msgr run examples/scripts/census.mc --daemons 4 --faults drop=0.01,kill=2@50
//! msgr trace record examples/scripts/walker.mc --out walk.jsonl --daemons 4
//! msgr trace chrome walk.jsonl walk.trace.json   # open in Perfetto
//! ```
//!
//! Exit status: 0 on success, 1 when the script has findings (compile or
//! verification errors), the run fails, a trace fails validation, or
//! `trace diff` finds differences; 2 on internal errors (unreadable
//! files, bad usage).

use std::process::ExitCode;

use messengers::core::topology::LogicalTopology;
use messengers::core::{
    ClusterConfig, ExecMode, SimCluster, Succession, ThreadCluster, Trace, TraceConfig,
};
use messengers::sim::{CrashEvent, FaultPlan, MILLI};
use messengers::vm::Value;

/// A finding: the user's script or run is at fault (exit 1).
fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("msgr: {msg}");
    ExitCode::FAILURE
}

/// An internal/usage error: nothing wrong with the script (exit 2).
fn fail_internal(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("msgr: {msg}");
    ExitCode::from(2)
}

/// Parse a `--faults` spec: `drop=P,dup=P,reorder=P,kill=H@MS,crash=H@MS+MS`.
fn parse_faults(spec: &str) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::none();
    for part in spec.split(',').filter(|s| !s.is_empty()) {
        let (key, val) =
            part.split_once('=').ok_or_else(|| format!("`{part}` is not key=value"))?;
        let prob = |v: &str| -> Result<f64, String> {
            let p: f64 = v.parse().map_err(|_| format!("bad probability `{v}`"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability `{v}` outside [0,1]"));
            }
            Ok(p)
        };
        let host_at = |v: &str| -> Result<(u32, u64), String> {
            let (h, at) = v.split_once('@').ok_or_else(|| format!("`{v}` wants HOST@MS"))?;
            Ok((
                h.parse().map_err(|_| format!("bad host `{h}`"))?,
                at.parse().map_err(|_| format!("bad time `{at}`"))?,
            ))
        };
        match key {
            "drop" => plan.drop_p = prob(val)?,
            "dup" => plan.dup_p = prob(val)?,
            "reorder" => {
                plan.reorder_p = prob(val)?;
                if plan.reorder_delay == 0 {
                    plan.reorder_delay = MILLI;
                }
            }
            "kill" => {
                let (h, at) = host_at(val)?;
                plan.crashes.push(CrashEvent::kill(h, at * MILLI));
            }
            "crash" => {
                let (h, rest) = val
                    .split_once('@')
                    .map(|(h, r)| (h.to_string(), r))
                    .ok_or_else(|| format!("`{val}` wants HOST@MS+MS"))?;
                let (at, down) =
                    rest.split_once('+').ok_or_else(|| format!("`{val}` wants HOST@MS+MS"))?;
                plan.crashes.push(CrashEvent::transient(
                    h.parse().map_err(|_| format!("bad host `{h}`"))?,
                    at.parse::<u64>().map_err(|_| format!("bad time `{at}`"))? * MILLI,
                    down.parse::<u64>().map_err(|_| format!("bad duration `{down}`"))? * MILLI,
                ));
            }
            other => return Err(format!("unknown fault key `{other}`")),
        }
    }
    Ok(plan)
}

fn parse_arg_value(raw: &str) -> Value {
    if let Ok(i) = raw.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = raw.parse::<f64>() {
        if !f.is_nan() {
            return Value::Float(f);
        }
    }
    Value::str(raw)
}

struct Injection {
    where_: String,
    args: Vec<Value>,
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match argv.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return fail_internal("usage: msgr <check|dis|run|trace> <script.mc> [options]"),
    };
    if cmd == "trace" {
        return trace_cmd(rest);
    }
    if cmd == "profile" {
        return profile_cmd(rest);
    }
    if cmd == "metrics" {
        return metrics_cmd(rest);
    }
    let (path, opts) = match rest.split_first() {
        Some((p, o)) => (p.as_str(), o),
        None => return fail_internal("missing script path"),
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => return fail_internal(format!("cannot read `{path}`: {e}")),
    };

    match cmd {
        "check" => match messengers::lang::compile(&source) {
            Ok(p) => {
                // Run the same static analysis the daemon registry
                // applies at load time, so `check` means "will load".
                let report = messengers::analyze::analyze(&p);
                for d in &report.diags {
                    println!("{}", d.render(&p));
                }
                if !report.is_verified() {
                    return fail("program failed verification");
                }
                println!(
                    "ok: {} function(s), {} bytecode ops, program {}",
                    p.funcs.len(),
                    p.instruction_count(),
                    p.id()
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        "dis" => match messengers::lang::compile(&source) {
            Ok(p) => {
                print!("{}", messengers::lang::dis::disassemble(&p));
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        "run" => run(&source, opts),
        other => fail_internal(format!("unknown command `{other}`")),
    }
}

/// `msgr profile FILE [--folded OUT]`: cost attribution over a merged
/// trace recorded with `run --profile`.
fn profile_cmd(args: &[String]) -> ExitCode {
    let (path, rest) = match args.split_first() {
        Some((p, r)) => (p.as_str(), r),
        None => return fail_internal("usage: msgr profile FILE [--folded OUT]"),
    };
    let mut folded_out: Option<String> = None;
    let mut it = rest.iter();
    while let Some(o) = it.next() {
        match o.as_str() {
            "--folded" => match it.next() {
                Some(f) => folded_out = Some(f.clone()),
                None => return fail_internal("--folded needs a file"),
            },
            other => return fail_internal(format!("unknown option `{other}`")),
        }
    }
    let t = match load_trace(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let p = messengers::prof::Profile::from_trace(&t);
    if p.is_empty() {
        return fail(format!(
            "`{path}` carries no profiler events; record it with `msgr run --profile --trace`"
        ));
    }
    print!("{}", p.report());
    if let Some(out) = folded_out {
        let folded = p.folded();
        if let Err(e) = std::fs::write(&out, &folded) {
            return fail_internal(format!("cannot write `{out}`: {e}"));
        }
        println!("\nfolded stacks: {} line(s) -> {out}", folded.lines().count());
    }
    ExitCode::SUCCESS
}

/// `msgr metrics --list`: print the typed metric registry.
fn metrics_cmd(args: &[String]) -> ExitCode {
    use messengers::trace::{Metric, MetricKind, Unit};
    if args != ["--list"] {
        return fail_internal("usage: msgr metrics --list");
    }
    for &m in Metric::ALL {
        let kind = match m.kind() {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        };
        let unit = match m.unit() {
            Unit::Count => "count",
            Unit::Bytes => "bytes",
            Unit::Nanos => "ns",
            Unit::Ops => "ops",
        };
        println!("{:<28} {kind:<9} {unit}", m.name());
    }
    ExitCode::SUCCESS
}

/// Load and schema-validate a trace file. `Err(code)` is already the
/// process exit status: 2 for I/O problems, 1 for validation findings.
fn load_trace(path: &str) -> Result<Trace, ExitCode> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| fail_internal(format!("cannot read `{path}`: {e}")))?;
    Trace::from_jsonl(&text).map_err(|e| fail(format!("`{path}` is not a valid trace: {e}")))
}

/// The `msgr trace` subcommands: record, summary, chrome, diff.
fn trace_cmd(args: &[String]) -> ExitCode {
    let usage = "usage: msgr trace <record script.mc --out FILE [run options] \
                 | summary FILE | chrome IN OUT | diff A B>";
    let (sub, rest) = match args.split_first() {
        Some((s, r)) => (s.as_str(), r),
        None => return fail_internal(usage),
    };
    match sub {
        "record" => {
            let (path, opts) = match rest.split_first() {
                Some((p, o)) => (p.as_str(), o),
                None => return fail_internal("trace record: missing script path"),
            };
            // `record` is `run` with a mandatory `--trace`: lift `--out`
            // into the run option and reuse the whole run pipeline.
            let mut out: Option<String> = None;
            let mut run_opts: Vec<String> = Vec::new();
            let mut it = opts.iter();
            while let Some(o) = it.next() {
                if o == "--out" {
                    match it.next() {
                        Some(f) => out = Some(f.clone()),
                        None => return fail_internal("--out needs a file"),
                    }
                } else {
                    run_opts.push(o.clone());
                }
            }
            let Some(out) = out else {
                return fail_internal("trace record: --out FILE is required");
            };
            run_opts.push("--trace".to_string());
            run_opts.push(out);
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => return fail_internal(format!("cannot read `{path}`: {e}")),
            };
            run(&source, &run_opts)
        }
        "summary" => {
            let [path] = rest else {
                return fail_internal("usage: msgr trace summary FILE");
            };
            match load_trace(path) {
                Ok(t) => {
                    print!("{}", t.summary());
                    if t.dropped > 0 {
                        // Truncated rings mean the oldest window of those
                        // daemons' streams is missing: a finding, since
                        // any analysis over this trace is partial.
                        return fail(format!(
                            "{} event(s) lost to flight-recorder ring bounds",
                            t.dropped
                        ));
                    }
                    ExitCode::SUCCESS
                }
                Err(code) => code,
            }
        }
        "chrome" => {
            let [input, output] = rest else {
                return fail_internal("usage: msgr trace chrome IN OUT");
            };
            let t = match load_trace(input) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let doc = messengers::trace::chrome::to_chrome(&t);
            match std::fs::write(output, doc) {
                Ok(()) => {
                    println!("wrote {output} ({} events); open it in Perfetto", t.events.len());
                    ExitCode::SUCCESS
                }
                Err(e) => fail_internal(format!("cannot write `{output}`: {e}")),
            }
        }
        "diff" => {
            let [a_path, b_path] = rest else {
                return fail_internal("usage: msgr trace diff A B");
            };
            let (a, b) = match (load_trace(a_path), load_trace(b_path)) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(code), _) | (_, Err(code)) => return code,
            };
            let diffs = a.diff(&b, 10);
            if diffs.is_empty() {
                println!("traces are identical ({} events)", a.events.len());
                ExitCode::SUCCESS
            } else {
                for d in &diffs {
                    println!("{d}");
                }
                fail(format!("{} difference(s) between `{a_path}` and `{b_path}`", diffs.len()))
            }
        }
        other => fail_internal(format!("unknown trace subcommand `{other}`; {usage}")),
    }
}

/// Print the human-readable recovery section of a kill-bearing run: the
/// restored/replayed counters, then the trace's recovery timeline.
fn print_recovery(stats: &messengers::sim::Stats, trace: Option<&Trace>) {
    println!("recovery:");
    for key in [
        "kills",
        "fd_deaths",
        "evictions",
        "restores",
        "restored_nodes",
        "restored_messengers",
        "xport_redirected",
    ] {
        println!("  {key}: {}", stats.counter(key));
    }
    let lat = stats.counter("recovery_latency_ns");
    if lat > 0 {
        println!("  recovery_latency_ms: {:.3}", lat as f64 / 1e6);
    }
    if let Some(t) = trace {
        let s = t.summary();
        if let Some(pos) = s.find("recovery timeline:") {
            print!("{}", &s[pos..]);
        }
    }
}

fn run(source: &str, opts: &[String]) -> ExitCode {
    let mut daemons = 4usize;
    let mut threads = false;
    let mut topology: Option<LogicalTopology> = None;
    let mut entry: Option<String> = None;
    let mut injections: Vec<Injection> = Vec::new();
    let mut shows: Vec<(String, String)> = Vec::new();
    let mut dump = false;
    let mut faults = FaultPlan::none();
    let mut seed: Option<u64> = None;
    let mut trace_out: Option<String> = None;
    let mut exec: Option<ExecMode> = None;
    let mut replication: Option<usize> = None;
    let mut succession: Option<Succession> = None;
    let mut profile = false;

    let mut it = opts.iter();
    while let Some(opt) = it.next() {
        let mut take = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{opt} needs {what}"))
        };
        let result: Result<(), String> = (|| {
            match opt.as_str() {
                "--daemons" => {
                    daemons =
                        take("a count")?.parse().map_err(|_| "bad daemon count".to_string())?;
                }
                "--threads" => threads = true,
                "--dump" => dump = true,
                "--topology" => {
                    let file = take("a file")?;
                    let text = std::fs::read_to_string(&file)
                        .map_err(|e| format!("cannot read `{file}`: {e}"))?;
                    topology = Some(LogicalTopology::parse(&text)?);
                }
                "--entry" => entry = Some(take("a function name")?),
                "--inject" => {
                    let spec = take("an injection point")?;
                    let (where_, args) = match spec.split_once(':') {
                        Some((w, a)) => (
                            w.to_string(),
                            a.split(',').filter(|s| !s.is_empty()).map(parse_arg_value).collect(),
                        ),
                        None => (spec, Vec::new()),
                    };
                    injections.push(Injection { where_, args });
                }
                "--show" => {
                    let spec = take("NODE.VAR")?;
                    let (node, var) =
                        spec.split_once('.').ok_or_else(|| "--show wants NODE.VAR".to_string())?;
                    shows.push((node.to_string(), var.to_string()));
                }
                "--faults" => faults = parse_faults(&take("a fault spec")?)?,
                "--seed" => {
                    seed = Some(take("a seed")?.parse().map_err(|_| "bad seed".to_string())?);
                }
                "--trace" => trace_out = Some(take("a file")?),
                "--profile" => profile = true,
                "--exec" => {
                    let mode = take("`interp` or `compiled`")?;
                    exec = Some(
                        ExecMode::parse(&mode).ok_or_else(|| format!("bad exec mode `{mode}`"))?,
                    );
                }
                "--replication" => {
                    let k: usize = take("a replication factor")?
                        .parse()
                        .map_err(|_| "bad replication factor".to_string())?;
                    if k == 0 {
                        return Err("--replication wants k >= 1".to_string());
                    }
                    replication = Some(k);
                }
                "--succession" => {
                    let mode = take("`quorum` or `deterministic`")?;
                    succession = Some(
                        Succession::parse(&mode)
                            .ok_or_else(|| format!("bad succession mode `{mode}`"))?,
                    );
                }
                other => return Err(format!("unknown option `{other}`")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            return fail_internal(e);
        }
    }
    if let Err(e) = faults.validate(daemons) {
        return fail_internal(format!("invalid fault plan: {e}"));
    }
    if faults.crashes.iter().any(|c| c.is_kill() && c.host == 0) {
        return fail_internal(
            "daemon 0 hosts the GVT coordinator and cannot be permanently killed",
        );
    }
    if injections.is_empty() {
        injections.push(Injection { where_: "0".to_string(), args: Vec::new() });
    }

    let program = match entry {
        Some(name) => messengers::lang::compile_with_entry(source, &name),
        None => messengers::lang::compile(source),
    };
    let program = match program {
        Ok(p) => p,
        Err(e) => return fail(e),
    };

    macro_rules! drive {
        ($cluster:expr, $run_field:ident, $unit:expr) => {{
            let mut cluster = $cluster;
            if let Some(t) = &topology {
                if let Err(e) = cluster.build(t) {
                    return fail(e);
                }
            }
            let pid = cluster.register_program(&program);
            for inj in &injections {
                let outcome = match inj.where_.parse::<u16>() {
                    Ok(d) => cluster.inject(d, pid, &inj.args),
                    Err(_) => cluster.inject_at(&Value::str(&inj.where_), pid, &inj.args),
                };
                if let Err(e) = outcome {
                    return fail(format!("inject at `{}`: {e}", inj.where_));
                }
            }
            match cluster.run() {
                Ok(report) => {
                    println!("{:.6} {} | counters:", report.$run_field, $unit);
                    for (k, v) in report.stats.counters() {
                        println!("  {k}: {v}");
                    }
                    for (id, err) in &report.faults {
                        eprintln!("fault: messenger {id}: {err}");
                    }
                    for (node, var) in &shows {
                        let name = Value::str(node);
                        let v = cluster
                            .node_var_by_name(&name, var)
                            .or_else(|| cluster.node_var(0, &name, var));
                        println!("{node}.{var} = {}", v.unwrap_or(Value::Null));
                    }
                    if profile {
                        if let Some(t) = &report.trace {
                            print!("{}", messengers::prof::Profile::from_trace(t).report());
                        }
                    }
                    if let (Some(path), Some(t)) = (&trace_out, &report.trace) {
                        if let Err(e) = std::fs::write(path, t.to_jsonl()) {
                            return fail_internal(format!("cannot write `{path}`: {e}"));
                        }
                        println!("trace: {} event(s) -> {path}", t.events.len());
                    }
                    if report.faults.is_empty() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => fail(e),
            }
        }};
    }

    let has_kill = faults.has_kills();
    if threads {
        if dump {
            return fail_internal("--dump is only available on the simulation platform");
        }
        if !faults.is_none() {
            return fail_internal("--faults is only available on the simulation platform");
        }
        if replication.is_some() || succession.is_some() {
            return fail_internal(
                "--replication/--succession are only available on the simulation platform",
            );
        }
        let mut cfg = ClusterConfig::new(daemons);
        if let Some(s) = seed {
            cfg.seed = s;
        }
        if let Some(m) = exec {
            cfg.exec = m;
        }
        if trace_out.is_some() {
            cfg.trace = TraceConfig::on();
        }
        // The platform constructor forces tracing on when profiling: the
        // phase ledgers travel in the trace stream.
        cfg.profile = cfg.profile || profile;
        match ThreadCluster::new(cfg) {
            Ok(c) => drive!(c, wall_seconds, "wall seconds"),
            Err(e) => fail(e),
        }
    } else {
        let mut cfg = ClusterConfig::new(daemons);
        cfg.faults = faults;
        if let Some(s) = seed {
            cfg.seed = s;
        }
        if let Some(m) = exec {
            cfg.exec = m;
        }
        if let Some(k) = replication {
            cfg.replication = k;
        }
        if let Some(s) = succession {
            cfg.succession = s;
        }
        // Kill-bearing runs get tracing for free: the recovery timeline
        // the summary prints below comes out of the flight recorders.
        if trace_out.is_some() || has_kill {
            cfg.trace = TraceConfig::on();
        }
        cfg.profile = cfg.profile || profile;
        let mut cluster = SimCluster::new(cfg);
        if let Some(t) = &topology {
            if let Err(e) = cluster.build(t) {
                return fail(e);
            }
        }
        let pid = cluster.register_program(&program);
        for inj in &injections {
            let outcome = match inj.where_.parse::<u16>() {
                Ok(d) => cluster.inject(d, pid, &inj.args),
                Err(_) => cluster.inject_at(&Value::str(&inj.where_), pid, &inj.args),
            };
            if let Err(e) = outcome {
                return fail(format!("inject at `{}`: {e}", inj.where_));
            }
        }
        match cluster.run() {
            Ok(report) => {
                println!("{:.6} simulated seconds | counters:", report.sim_seconds);
                for (k, v) in report.stats.counters() {
                    println!("  {k}: {v}");
                }
                for (id, err) in &report.faults {
                    eprintln!("fault: messenger {id}: {err}");
                }
                for (node, var) in &shows {
                    let name = Value::str(node);
                    let v = cluster
                        .node_var_by_name(&name, var)
                        .or_else(|| cluster.node_var(0, &name, var));
                    println!("{node}.{var} = {}", v.unwrap_or(Value::Null));
                }
                if has_kill {
                    print_recovery(&report.stats, report.trace.as_ref());
                }
                if profile {
                    if let Some(t) = &report.trace {
                        print!("{}", messengers::prof::Profile::from_trace(t).report());
                    }
                }
                if let (Some(path), Some(t)) = (&trace_out, &report.trace) {
                    if let Err(e) = std::fs::write(path, t.to_jsonl()) {
                        return fail_internal(format!("cannot write `{path}`: {e}"));
                    }
                    println!("trace: {} event(s) -> {path}", t.events.len());
                }
                if dump {
                    print!("{}", cluster.network_dump());
                }
                if report.faults.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => fail(e),
        }
    }
}
