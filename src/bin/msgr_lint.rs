//! `msgr-lint` — static analysis for MSGR-C scripts and compiled
//! Messenger bytecode.
//!
//! Compiles each script, runs the `msgr-analyze` verifier and
//! navigation / lost-update lints, and prints human-readable
//! diagnostics with the same `L<n>` block labels the disassembler
//! uses. Exit status is non-zero when any program fails verification
//! (or, under `--deny-warnings`, when any lint fires).
//!
//! ```text
//! msgr-lint [options] <script.mc>...
//!     --deny-warnings      treat lint warnings as errors
//!     --builtin            also lint the programs embedded in msgr-apps
//!     --quiet              print only diagnostics, not per-file summaries
//!     --json               machine-readable output (one JSON document)
//! ```
//!
//! `--json` prints a single JSON object to stdout:
//!
//! ```text
//! {"version":1,
//!  "errors":0,"warnings":1,
//!  "diagnostics":[
//!    {"target":"app.mc","code":"N301","severity":"warning",
//!     "function":"main","func_index":0,"pc":4,"line":7,
//!     "message":"..."}]}
//! ```
//!
//! `pc` and `line` are `null` when the diagnostic has no instruction
//! anchor (e.g. whole-function lints). Compile failures appear as
//! diagnostics with code `"compile"` and a null function.
//!
//! `scripts/ci.sh` runs `msgr-lint --deny-warnings --builtin` over every
//! `.mc` source in the repository, so shipped navigation code stays
//! warning-clean.
//!
//! Exit status: 0 when clean, 1 when any finding fires (verification
//! errors, compile errors, or — under `--deny-warnings` — lint
//! warnings), 2 on internal errors (unreadable files, bad usage).

use std::process::ExitCode;

use messengers::analyze::{self, Severity};
use messengers::vm::Program;

struct Outcome {
    errors: usize,
    warnings: usize,
}

/// One machine-readable diagnostic row for `--json` output.
struct JsonDiag {
    target: String,
    code: String,
    severity: &'static str,
    function: Option<String>,
    func_index: Option<usize>,
    pc: Option<usize>,
    line: Option<u32>,
    message: String,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl JsonDiag {
    fn render(&self) -> String {
        fn opt_str(v: &Option<String>) -> String {
            v.as_ref().map_or_else(|| "null".into(), |s| format!("\"{}\"", json_escape(s)))
        }
        fn opt_num<T: std::fmt::Display>(v: &Option<T>) -> String {
            v.as_ref().map_or_else(|| "null".into(), T::to_string)
        }
        format!(
            "{{\"target\":\"{}\",\"code\":\"{}\",\"severity\":\"{}\",\
             \"function\":{},\"func_index\":{},\"pc\":{},\"line\":{},\"message\":\"{}\"}}",
            json_escape(&self.target),
            json_escape(&self.code),
            self.severity,
            opt_str(&self.function),
            opt_num(&self.func_index),
            opt_num(&self.pc),
            opt_num(&self.line),
            json_escape(&self.message),
        )
    }
}

fn lint_program(
    what: &str,
    program: &Program,
    quiet: bool,
    json: &mut Option<Vec<JsonDiag>>,
) -> Outcome {
    let report = analyze::analyze(program);
    let mut out = Outcome { errors: 0, warnings: 0 };
    for d in &report.diags {
        match d.severity {
            Severity::Error => out.errors += 1,
            Severity::Warning => out.warnings += 1,
        }
        if let Some(rows) = json.as_mut() {
            rows.push(JsonDiag {
                target: what.to_string(),
                code: d.code.to_string(),
                severity: match d.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                },
                function: Some(d.func_name.clone()),
                func_index: Some(d.func),
                pc: d.pc,
                line: d.line,
                message: d.message.clone(),
            });
        } else {
            println!("{what}: {}", d.render(program));
        }
    }
    if !quiet && json.is_none() {
        let verdict = if out.errors > 0 {
            "REJECTED"
        } else if out.warnings > 0 {
            "ok (with warnings)"
        } else {
            "ok"
        };
        let stack = report.funcs.iter().flatten().map(|i| i.max_stack).max().unwrap_or(0);
        println!(
            "{what}: {verdict} — {} function(s), {} op(s), max stack {stack}",
            program.funcs.len(),
            program.instruction_count(),
        );
    }
    out
}

/// The navigation programs embedded in `msgr-apps` — linted with
/// `--builtin` so the in-tree idiom reference stays clean.
fn builtin_programs() -> Vec<(&'static str, Program)> {
    use messengers::apps::{graph, mandel_msgr, matmul_msgr, swarm};
    use messengers::lang::{compile, compile_with_entry};
    vec![
        (
            "builtin:mandel/manager_worker",
            compile(mandel_msgr::MANAGER_WORKER_SCRIPT).expect("embedded script compiles"),
        ),
        (
            "builtin:matmul/distribute_A",
            compile_with_entry(matmul_msgr::MATMUL_SCRIPTS, "distribute_A")
                .expect("embedded script compiles"),
        ),
        (
            "builtin:matmul/rotate_B",
            compile_with_entry(matmul_msgr::MATMUL_SCRIPTS, "rotate_B")
                .expect("embedded script compiles"),
        ),
        ("builtin:swarm/ant", compile(swarm::ANT_SCRIPT).expect("embedded script compiles")),
        (
            "builtin:graph/bfs_wave",
            compile(graph::BFS_WAVE_SCRIPT).expect("embedded script compiles"),
        ),
    ]
}

fn main() -> ExitCode {
    let mut deny_warnings = false;
    let mut builtin = false;
    let mut quiet = false;
    let mut json: Option<Vec<JsonDiag>> = None;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--builtin" => builtin = true,
            "--quiet" => quiet = true,
            "--json" => json = Some(Vec::new()),
            "--help" | "-h" => {
                println!(
                    "usage: msgr-lint [--deny-warnings] [--builtin] [--quiet] [--json] <script.mc>..."
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("msgr-lint: unknown option `{other}`");
                return ExitCode::from(2);
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() && !builtin {
        eprintln!("msgr-lint: nothing to lint (pass scripts and/or --builtin)");
        return ExitCode::from(2);
    }

    let mut total = Outcome { errors: 0, warnings: 0 };
    for path in &paths {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("msgr-lint: cannot read `{path}`: {e}");
                return ExitCode::from(2);
            }
        };
        let program = match messengers::lang::compile(&source) {
            Ok(p) => p,
            Err(e) => {
                // A compile error is as fatal as a verification error.
                if let Some(rows) = json.as_mut() {
                    rows.push(JsonDiag {
                        target: path.clone(),
                        code: "compile".into(),
                        severity: "error",
                        function: None,
                        func_index: None,
                        pc: None,
                        line: None,
                        message: e.to_string(),
                    });
                } else {
                    println!("{path}: error[compile]: {e}");
                }
                total.errors += 1;
                continue;
            }
        };
        let o = lint_program(path, &program, quiet, &mut json);
        total.errors += o.errors;
        total.warnings += o.warnings;
    }
    if builtin {
        for (what, program) in builtin_programs() {
            let o = lint_program(what, &program, quiet, &mut json);
            total.errors += o.errors;
            total.warnings += o.warnings;
        }
    }

    if let Some(rows) = &json {
        let body: Vec<String> = rows.iter().map(JsonDiag::render).collect();
        println!(
            "{{\"version\":1,\"errors\":{},\"warnings\":{},\"diagnostics\":[{}]}}",
            total.errors,
            total.warnings,
            body.join(",")
        );
    }

    if total.errors > 0 || (deny_warnings && total.warnings > 0) {
        eprintln!(
            "msgr-lint: {} error(s), {} warning(s){}",
            total.errors,
            total.warnings,
            if deny_warnings { " (warnings denied)" } else { "" }
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
