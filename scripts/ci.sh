#!/usr/bin/env bash
# Tier-1 verification, fully offline: the workspace must build, test, and
# stay formatted with no network access and no external registry
# dependencies (see "Hermetic builds" in README.md / DESIGN.md).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo metadata: path-only dependency check =="
# Every dependency must resolve from within this repository. `cargo
# metadata --offline` fails outright if anything needs the registry; the
# grep double-checks that no package outside the workspace sneaked in.
if cargo metadata --offline --format-version 1 \
    | grep -o '"source":"[^"]*"' | grep -qv '"source":""' ; then
    echo "error: non-path dependency found in cargo metadata" >&2
    exit 1
fi
echo "ok: all dependencies are workspace-local"

echo "== cargo build --release --offline =="
cargo build --release --offline --workspace

echo "== cargo test -q --offline =="
cargo test -q --offline --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "tier-1: all green"
