#!/usr/bin/env bash
# Tier-1 verification, fully offline: the workspace must build, test, and
# stay formatted with no network access and no external registry
# dependencies (see "Hermetic builds" in README.md / DESIGN.md).
#
# Flags:
#   --soak   additionally run the long chaos soak test (ignored by
#            default): sustained loss + periodic crash/restart cycles.
set -euo pipefail

cd "$(dirname "$0")/.."

soak=0
for arg in "$@"; do
    case "$arg" in
        --soak) soak=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "== cargo metadata: path-only dependency check =="
# Every dependency must resolve from within this repository. `cargo
# metadata --offline` fails outright if anything needs the registry; the
# grep double-checks that no package outside the workspace sneaked in.
if cargo metadata --offline --format-version 1 \
    | grep -o '"source":"[^"]*"' | grep -qv '"source":""' ; then
    echo "error: non-path dependency found in cargo metadata" >&2
    exit 1
fi
echo "ok: all dependencies are workspace-local"

echo "== cargo build --release --offline =="
cargo build --release --offline --workspace

echo "== cargo test -q --offline =="
cargo test -q --offline --workspace

echo "== lint: msgr-lint over all MSGR-C sources =="
# Static analysis of every navigation program we ship: the .mc example
# scripts plus the programs embedded in msgr-apps. Warnings are denied —
# in-tree code is the idiom reference and must stay clean.
cargo build --release --offline --bin msgr-lint
find examples -name '*.mc' -print0 \
    | xargs -0 ./target/release/msgr-lint --deny-warnings --builtin

echo "== cargo clippy -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== chaos: fault-injection property sweep =="
# Two pinned fault seeds (regression anchors) plus one fresh seed per CI
# run. MSGR_FAULT_SEED perturbs every cluster seed in the chaos suites
# (transient faults and permanent-kill recovery); the fresh value is
# logged so a red run can be replayed exactly.
for seed in 1 424242 "$(date +%s)"; do
    echo "chaos seed: $seed (replay: MSGR_FAULT_SEED=$seed scripts/ci.sh)"
    MSGR_FAULT_SEED="$seed" cargo test -q --offline -p msgr-core --test fault_props
    MSGR_FAULT_SEED="$seed" cargo test -q --offline -p msgr-core --test recovery_props
    MSGR_FAULT_SEED="$seed" cargo test -q --offline -p msgr-core --test batch_props
    MSGR_FAULT_SEED="$seed" cargo test -q --offline -p msgr-core --test ctrl_props
done

echo "== control plane: consensus + gossip properties, quorum ablation (BENCH_0009) =="
# The decentralized control plane end to end: the msgr-ctrl unit and
# property suites (single-decree agreement safety, gossip convergence)
# re-run standalone, then the quorum-vs-deterministic succession
# ablation runs in smoke mode at k ∈ {1,2,3} and its output is
# schema-validated (the committed full-mode BENCH_0009.json is checked
# in the bench-artifact sweep below).
cargo test -q --offline -p msgr-ctrl
cargo build --release --offline -p msgr-bench --bin ablation_recovery
ctrl_dir="$(mktemp -d)"
./target/release/ablation_recovery --quorum --smoke > "$ctrl_dir/BENCH_0009.smoke.json"
./target/release/ablation_recovery --check "$ctrl_dir/BENCH_0009.smoke.json"
rm -rf "$ctrl_dir"
echo "ok: control plane green, quorum smoke schema-valid"

echo "== bench: lanes/batching ablation smoke (BENCH_0006) =="
# Run the lanes ablation in smoke mode (seconds, not minutes) and
# schema-validate its output: every metric the acceptance criteria name
# (messengers/sec, hops/sec, xport p50/p99, the lane/batch counters)
# must be present, parseable, and non-negative — a silently missing
# metric fails CI. The committed BENCH_0006.json is checked in the
# bench-artifact sweep below.
cargo build --release --offline -p msgr-bench --bin ablation_lanes
bench_dir="$(mktemp -d)"
./target/release/ablation_lanes --smoke > "$bench_dir/BENCH_0006.smoke.json"
./target/release/ablation_lanes --check "$bench_dir/BENCH_0006.smoke.json"
rm -rf "$bench_dir"
echo "ok: lanes ablation smoke schema-valid"

echo "== trace: deterministic flight-recorder smoke =="
# Record the same seeded chaos run twice (loss + a mid-run daemon kill),
# validate the JSONL (summary parses it and checks the header/schema),
# and require the two recordings to be byte-identical — the CLI face of
# the `same_seed_runs_serialize_byte_identically` property. `msgr trace`
# exits 1 on findings (invalid trace, differing runs) and 2 on internal
# errors, so any failure here fails CI.
cargo build --release --offline --bin msgr
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
trace_run() {
    ./target/release/msgr run examples/scripts/walker.mc \
        --topology examples/scripts/ring.topo --daemons 4 --inject r0:2 \
        --seed 7 --faults drop=0.05,kill=2@20 --trace "$1" >/dev/null
}
trace_run "$trace_dir/a.jsonl"
trace_run "$trace_dir/b.jsonl"
./target/release/msgr trace summary "$trace_dir/a.jsonl" >/dev/null
./target/release/msgr trace diff "$trace_dir/a.jsonl" "$trace_dir/b.jsonl"
./target/release/msgr trace chrome "$trace_dir/a.jsonl" "$trace_dir/a.chrome.json" >/dev/null
for ev in hop retransmit checkpoint restore; do
    if ! grep -q "\"ev\":\"$ev\"" "$trace_dir/a.jsonl"; then
        echo "error: chaos trace is missing \"$ev\" events" >&2
        exit 1
    fi
done
echo "ok: chaos trace is schema-valid, complete, and reproducible"

echo "== compiled execution: CLI run + ablation smoke (BENCH_0007) =="
# The closure-compiled engine must be observationally identical to the
# interpreter: the 256-case differential suite (crates/vm/tests/
# diff_props.rs) and the cross-engine goldens already ran with the
# workspace tests above. Here the CLI plumbing gets a real run
# (--exec compiled, then the MSGR_EXEC override), the tier-1 app
# tests and goldens re-run once entirely on the compiled engine, and
# the compile-vs-interp ablation runs in smoke mode with its output
# schema-validated (committed BENCH_0007.json: bench-artifact sweep).
MSGR_EXEC=compiled cargo test -q --offline -p msgr-apps
MSGR_EXEC=compiled cargo test -q --offline --test determinism
./target/release/msgr run examples/scripts/walker.mc \
    --topology examples/scripts/ring.topo --daemons 4 --inject r0:2 \
    --seed 7 --exec compiled >/dev/null
MSGR_EXEC=compiled ./target/release/msgr run examples/scripts/walker.mc \
    --topology examples/scripts/ring.topo --daemons 4 --inject r0:2 \
    --seed 7 >/dev/null
cargo build --release --offline -p msgr-bench --bin ablation_compile
compile_dir="$(mktemp -d)"
./target/release/ablation_compile --smoke > "$compile_dir/BENCH_0007.smoke.json"
./target/release/ablation_compile --check "$compile_dir/BENCH_0007.smoke.json"
rm -rf "$compile_dir"
echo "ok: compiled engine ran end to end, smoke schema-valid"

echo "== analysis: interprocedural summaries end to end (BENCH_0008) =="
# The whole-program effect analysis: (a) both paper apps must be clean
# under the interprocedural lint family, checked through the
# machine-readable --json face (which doubles as its schema check);
# (b) summaries must be stable across a wire-codec roundtrip and the
# summary-guided engine bit-equal to the interpreter (the vm property
# suite); (c) the summaries ablation runs in smoke mode with analysis
# enabled and its output schema-validated (committed BENCH_0008.json:
# bench-artifact sweep below).
lint_json="$(./target/release/msgr-lint --json --builtin)"
echo "$lint_json" | grep -q '"version":1' \
    || { echo "error: msgr-lint --json lost its schema header" >&2; exit 1; }
echo "$lint_json" | grep -q '"errors":0,"warnings":0,"diagnostics":\[\]' \
    || { echo "error: builtin paper apps are not lint-clean: $lint_json" >&2; exit 1; }
# A known-dirty program must produce a well-formed diagnostic row with
# every schema field present (code, function, pc, line, severity).
dirty_dir="$(mktemp -d)"
printf 'w() {\n    node int t;\n    t = 1;\n    t = 2;\n    hop(ll = $last);\n}\n' \
    > "$dirty_dir/dirty.mc"
dirty_json="$(./target/release/msgr-lint --json "$dirty_dir/dirty.mc")"
for field in '"code":"N303"' '"severity":"warning"' '"function":"w"' '"pc":' '"line":3'; do
    echo "$dirty_json" | grep -qF "$field" \
        || { echo "error: msgr-lint --json row missing $field: $dirty_json" >&2; exit 1; }
done
rm -rf "$dirty_dir"
cargo test -q --offline -p msgr-vm --test diff_props summaries
analysis_dir="$(mktemp -d)"
./target/release/ablation_compile --summaries --smoke > "$analysis_dir/BENCH_0008.smoke.json"
./target/release/ablation_compile --check "$analysis_dir/BENCH_0008.smoke.json"
rm -rf "$analysis_dir"
echo "ok: apps lint-clean, summaries stable, smoke schema-valid"

echo "== profile: cost attribution end to end (BENCH_0010) =="
# The deterministic profiler (DESIGN.md §13). Four guarantees, checked
# on the CLI surface: (a) a profiled run yields a report, a critical
# path, and non-empty folded stacks; (b) same-seed profiled runs are
# byte-identical — trace, report, and folded file; (c) profiling off is
# the status quo: two unprofiled runs are byte-identical and carry no
# profiler events, and `msgr profile` refuses them with exit 1; (d) a
# truncated flight recorder makes `msgr trace summary` exit 1. The
# profile ablation then runs in smoke mode, whose schema bounds the
# measured profiling overhead at <=5% on interpreter cells.
prof_dir="$(mktemp -d)"
prof_run() { # $1 = out.jsonl, $2... = extra flags
    local out="$1"; shift
    ./target/release/msgr run examples/scripts/hotloop.mc \
        --topology examples/scripts/ring.topo --daemons 4 --inject r0:3,2000 \
        --seed 7 "$@" --trace "$out" >/dev/null
}
prof_run "$prof_dir/on_a.jsonl" --profile
prof_run "$prof_dir/on_b.jsonl" --profile
prof_run "$prof_dir/off_a.jsonl"
prof_run "$prof_dir/off_b.jsonl"
./target/release/msgr trace diff "$prof_dir/on_a.jsonl" "$prof_dir/on_b.jsonl"
./target/release/msgr trace diff "$prof_dir/off_a.jsonl" "$prof_dir/off_b.jsonl"
if grep -q '"ev":"phase_ledger"\|"ev":"pc_sample"' "$prof_dir/off_a.jsonl"; then
    echo "error: profiler events leaked into an unprofiled trace" >&2
    exit 1
fi
# Reports are compared without --folded: the folded trailer echoes the
# output path, which differs between the two invocations by design.
./target/release/msgr profile "$prof_dir/on_a.jsonl" > "$prof_dir/a.report"
./target/release/msgr profile "$prof_dir/on_b.jsonl" > "$prof_dir/b.report"
./target/release/msgr profile "$prof_dir/on_a.jsonl" \
    --folded "$prof_dir/a.folded" >/dev/null
./target/release/msgr profile "$prof_dir/on_b.jsonl" \
    --folded "$prof_dir/b.folded" >/dev/null
cmp -s "$prof_dir/a.report" "$prof_dir/b.report" \
    || { echo "error: same-seed profile reports differ" >&2; exit 1; }
cmp -s "$prof_dir/a.folded" "$prof_dir/b.folded" \
    || { echo "error: same-seed folded stacks differ" >&2; exit 1; }
[ -s "$prof_dir/a.folded" ] \
    || { echo "error: folded stacks are empty for a hot-loop run" >&2; exit 1; }
grep -Eq '^[^ ;]+;[^ ;]+;L[0-9]+ [0-9]+$' "$prof_dir/a.folded" \
    || { echo "error: folded stacks are not 'prog;func;Lline count' rows" >&2; exit 1; }
grep -q 'critical path' "$prof_dir/a.report" \
    || { echo "error: profile report lost its critical path" >&2; exit 1; }
if ./target/release/msgr profile "$prof_dir/off_a.jsonl" >/dev/null 2>&1; then
    echo "error: msgr profile accepted a trace with no profiler events" >&2
    exit 1
fi
# Forge a truncated recording (the header's drop count is authoritative)
# and require summary to refuse it with the findings exit code.
sed '1s/"dropped":0/"dropped":7/' "$prof_dir/off_a.jsonl" > "$prof_dir/truncated.jsonl"
if ./target/release/msgr trace summary "$prof_dir/truncated.jsonl" >/dev/null; then
    echo "error: trace summary exited 0 on a truncated recording" >&2
    exit 1
fi
cargo build --release --offline -p msgr-bench --bin ablation_profile
./target/release/ablation_profile --smoke > "$prof_dir/BENCH_0010.smoke.json"
./target/release/ablation_profile --check "$prof_dir/BENCH_0010.smoke.json"
rm -rf "$prof_dir"
echo "ok: profiler deterministic, additive, folded stacks well-formed, overhead bounded"

echo "== bench artifacts: schema-check every committed BENCH_*.json =="
# One sweep validates every committed artifact with its own checker, so
# adding BENCH_0011.json without registering a checker here fails CI
# instead of silently shipping an unvalidated artifact.
for bench in BENCH_*.json; do
    case "$bench" in
        BENCH_0006.json) checker=ablation_lanes ;;
        BENCH_0007.json | BENCH_0008.json) checker=ablation_compile ;;
        BENCH_0009.json) checker=ablation_recovery ;;
        BENCH_0010.json) checker=ablation_profile ;;
        *) echo "error: no schema checker registered for $bench" >&2; exit 1 ;;
    esac
    ./target/release/"$checker" --check "$bench"
    echo "ok: $bench ($checker --check)"
done

if [ "$soak" = 1 ]; then
    echo "== chaos soak (--soak) =="
    cargo test -q --offline -p msgr-core --test fault_props -- --ignored
    cargo test -q --offline -p msgr-core --test recovery_props -- --ignored
    cargo test -q --offline -p msgr-core --test batch_props -- --ignored
    cargo test -q --offline -p msgr-core --test ctrl_props -- --ignored
fi

echo "== cargo fmt --check =="
cargo fmt --check

echo "tier-1: all green"
