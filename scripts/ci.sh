#!/usr/bin/env bash
# Tier-1 verification, fully offline: the workspace must build, test, and
# stay formatted with no network access and no external registry
# dependencies (see "Hermetic builds" in README.md / DESIGN.md).
#
# Flags:
#   --soak   additionally run the long chaos soak test (ignored by
#            default): sustained loss + periodic crash/restart cycles.
set -euo pipefail

cd "$(dirname "$0")/.."

soak=0
for arg in "$@"; do
    case "$arg" in
        --soak) soak=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "== cargo metadata: path-only dependency check =="
# Every dependency must resolve from within this repository. `cargo
# metadata --offline` fails outright if anything needs the registry; the
# grep double-checks that no package outside the workspace sneaked in.
if cargo metadata --offline --format-version 1 \
    | grep -o '"source":"[^"]*"' | grep -qv '"source":""' ; then
    echo "error: non-path dependency found in cargo metadata" >&2
    exit 1
fi
echo "ok: all dependencies are workspace-local"

echo "== cargo build --release --offline =="
cargo build --release --offline --workspace

echo "== cargo test -q --offline =="
cargo test -q --offline --workspace

echo "== lint: msgr-lint over all MSGR-C sources =="
# Static analysis of every navigation program we ship: the .mc example
# scripts plus the programs embedded in msgr-apps. Warnings are denied —
# in-tree code is the idiom reference and must stay clean.
cargo build --release --offline --bin msgr-lint
find examples -name '*.mc' -print0 \
    | xargs -0 ./target/release/msgr-lint --deny-warnings --builtin

echo "== cargo clippy -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== chaos: fault-injection property sweep =="
# Two pinned fault seeds (regression anchors) plus one fresh seed per CI
# run. MSGR_FAULT_SEED perturbs every cluster seed in the chaos suites
# (transient faults and permanent-kill recovery); the fresh value is
# logged so a red run can be replayed exactly.
for seed in 1 424242 "$(date +%s)"; do
    echo "chaos seed: $seed (replay: MSGR_FAULT_SEED=$seed scripts/ci.sh)"
    MSGR_FAULT_SEED="$seed" cargo test -q --offline -p msgr-core --test fault_props
    MSGR_FAULT_SEED="$seed" cargo test -q --offline -p msgr-core --test recovery_props
    MSGR_FAULT_SEED="$seed" cargo test -q --offline -p msgr-core --test batch_props
    MSGR_FAULT_SEED="$seed" cargo test -q --offline -p msgr-core --test ctrl_props
done

echo "== control plane: consensus + gossip properties, quorum ablation (BENCH_0009) =="
# The decentralized control plane end to end: the msgr-ctrl unit and
# property suites (single-decree agreement safety, gossip convergence)
# re-run standalone, then the quorum-vs-deterministic succession
# ablation runs in smoke mode at k ∈ {1,2,3}. Both its output and the
# committed full-mode BENCH_0009.json are schema-validated — the
# committed artifact must keep the k=2 quorum/deterministic p50
# recovery-latency ratio within the 3x acceptance bar.
cargo test -q --offline -p msgr-ctrl
cargo build --release --offline -p msgr-bench --bin ablation_recovery
ctrl_dir="$(mktemp -d)"
./target/release/ablation_recovery --quorum --smoke > "$ctrl_dir/BENCH_0009.smoke.json"
./target/release/ablation_recovery --check "$ctrl_dir/BENCH_0009.smoke.json"
./target/release/ablation_recovery --check BENCH_0009.json
rm -rf "$ctrl_dir"
echo "ok: control plane green and BENCH_0009.json is schema-valid"

echo "== bench: lanes/batching ablation smoke (BENCH_0006) =="
# Run the lanes ablation in smoke mode (seconds, not minutes) and
# schema-validate its output: every metric the acceptance criteria name
# (messengers/sec, hops/sec, xport p50/p99, the lane/batch counters)
# must be present, parseable, and non-negative — a silently missing
# metric fails CI. The committed BENCH_0006.json (captured from a full
# `ablation_lanes` run) must satisfy the same schema, including the
# full-mode >=1.5x messengers/sec speedup bar.
cargo build --release --offline -p msgr-bench --bin ablation_lanes
bench_dir="$(mktemp -d)"
./target/release/ablation_lanes --smoke > "$bench_dir/BENCH_0006.smoke.json"
./target/release/ablation_lanes --check "$bench_dir/BENCH_0006.smoke.json"
./target/release/ablation_lanes --check BENCH_0006.json
rm -rf "$bench_dir"
echo "ok: bench smoke ran and BENCH_0006.json is schema-valid"

echo "== trace: deterministic flight-recorder smoke =="
# Record the same seeded chaos run twice (loss + a mid-run daemon kill),
# validate the JSONL (summary parses it and checks the header/schema),
# and require the two recordings to be byte-identical — the CLI face of
# the `same_seed_runs_serialize_byte_identically` property. `msgr trace`
# exits 1 on findings (invalid trace, differing runs) and 2 on internal
# errors, so any failure here fails CI.
cargo build --release --offline --bin msgr
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
trace_run() {
    ./target/release/msgr run examples/scripts/walker.mc \
        --topology examples/scripts/ring.topo --daemons 4 --inject r0:2 \
        --seed 7 --faults drop=0.05,kill=2@20 --trace "$1" >/dev/null
}
trace_run "$trace_dir/a.jsonl"
trace_run "$trace_dir/b.jsonl"
./target/release/msgr trace summary "$trace_dir/a.jsonl" >/dev/null
./target/release/msgr trace diff "$trace_dir/a.jsonl" "$trace_dir/b.jsonl"
./target/release/msgr trace chrome "$trace_dir/a.jsonl" "$trace_dir/a.chrome.json" >/dev/null
for ev in hop retransmit checkpoint restore; do
    if ! grep -q "\"ev\":\"$ev\"" "$trace_dir/a.jsonl"; then
        echo "error: chaos trace is missing \"$ev\" events" >&2
        exit 1
    fi
done
echo "ok: chaos trace is schema-valid, complete, and reproducible"

echo "== compiled execution: CLI run + ablation smoke (BENCH_0007) =="
# The closure-compiled engine must be observationally identical to the
# interpreter: the 256-case differential suite (crates/vm/tests/
# diff_props.rs) and the cross-engine goldens already ran with the
# workspace tests above. Here the CLI plumbing gets a real run
# (--exec compiled, then the MSGR_EXEC override), the tier-1 app
# tests and goldens re-run once entirely on the compiled engine, and
# the compile-vs-interp ablation runs in smoke mode. Both its output
# and the committed BENCH_0007.json are schema-validated — the
# committed full-mode artifact must clear the >=3x hops/sec bar.
MSGR_EXEC=compiled cargo test -q --offline -p msgr-apps
MSGR_EXEC=compiled cargo test -q --offline --test determinism
./target/release/msgr run examples/scripts/walker.mc \
    --topology examples/scripts/ring.topo --daemons 4 --inject r0:2 \
    --seed 7 --exec compiled >/dev/null
MSGR_EXEC=compiled ./target/release/msgr run examples/scripts/walker.mc \
    --topology examples/scripts/ring.topo --daemons 4 --inject r0:2 \
    --seed 7 >/dev/null
cargo build --release --offline -p msgr-bench --bin ablation_compile
compile_dir="$(mktemp -d)"
./target/release/ablation_compile --smoke > "$compile_dir/BENCH_0007.smoke.json"
./target/release/ablation_compile --check "$compile_dir/BENCH_0007.smoke.json"
./target/release/ablation_compile --check BENCH_0007.json
rm -rf "$compile_dir"
echo "ok: compiled engine ran end to end and BENCH_0007.json is schema-valid"

echo "== analysis: interprocedural summaries end to end (BENCH_0008) =="
# The whole-program effect analysis: (a) both paper apps must be clean
# under the interprocedural lint family, checked through the
# machine-readable --json face (which doubles as its schema check);
# (b) summaries must be stable across a wire-codec roundtrip and the
# summary-guided engine bit-equal to the interpreter (the vm property
# suite); (c) the summaries ablation runs in smoke mode with analysis
# enabled, and both its output and the committed full-mode
# BENCH_0008.json are schema-validated — the committed artifact must
# clear the >=1.15x compiled-mode hops/sec bar.
lint_json="$(./target/release/msgr-lint --json --builtin)"
echo "$lint_json" | grep -q '"version":1' \
    || { echo "error: msgr-lint --json lost its schema header" >&2; exit 1; }
echo "$lint_json" | grep -q '"errors":0,"warnings":0,"diagnostics":\[\]' \
    || { echo "error: builtin paper apps are not lint-clean: $lint_json" >&2; exit 1; }
# A known-dirty program must produce a well-formed diagnostic row with
# every schema field present (code, function, pc, line, severity).
dirty_dir="$(mktemp -d)"
printf 'w() {\n    node int t;\n    t = 1;\n    t = 2;\n    hop(ll = $last);\n}\n' \
    > "$dirty_dir/dirty.mc"
dirty_json="$(./target/release/msgr-lint --json "$dirty_dir/dirty.mc")"
for field in '"code":"N303"' '"severity":"warning"' '"function":"w"' '"pc":' '"line":3'; do
    echo "$dirty_json" | grep -qF "$field" \
        || { echo "error: msgr-lint --json row missing $field: $dirty_json" >&2; exit 1; }
done
rm -rf "$dirty_dir"
cargo test -q --offline -p msgr-vm --test diff_props summaries
analysis_dir="$(mktemp -d)"
./target/release/ablation_compile --summaries --smoke > "$analysis_dir/BENCH_0008.smoke.json"
./target/release/ablation_compile --check "$analysis_dir/BENCH_0008.smoke.json"
./target/release/ablation_compile --check BENCH_0008.json
rm -rf "$analysis_dir"
echo "ok: apps lint-clean, summaries stable, BENCH_0008.json is schema-valid"

if [ "$soak" = 1 ]; then
    echo "== chaos soak (--soak) =="
    cargo test -q --offline -p msgr-core --test fault_props -- --ignored
    cargo test -q --offline -p msgr-core --test recovery_props -- --ignored
    cargo test -q --offline -p msgr-core --test batch_props -- --ignored
    cargo test -q --offline -p msgr-core --test ctrl_props -- --ignored
fi

echo "== cargo fmt --check =="
cargo fmt --check

echo "tier-1: all green"
